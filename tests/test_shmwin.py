"""Shared-memory-window collectives, tuned dispatch, and the tournament.

Covers the PR's three layers: the shmwin algorithm family's semantics
(results, determinism, faults, and the intra-node performance edge it
exists for), the generalized registry's explicit-capability contract,
and tuned dispatch pinned against a fixed crossover table plus the
tournament CLI that produces one.
"""

import json

import numpy as np
import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.microbench import reduce_benchmark
from repro.collectives import registry
from repro.collectives.tuned import (
    CrossoverTable,
    install_table,
    payload_band,
    shape_key,
)
from repro.faults import FAILED, FaultSchedule, ImageFailure, Stat
from repro.runtime.config import UHCAF_2LEVEL, UHCAF_TUNED
from tests.conftest import run_small

SHMWIN = UHCAF_2LEVEL.with_(
    name="uhcaf-shmwin", barrier="shmwin", reduce="shmwin",
    broadcast="shmwin", macro_events=False,
)


@pytest.fixture(autouse=True)
def _clean_table():
    """Never leak an installed crossover table between tests."""
    yield
    install_table(None)


def _collective_mix(ctx):
    """Barrier + allreduce + rooted reduce + broadcast, twice."""
    me = ctx.this_image()
    n = ctx.num_images()
    out = []
    for round_ in range(2):
        yield from ctx.sync_all()
        s = yield from ctx.co_sum(float(me + round_))
        r = yield from ctx.co_sum(me, result_image=1)
        b = yield from ctx.co_broadcast([me * 2.0, float(round_)],
                                        source_image=min(2, n))
        out.append((s, r, b))
    yield from ctx.sync_all()
    return tuple(out)


def _check_mix(result, images):
    src = min(2, images)
    base = images * (images + 1) // 2
    for pos in range(images):
        rounds = result.results[pos]
        for round_, (s, r, b) in enumerate(rounds):
            assert s == float(base + round_ * images)
            assert r == (base if pos == 0 else None)
            assert b == [src * 2.0, float(round_)]


# ----------------------------------------------------------------------
class TestShmwinSemantics:
    @pytest.mark.parametrize("images,ipn", [(8, 8), (8, 4), (3, 2), (7, 4),
                                            (4, 1), (1, 1)])
    def test_collective_mix_all_shapes(self, images, ipn):
        result = run_small(_collective_mix, images=images, ipn=ipn,
                           config=SHMWIN)
        _check_mix(result, images)

    def test_numa_node(self):
        """4-socket single node: window stores land on distinct socket
        controllers, results must still be exact."""
        from repro.machine.spec import MachineSpec, NetworkSpec, NodeSpec
        from repro.runtime import run_spmd

        result = run_spmd(
            _collective_mix, num_images=8, images_per_node=8,
            spec=MachineSpec(1, NodeSpec(cores=8, sockets=4), NetworkSpec()),
            config=SHMWIN,
        )
        _check_mix(result, 8)

    def test_double_run_is_bit_identical(self):
        a = run_small(_collective_mix, images=8, ipn=4, config=SHMWIN)
        b = run_small(_collective_mix, images=8, ipn=4, config=SHMWIN)
        assert a.time == b.time
        assert a.results == b.results

    def test_window_slots_do_not_leak(self):
        result = run_small(_collective_mix, images=8, ipn=4, config=SHMWIN)
        assert result.world.initial_shared._win_values == {}

    def test_user_named_op_and_array_payloads(self):
        def main(ctx):
            v = np.full(4, float(ctx.this_image()))
            total = yield from ctx.co_reduce(v, "max")
            return total

        result = run_small(main, images=6, ipn=3, config=SHMWIN)
        for out in result.results:
            assert np.array_equal(out, np.full(4, 6.0))


# ----------------------------------------------------------------------
class TestShmwinPerformance:
    def test_allreduce_beats_two_level_intra_node(self):
        """The tentpole claim: on a fully intra-node shape with a small
        payload, operating directly on the node window beats routing
        every contribution through the leader's mailbox."""
        shm = reduce_benchmark(
            8, 8, UHCAF_2LEVEL.with_(reduce="shmwin", macro_events=False))
        two = reduce_benchmark(
            8, 8, UHCAF_2LEVEL.with_(macro_events=False))
        assert shm.seconds_per_op < two.seconds_per_op

    def test_barrier_beats_tdlb_intra_node(self):
        from repro.bench.microbench import barrier_benchmark

        shm = barrier_benchmark(
            8, 8, UHCAF_2LEVEL.with_(barrier="shmwin", macro_events=False))
        tdlb = barrier_benchmark(
            8, 8, UHCAF_2LEVEL.with_(macro_events=False))
        assert shm.seconds_per_op < tdlb.seconds_per_op


# ----------------------------------------------------------------------
class TestShmwinFaults:
    FAIL_3 = FaultSchedule(failures=(ImageFailure(3, 20e-6),))

    def test_survivors_observe_failed_window_peer(self):
        """A window peer fail-stops mid-run; survivors blocked on the
        node flags surface STAT_FAILED_IMAGE at the next collective."""
        def main(ctx):
            st = Stat()
            for done in range(30):
                yield from ctx.sync_all(stat=st)
                if not st.ok:
                    return ("stat", st.code, tuple(st.failed_indices), done)
                total = yield from ctx.co_sum(1.0, stat=st)
                if not st.ok:
                    return ("stat", st.code, tuple(st.failed_indices), done)
                yield from ctx.compute(seconds=5e-6)
            return ("ok", total)

        result = run_small(main, images=4, config=SHMWIN, faults=self.FAIL_3)
        assert result.results[2] == FAILED
        from repro.faults import STAT_FAILED_IMAGE

        for pos in (0, 1, 3):
            tag, code, failed, _done = result.results[pos]
            assert tag == "stat" and code == STAT_FAILED_IMAGE
            assert failed == (3,)

    def test_survivor_reformation_gets_fresh_window_cells(self):
        """Kill a node leader; the re-formed team is a new TeamShared, so
        its window slots and node flags start clean and shmwin
        collectives on the survivor team are exact."""
        def main(ctx):
            st = Stat()
            for _ in range(30):
                yield from ctx.sync_all(stat=st)
                if not st.ok:
                    break
                yield from ctx.compute(seconds=5e-6)
            else:
                return "never saw the failure"
            new_view = yield from ctx.survivor_team()
            yield from ctx.change_team(new_view)
            total = yield from ctx.co_sum(1)
            b = yield from ctx.co_broadcast(new_view.index * 10,
                                            source_image=1)
            assert new_view.shared._win_values == {}
            yield from ctx.end_team()
            return (new_view.size, total, b)

        result = run_small(
            main, images=4, config=SHMWIN,
            faults=FaultSchedule(failures=(ImageFailure(1, 20e-6),)))
        assert result.results[0] == FAILED
        for out in result.results[1:]:
            assert out == (3, 3, 10)

    def test_fault_runs_repeat_exactly(self):
        def main(ctx):
            st = Stat()
            done = 0
            for _ in range(30):
                yield from ctx.sync_all(stat=st)
                if not st.ok:
                    return done
                done += 1
                yield from ctx.compute(seconds=5e-6)
            return done

        a = run_small(main, images=4, config=SHMWIN, faults=self.FAIL_3)
        b = run_small(main, images=4, config=SHMWIN, faults=self.FAIL_3)
        assert a.time == b.time and a.results == b.results


# ----------------------------------------------------------------------
class TestRegistryHygiene:
    def test_macro_kind_is_mandatory_keyword(self):
        with pytest.raises(TypeError):
            registry.register("barrier", "zz-test", lambda ctx, view: None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("barrier", "tdlb", lambda ctx, view: None,
                              macro_kind=None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown collective kind"):
            registry.register("gather9", "x", lambda: None, macro_kind=None)

    def test_capability_map_preserved(self):
        """The PR 8 macro capability map is exactly reproduced by the
        explicit declarations — no entry gained or lost."""
        assert registry.MACRO_CAPABLE == {
            ("barrier", "tdlb"): "tdlb",
            ("barrier", "linear"): "linear",
            ("reduce", "two-level"): "reduce-2l",
            ("reduce", "recursive-doubling"): "reduce-rd",
            ("broadcast", "two-level"): "bcast-2l",
        }

    def test_new_families_declare_fine_grained(self):
        for kind in ("barrier", "reduce", "broadcast"):
            for name in ("shmwin", "tuned"):
                assert registry.macro_kind(kind, name) is None
                assert registry.info(kind, name).macro_kind is None

    def test_info_exposes_callable(self):
        from repro.collectives.shmwin import barrier_shmwin

        assert registry.info("barrier", "shmwin").fn is barrier_shmwin

    def test_xscale_assertion_allows_fine_when_asked(self):
        from repro.bench.xscale import assert_macro_capable

        tuned_cfg = UHCAF_TUNED
        with pytest.raises(ValueError, match="not macro-capable"):
            assert_macro_capable(tuned_cfg)
        kinds = assert_macro_capable(tuned_cfg, allow_fine=True)
        assert set(kinds.values()) == {None}


# ----------------------------------------------------------------------
class TestTunedDispatch:
    ROWS = [
        {"kind": "barrier", "nodes": 1, "ipn": 8, "band": "small",
         "algorithm": "shmwin"},
        {"kind": "reduce", "nodes": 1, "ipn": 8, "band": "small",
         "algorithm": "shmwin"},
        {"kind": "reduce", "nodes": 1, "ipn": 8, "band": "large",
         "algorithm": "binomial-flat"},
        {"kind": "broadcast", "nodes": 1, "ipn": 8, "band": "small",
         "algorithm": "binomial-flat"},
    ]

    def _mixed_payloads(self, ctx):
        me = ctx.this_image()
        yield from ctx.sync_all()
        small = yield from ctx.co_sum(float(me))
        large = yield from ctx.co_sum(np.ones(65536))
        b = yield from ctx.co_broadcast(7, source_image=1)
        return (small, float(large[0]), b)

    def test_selection_pinned_by_table(self):
        """Golden: a fixed crossover table makes dispatch deterministic —
        the cached per-team selections are exactly the table rows."""
        install_table(self.ROWS)
        result = run_small(self._mixed_payloads, images=8, ipn=8,
                           config=UHCAF_TUNED)
        assert result.world.initial_shared.tuned_selections == {
            ("barrier", "small"): "shmwin",
            ("reduce", "small"): "shmwin",
            ("reduce", "large"): "binomial-flat",
            ("broadcast", "small"): "binomial-flat",
        }
        for out in result.results:
            assert out == (36.0, 8.0, 7)

    def test_tuned_time_equals_selected_algorithm_exactly(self):
        """Selection is zero simulated cost: a tuned run must be
        bit-identical in time and results to the selected algorithm run
        directly."""
        rows = [{"kind": k, "nodes": 1, "ipn": 8, "band": b,
                 "algorithm": "shmwin"}
                for k in ("barrier", "reduce", "broadcast")
                for b in ("small", "medium", "large")]
        install_table(rows)
        tuned = run_small(_collective_mix, images=8, ipn=8,
                          config=UHCAF_TUNED)
        direct = run_small(_collective_mix, images=8, ipn=8, config=SHMWIN)
        assert tuned.time == direct.time
        assert tuned.results == direct.results

    def test_fallback_to_two_level_defaults(self, tmp_path, monkeypatch):
        """No table anywhere: tuned == the paper's two-level stack."""
        monkeypatch.chdir(tmp_path)  # no ./TOURNAMENT.json to pick up
        install_table(None)
        tuned = run_small(_collective_mix, images=8, ipn=4,
                          config=UHCAF_TUNED)
        ref = run_small(_collective_mix, images=8, ipn=4,
                        config=UHCAF_2LEVEL.with_(macro_events=False))
        assert tuned.time == ref.time
        assert tuned.results == ref.results
        assert tuned.world.initial_shared.tuned_selections == {
            ("barrier", "small"): "tdlb",
            ("reduce", "small"): "two-level",
            ("broadcast", "small"): "two-level",
        }

    def test_stale_table_entry_falls_back(self):
        install_table([{"kind": "barrier", "nodes": 1, "ipn": 8,
                        "band": "small", "algorithm": "gone-algorithm"}])
        result = run_small(_collective_mix, images=8, ipn=8,
                           config=UHCAF_TUNED)
        sel = result.world.initial_shared.tuned_selections
        assert sel[("barrier", "small")] == "tdlb"

    def test_bands_and_shape_key(self):
        assert payload_band(8) == "small"
        assert payload_band(255) == "small"
        assert payload_band(256) == "medium"
        assert payload_band(16 * 1024 - 1) == "medium"
        assert payload_band(16 * 1024) == "large"
        assert shape_key(8, 8) == (1, 8)
        assert shape_key(8, 4) == (2, 4)
        assert shape_key(3, 2) == (2, 2)
        assert shape_key(4, 1) == (4, 1)

    def test_from_json_validates_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "winners": []}))
        with pytest.raises(ValueError, match="expected schema"):
            CrossoverTable.from_json(path)


# ----------------------------------------------------------------------
class TestTournamentCLI:
    def test_quick_grid_emits_table_and_gates(self, tmp_path, capsys):
        out_json = tmp_path / "TOURNAMENT.json"
        rc = bench_main([
            "tournament", "--shapes", "1node", "--payloads", "small",
            "--iters", "2", "--tournament-json", str(out_json),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "crossover table" in text
        assert "tuned dispatch:" in text
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro.bench/tournament/v1"
        swept = {(r["kind"], r["algorithm"]) for r in doc["grid"]}
        for kind, table in (("barrier", registry.BARRIERS),
                            ("reduce", registry.REDUCTIONS),
                            ("broadcast", registry.BROADCASTS)):
            for name in table:
                if name != "tuned":
                    assert (kind, name) in swept
        assert doc["tuned"]["speedup_vs_best_fixed"] >= 1.0 - 1e-9
        assert doc["tuned"]["speedup_vs_default"] >= 1.0 - 1e-9
        # the artifact round-trips into the dispatch table
        table = CrossoverTable.from_json(out_json)
        assert len(table) == len(doc["winners"]) > 0
