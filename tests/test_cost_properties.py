"""Property-based tests of the cost model: whatever the profile and
payload, transfer costs must obey the physical invariants the analysis
relies on (monotonicity, path ordering, profile ordering)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import ConduitProfile
from repro.machine import build_machine, paper_cluster
from repro.runtime.conduit import Conduit
from repro.sim import Engine, Process


def transfer_time(profile, src, dst, nbytes, aware=False, path="auto"):
    eng = Engine()
    machine = build_machine(eng, paper_cluster(2), 16, images_per_node=8)
    conduit = Conduit(machine, profile, hierarchy_aware=aware)
    done = {}

    def proc():
        yield from conduit.transfer(
            src, dst, nbytes,
            on_delivered=lambda: done.__setitem__("t", eng.now), path=path)

    Process(eng, proc())
    eng.run()
    return done["t"]


@st.composite
def profiles(draw):
    remote = draw(st.floats(min_value=1e-7, max_value=1e-5))
    local = draw(st.floats(min_value=1e-7, max_value=1e-5))
    penalty = draw(st.floats(min_value=0, max_value=5e-6))
    serialize = draw(st.booleans())
    bw_factor = draw(st.floats(min_value=0.1, max_value=1.0))
    return ConduitProfile(
        name="hyp", remote_overhead=remote, local_overhead=local,
        loopback_penalty=penalty, serialize_overhead=serialize,
        loopback_bw_factor=bw_factor,
    )


class TestCostInvariants:
    @given(profile=profiles(),
           small=st.integers(min_value=0, max_value=10_000),
           extra=st.integers(min_value=1, max_value=1_000_000))
    @settings(max_examples=40, deadline=None)
    def test_delivery_monotone_in_payload_remote(self, profile, small, extra):
        t_small = transfer_time(profile, 0, 8, small)
        t_big = transfer_time(profile, 0, 8, small + extra)
        assert t_big > t_small

    @given(profile=profiles(),
           small=st.integers(min_value=0, max_value=10_000),
           extra=st.integers(min_value=1, max_value=1_000_000))
    @settings(max_examples=40, deadline=None)
    def test_delivery_monotone_in_payload_local(self, profile, small, extra):
        t_small = transfer_time(profile, 0, 1, small)
        t_big = transfer_time(profile, 0, 1, small + extra)
        assert t_big > t_small

    @given(profile=profiles(), nbytes=st.integers(min_value=0, max_value=65536))
    @settings(max_examples=40, deadline=None)
    def test_direct_never_slower_than_loopback(self, profile, nbytes):
        t_direct = transfer_time(profile, 0, 1, nbytes, aware=True)
        t_loop = transfer_time(profile, 0, 1, nbytes, aware=False)
        assert t_direct <= t_loop + 1e-15

    @given(nbytes=st.integers(min_value=0, max_value=65536),
           overhead_lo=st.floats(min_value=1e-7, max_value=2e-6),
           overhead_delta=st.floats(min_value=1e-7, max_value=8e-6))
    @settings(max_examples=40, deadline=None)
    def test_cheaper_profile_is_faster_remote(self, nbytes, overhead_lo,
                                              overhead_delta):
        cheap = ConduitProfile("cheap", overhead_lo, overhead_lo)
        pricey = ConduitProfile("pricey", overhead_lo + overhead_delta,
                                overhead_lo + overhead_delta)
        assert (transfer_time(cheap, 0, 8, nbytes)
                < transfer_time(pricey, 0, 8, nbytes))

    @given(profile=profiles())
    @settings(max_examples=30, deadline=None)
    def test_zero_byte_transfer_still_costs_time(self, profile):
        assert transfer_time(profile, 0, 8, 0) > 0
        assert transfer_time(profile, 0, 1, 0) > 0

    @given(profile=profiles(), nbytes=st.integers(min_value=0, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_same_pair_deterministic(self, profile, nbytes):
        a = transfer_time(profile, 0, 8, nbytes)
        b = transfer_time(profile, 0, 8, nbytes)
        assert a == b
