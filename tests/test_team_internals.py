"""Unit tests for the team runtime structures (TeamShared/TeamView) and
their mailbox/flag machinery — the plumbing every collective rides on."""

import pytest

from repro.machine import Topology, block_placement, paper_cluster
from repro.sim import Engine
from repro.teams.team import INITIAL_TEAM_NUMBER, TeamShared, TeamView


def make_shared(members=None, images=8, ipn=4, **kwargs):
    eng = Engine()
    topo = Topology(paper_cluster(max(-(-images // ipn), 1)),
                    block_placement(images, ipn))
    if members is None:
        members = list(range(images))
    return eng, TeamShared(
        engine=eng, topology=topo, members=members,
        team_number=1, parent=None, **kwargs,
    )


class TestTeamShared:
    def test_index_proc_roundtrip(self):
        _, shared = make_shared(members=[3, 1, 5])
        assert shared.proc_of(1) == 3
        assert shared.proc_of(3) == 5
        assert shared.index_of(1) == 2

    def test_index_out_of_range(self):
        _, shared = make_shared(members=[0, 1])
        with pytest.raises(ValueError, match="out of range"):
            shared.proc_of(3)
        with pytest.raises(ValueError, match="out of range"):
            shared.proc_of(0)

    def test_non_member_rejected(self):
        _, shared = make_shared(members=[0, 1])
        with pytest.raises(ValueError, match="not a member"):
            shared.index_of(7)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_shared(members=[0, 0, 1])

    def test_empty_team_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            make_shared(members=[])

    def test_num_rounds_log2(self):
        assert make_shared(members=list(range(8)))[1].num_rounds == 3
        assert make_shared(members=list(range(9)), images=16, ipn=4)[1].num_rounds == 4
        assert make_shared(members=[0])[1].num_rounds == 0

    def test_ancestor_chain(self):
        eng, root = make_shared()
        topo = Topology(paper_cluster(2), block_placement(8, 4))
        mid = TeamShared(engine=eng, topology=topo, members=[0, 1, 2, 3],
                         team_number=2, parent=root)
        leaf = TeamShared(engine=eng, topology=topo, members=[0, 1],
                          team_number=3, parent=mid)
        assert leaf.ancestors() == [mid, root]
        assert root.ancestors() == []

    def test_uids_unique(self):
        _, a = make_shared()
        _, b = make_shared()
        assert a.uid != b.uid


class TestSyncCells:
    def test_diss_flags_namespaced_by_variant(self):
        _, shared = make_shared()
        a = shared.diss_flag(1, 0, "alg-a")
        b = shared.diss_flag(1, 0, "alg-b")
        assert a is not b
        assert shared.diss_flag(1, 0, "alg-a") is a

    def test_flags_distinct_per_member_and_round(self):
        _, shared = make_shared()
        assert shared.diss_flag(1, 0, "x") is not shared.diss_flag(2, 0, "x")
        assert shared.diss_flag(1, 0, "x") is not shared.diss_flag(1, 1, "x")

    def test_cocounter_and_release_cached(self):
        _, shared = make_shared()
        assert shared.cocounter(1) is shared.cocounter(1)
        assert shared.release_flag(2) is shared.release_flag(2)
        assert shared.cocounter(1) is not shared.release_flag(1)


class TestMailboxes:
    def test_deposit_bumps_cell_and_collect_drains(self):
        _, shared = make_shared()
        cell = shared.mail_cell(1, ("t", 1))
        shared.deposit(1, ("t", 1), "a")
        shared.deposit(1, ("t", 1), "b")
        assert cell.value == 2
        assert shared.collect(1, ("t", 1)) == ["a", "b"]

    def test_collect_frees_storage(self):
        _, shared = make_shared()
        shared.deposit(1, "tag", 1)
        shared.collect(1, "tag")
        assert shared.collect(1, "tag") == []

    def test_mailboxes_isolated_by_member_and_tag(self):
        _, shared = make_shared()
        shared.deposit(1, "t", "for-1")
        shared.deposit(2, "t", "for-2")
        shared.deposit(1, "u", "other-tag")
        assert shared.collect(1, "t") == ["for-1"]
        assert shared.collect(2, "t") == ["for-2"]
        assert shared.collect(1, "u") == ["other-tag"]


class TestTeamView:
    def test_view_binds_index(self):
        _, shared = make_shared(members=[4, 2, 6])
        view = TeamView(shared, proc=2, parent_view=None)
        assert view.index == 2
        assert view.size == 3
        assert view.team_number == 1

    def test_next_seq_per_variant(self):
        _, shared = make_shared()
        view = TeamView(shared, proc=0, parent_view=None)
        assert view.next_seq("a") == 1
        assert view.next_seq("a") == 2
        assert view.next_seq("b") == 1

    def test_next_op_tag_unique_and_ordered(self):
        _, shared = make_shared()
        view = TeamView(shared, proc=0, parent_view=None)
        t1 = view.next_op_tag("red")
        t2 = view.next_op_tag("bc")
        assert t1 != t2
        assert t1[1] < t2[1]

    def test_views_of_one_shared_advance_independently(self):
        """Each image's view has its own counters (kept in lockstep only
        by SPMD discipline, not by sharing)."""
        _, shared = make_shared()
        v0 = TeamView(shared, proc=0, parent_view=None)
        v1 = TeamView(shared, proc=1, parent_view=None)
        v0.next_seq("x")
        assert v1.next_seq("x") == 1

    def test_initial_team_number_constant(self):
        assert INITIAL_TEAM_NUMBER == -1
