"""Tests pinning the async transport paths to their synchronous twins:
the non-blocking fabric/conduit variants must charge the same resources
and deliver at the same instants as the blocking ones."""

import pytest

from repro.calibration import GASNET_RDMA, IB_VERBS
from repro.machine import build_machine, paper_cluster
from repro.runtime.conduit import Conduit
from repro.sim import Engine, Process, Wait


def make(profile=IB_VERBS, aware=False, images=8, ipn=4, nodes=4):
    eng = Engine()
    machine = build_machine(eng, paper_cluster(nodes), images,
                            images_per_node=ipn)
    return eng, machine, Conduit(machine, profile, hierarchy_aware=aware)


def delivery_time(run):
    """Run a one-transfer scenario; returns (source_done_t, delivered_t)."""
    eng, machine, conduit = run["env"]
    times = {}

    def proc():
        if run["nb"]:
            ev = yield from conduit.transfer_nb(
                run["src"], run["dst"], run["nbytes"],
                on_delivered=lambda: times.__setitem__("delivered", eng.now),
                path=run.get("path", "auto"),
            )
            yield Wait(ev)
            times["source"] = eng.now
        else:
            yield from conduit.transfer(
                run["src"], run["dst"], run["nbytes"],
                on_delivered=lambda: times.__setitem__("delivered", eng.now),
                path=run.get("path", "auto"),
            )
            times["source"] = eng.now

    Process(eng, proc())
    eng.run()
    return times["source"], times["delivered"]


class TestNbMatchesBlocking:
    @pytest.mark.parametrize("src,dst,nbytes", [
        (0, 4, 8), (0, 4, 100_000), (0, 1, 8), (0, 1, 100_000),
    ])
    @pytest.mark.parametrize("profile", [IB_VERBS, GASNET_RDMA],
                             ids=["verbs", "gasnet"])
    def test_delivery_instant_identical(self, src, dst, nbytes, profile):
        blocking = delivery_time({
            "env": make(profile), "nb": False,
            "src": src, "dst": dst, "nbytes": nbytes,
        })
        nonblocking = delivery_time({
            "env": make(profile), "nb": True,
            "src": src, "dst": dst, "nbytes": nbytes,
        })
        assert nonblocking[1] == pytest.approx(blocking[1])

    def test_nb_source_completion_not_earlier_than_injection(self):
        # waiting on the nb source event lands at the same instant the
        # blocking call would have returned
        blocking = delivery_time({
            "env": make(), "nb": False, "src": 0, "dst": 4, "nbytes": 4096,
        })
        nonblocking = delivery_time({
            "env": make(), "nb": True, "src": 0, "dst": 4, "nbytes": 4096,
        })
        assert nonblocking[0] == pytest.approx(blocking[0])

    def test_nb_direct_path(self):
        eng, machine, conduit = make(aware=True)
        t = delivery_time({
            "env": (eng, machine, conduit), "nb": True,
            "src": 0, "dst": 1, "nbytes": 8, "path": "direct",
        })
        assert conduit.counts["direct"] == 1
        assert t[1] > 0

    def test_nb_counts_by_path(self):
        eng, machine, conduit = make(profile=GASNET_RDMA, aware=False)

        def proc():
            ev1 = yield from conduit.transfer_nb(0, 4, 8)
            ev2 = yield from conduit.transfer_nb(0, 1, 8)
            yield Wait(ev1)
            yield Wait(ev2)

        Process(eng, proc())
        eng.run()
        assert conduit.counts == {"remote": 1, "loopback": 1, "direct": 0}

    def test_nb_overlaps_injection(self):
        """Two nb sends from one image both post before either finishes
        injecting; total time < two blocking sends."""
        eng, machine, conduit = make()

        def nb_proc():
            ev1 = yield from conduit.transfer_nb(0, 4, 200_000)
            ev2 = yield from conduit.transfer_nb(0, 5, 200_000)
            yield Wait(ev1)
            yield Wait(ev2)

        Process(eng, nb_proc())
        t_nb = eng.run()

        eng2, machine2, conduit2 = make()

        def blocking_proc():
            yield from conduit2.transfer(0, 4, 200_000)
            yield from conduit2.transfer(0, 5, 200_000)

        Process(eng2, blocking_proc())
        t_b = eng2.run()
        # same NIC serializes the payloads either way, but nb posts the
        # second while the first injects — equal here since injection is
        # the bottleneck; nb must never be SLOWER
        assert t_nb <= t_b + 1e-12


class TestFabricAsyncParity:
    def test_interconnect_send_async_timing(self):
        eng, machine, _ = make()
        net = machine.spec.network
        arrivals = []
        ev = machine.interconnect.send_async(
            0, 1, 256, on_delivered=lambda: arrivals.append(eng.now))
        eng.run()
        assert arrivals[0] == pytest.approx(
            net.inject_time(256) + net.wire_time(256))

    def test_shared_memory_async_timing(self):
        eng, machine, _ = make(images=8, ipn=8, nodes=1)
        node = machine.spec.node
        arrivals = []
        machine.shared_memory.transfer_async(
            0, 0, 1, 64, on_visible=lambda: arrivals.append(eng.now))
        eng.run()
        expected = (node.bus_hold + 64 / node.smp_bandwidth
                    + node.intra_socket_latency)
        assert arrivals[0] == pytest.approx(expected)

    def test_machine_transfer_async_routes_by_placement(self):
        eng, machine, _ = make()
        machine.transfer_async(0, 1, 32)
        machine.transfer_async(0, 4, 32)
        eng.run()
        assert machine.shared_memory.messages == 1
        assert machine.interconnect.messages == 1
