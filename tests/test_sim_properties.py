"""Property-based tests of the simulation kernel's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Cell, Engine, Hold, Process, Resource, Timeout, WaitFor


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=1e3,
                                     allow_nan=False), min_size=1,
                           max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda d=d: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=10,
                                     allow_nan=False), min_size=1,
                           max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_final_time_is_max_delay(self, delays):
        eng = Engine()
        for d in delays:
            eng.schedule(d, lambda: None)
        assert eng.run() == max(delays)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=30, deadline=None)
    def test_identical_schedules_identical_traces(self, seed):
        import random

        def build():
            rng = random.Random(seed)
            eng = Engine()
            order = []
            for i in range(40):
                eng.schedule(rng.random(), lambda i=i: order.append(i))
            eng.run()
            return order

        assert build() == build()


class TestResourceProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=4),
        holds=st.lists(st.floats(min_value=1e-6, max_value=1.0,
                                 allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded_and_all_complete(self, capacity, holds):
        eng = Engine()
        res = Resource(eng, capacity=capacity)
        active = [0]
        peak = [0]
        completed = []

        def holder(duration):
            yield Hold(res, duration)
            completed.append(duration)

        # monitor via wrapping: sample in_use after every event by piggy-
        # backing on the resource's own accounting
        for d in holds:
            Process(eng, holder(d))
        eng.run()
        assert len(completed) == len(holds)
        assert res.in_use == 0
        assert res.total_grants == len(holds)

    @given(holds=st.lists(st.floats(min_value=0.1, max_value=1.0,
                                    allow_nan=False), min_size=2,
                          max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_capacity_one_serializes_total_time(self, holds):
        eng = Engine()
        res = Resource(eng, capacity=1)

        def holder(duration):
            yield Hold(res, duration)

        for d in holds:
            Process(eng, holder(d))
        final = eng.run()
        assert abs(final - sum(holds)) < 1e-9


class TestCellProperties:
    @given(
        writes=st.lists(st.integers(min_value=-100, max_value=100),
                        min_size=1, max_size=30),
        threshold=st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_watcher_fires_at_first_satisfying_write(self, writes, threshold):
        eng = Engine()
        cell = Cell(eng, -1000)
        seen = []
        cell.wait_until(lambda v: v >= threshold, seen.append)
        for i, w in enumerate(writes):
            cell.set(w)
        satisfying = [w for w in writes if w >= threshold]
        if satisfying:
            assert seen == [satisfying[0]]
        else:
            assert seen == []

    @given(increments=st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_waitfor_process_wakes_exactly_at_threshold(self, increments):
        eng = Engine()
        cell = Cell(eng, 0)
        woken_at = []

        def waiter():
            value = yield WaitFor(cell, lambda v: v >= increments)
            woken_at.append(value)

        def writer():
            for _ in range(increments):
                yield Timeout(1.0)
                cell.add(1)

        Process(eng, waiter())
        Process(eng, writer())
        eng.run()
        assert woken_at == [increments]
        assert eng.now == increments
