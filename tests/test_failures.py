"""Failure injection: crashed images, divergent collectives, runaway
programs — every failure must surface loudly and identifiably, never as
a silent hang or a wrong answer."""

import pytest

from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.sim import DeadlockError, ProcessFailure, SimulationLimitExceeded
from tests.conftest import run_small


class TestCrashedImages:
    def test_crash_names_the_failing_image(self):
        def main(ctx):
            yield from ctx.sync_all()
            if ctx.this_image() == 3:
                raise RuntimeError("simulated segfault")
            yield from ctx.sync_all()

        with pytest.raises(ProcessFailure, match="image3") as exc:
            run_small(main, images=4)
        assert isinstance(exc.value.original, RuntimeError)

    def test_crash_before_first_yield(self):
        def main(ctx):
            if ctx.this_image() == 1:
                raise ValueError("died at startup")
            yield from ctx.sync_all()

        with pytest.raises(ProcessFailure, match="died at startup"):
            run_small(main, images=2)

    def test_crash_inside_collective_callback_chain(self):
        """An exception raised mid-reduction must abort the run, not
        deliver a partial result."""

        def main(ctx):
            def bad_op(a, b):
                raise ArithmeticError("poisoned combine")

            yield from ctx.co_reduce(1, op=bad_op)

        with pytest.raises(ProcessFailure, match="poisoned combine"):
            run_small(main, images=4)


class TestDivergentCollectives:
    def test_missing_barrier_participant_deadlocks(self):
        def main(ctx):
            if ctx.this_image() != 4:
                yield from ctx.sync_all()
            else:
                yield from ctx.compute(seconds=1e-9)

        with pytest.raises(DeadlockError):
            run_small(main, images=4)

    def test_deadlock_report_names_waiters(self):
        def main(ctx):
            if ctx.this_image() == 1:
                yield from ctx.sync_all()
            else:
                yield from ctx.compute(seconds=1e-9)

        with pytest.raises(DeadlockError) as exc:
            run_small(main, images=3, ipn=3)
        assert any("image1" in d for d in exc.value.blocked)

    def test_mismatched_collective_kinds_deadlock(self):
        """Half the team calls a reduction, half a broadcast — the
        mailboxes never match and the run reports a deadlock instead of
        crossing payloads."""

        def main(ctx):
            if ctx.this_image() % 2:
                yield from ctx.co_sum(1)
            else:
                yield from ctx.co_broadcast(1, source_image=1)

        with pytest.raises((DeadlockError, ProcessFailure)):
            run_small(main, images=4)

    def test_sync_images_without_partner_deadlocks(self):
        def main(ctx):
            if ctx.this_image() == 1:
                yield from ctx.sync_images([2])
            # image 2 never reciprocates

        with pytest.raises(DeadlockError):
            run_small(main, images=2)

    def test_unreleased_lock_blocks_forever(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            if ctx.this_image() == 1:
                yield from ctx.lock(lock, 1)
                # never unlocks
            else:
                yield from ctx.lock(lock, 1)

        # the contender spins on deterministic backoff forever; the
        # engine's event ceiling turns the livelock into a loud failure
        with pytest.raises((DeadlockError, SimulationLimitExceeded)):
            run_small(main, images=2, max_events=200_000)


class TestRunawayPrograms:
    def test_event_ceiling_catches_infinite_loops(self):
        def main(ctx):
            while True:
                yield from ctx.compute(seconds=1e-9)

        with pytest.raises(SimulationLimitExceeded):
            run_small(main, images=1, ipn=1, max_events=10_000)

    def test_failed_image_does_not_corrupt_other_runs(self):
        """A crashed run leaves no global state behind — the next run is
        clean (regression guard for module-level leakage)."""

        def bad(ctx):
            yield from ctx.sync_all()
            raise RuntimeError("boom")

        def good(ctx):
            total = yield from ctx.co_sum(1)
            return total

        with pytest.raises(ProcessFailure):
            run_small(bad, images=4)
        result = run_small(good, images=4)
        assert result.results == [4, 4, 4, 4]


class TestDegradedHardware:
    def test_slow_interconnect_hurts_flat_more_than_tdlb(self):
        """Failure-adjacent ablation: a degraded (10x latency) link
        inflates every inter-node round; TDLB has ⌈log2 nodes⌉ of them
        per barrier, flat dissemination ⌈log2 n⌉ — plus its loopback
        costs stay, so the aware stack keeps its lead."""
        from dataclasses import replace

        from repro.machine import paper_cluster

        def bench(config, spec):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(4):
                    yield from ctx.sync_all()
                return ctx.now - t0

            from repro.runtime.program import run_spmd
            return max(run_spmd(main, num_images=16, images_per_node=8,
                                spec=spec, config=config).results)

        healthy = paper_cluster(2)
        degraded = replace(
            healthy, network=replace(healthy.network, latency=20e-6)
        )
        t2_h = bench(UHCAF_2LEVEL, healthy)
        t2_d = bench(UHCAF_2LEVEL, degraded)
        t1_d = bench(UHCAF_1LEVEL, degraded)
        assert t2_d > t2_h          # degradation is felt...
        assert t1_d > 2 * t2_d      # ...but the aware stack keeps its lead
