"""Tests for the application kernels (repro.apps): each must match its
NumPy reference on arbitrary shapes and under every runtime stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    cg_solve,
    distributed_fft,
    distributed_transpose,
    jacobi_solve,
    reassemble_fft,
)
from repro.apps.cg import poisson_matrix
from repro.runtime.config import NAMED_CONFIGS, UHCAF_2LEVEL
from repro.sim import ProcessFailure
from tests.conftest import run_small


class TestCg:
    def _solve(self, n, images, ipn, config=UHCAF_2LEVEL, seed=0):
        rng = np.random.default_rng(seed)
        b = rng.random(n)

        def main(ctx):
            x, iters, res = yield from cg_solve(ctx, b)
            return x, iters, res

        result = run_small(main, images=images, ipn=ipn, config=config)
        x = np.concatenate([r[0] for r in result.results])
        return x, b, result.results[0][1], result.results[0][2]

    @pytest.mark.parametrize("n,images,ipn", [
        (32, 1, 1), (32, 2, 2), (64, 4, 2), (64, 8, 4), (128, 16, 8),
    ])
    def test_matches_dense_solve(self, n, images, ipn):
        x, b, iters, res = self._solve(n, images, ipn)
        x_ref = np.linalg.solve(poisson_matrix(n), b)
        assert np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref) < 1e-8
        assert res < 1e-9

    def test_converges_within_n_iterations(self):
        _, _, iters, _ = self._solve(64, 4, 2)
        assert iters <= 64 + 1

    @pytest.mark.parametrize("config_name", sorted(NAMED_CONFIGS))
    def test_every_stack_same_answer(self, config_name):
        x, b, _, _ = self._solve(32, 4, 2, config=NAMED_CONFIGS[config_name])
        x_ref, _, _, _ = self._solve(32, 4, 2)
        np.testing.assert_allclose(x, x_ref, rtol=1e-12)

    def test_indivisible_rows_rejected(self):
        def main(ctx):
            yield from cg_solve(ctx, np.ones(10))

        with pytest.raises(ProcessFailure, match="divide"):
            run_small(main, images=3, ipn=3)


class TestTranspose:
    def _transpose(self, total_rows, cols, images, ipn):
        def main(ctx):
            me = ctx.this_image()
            rows = total_rows // ctx.num_images()
            lo = (me - 1) * rows
            mine = np.add.outer(np.arange(lo, lo + rows) * cols,
                                np.arange(cols)).astype(float)
            out = yield from distributed_transpose(ctx, mine, total_rows)
            return out

        result = run_small(main, images=images, ipn=ipn)
        return np.vstack(result.results)

    @pytest.mark.parametrize("rows,cols,images,ipn", [
        (4, 4, 2, 2), (8, 8, 4, 2), (16, 32, 8, 4), (16, 16, 16, 8),
    ])
    def test_matches_numpy_transpose(self, rows, cols, images, ipn):
        full = np.add.outer(np.arange(rows) * cols,
                            np.arange(cols)).astype(float)
        out = self._transpose(rows, cols, images, ipn)
        assert (out == full.T).all()

    def test_double_transpose_is_identity(self):
        def main(ctx):
            me = ctx.this_image()
            rows = 8 // ctx.num_images()
            rng = np.random.default_rng(me)
            mine = rng.random((rows, 8))
            t = yield from distributed_transpose(ctx, mine, 8)
            back = yield from distributed_transpose(ctx, t, 8)
            return (back == mine).all()

        assert all(run_small(main, images=4, ipn=2).results)

    def test_bad_shapes_rejected(self):
        def main(ctx):
            yield from distributed_transpose(ctx, np.zeros((3, 8)), 8)

        with pytest.raises(ProcessFailure, match="rows"):
            run_small(main, images=4, ipn=2)

    @given(
        log_rows=st.integers(min_value=2, max_value=5),
        log_cols=st.integers(min_value=2, max_value=5),
        images=st.sampled_from([2, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_power_of_two_shape(self, log_rows, log_cols, images):
        rows, cols = 1 << log_rows, 1 << log_cols
        full = np.arange(rows * cols, dtype=float).reshape(rows, cols)

        def main(ctx):
            me = ctx.this_image()
            r = rows // ctx.num_images()
            mine = full[(me - 1) * r: me * r]
            out = yield from distributed_transpose(ctx, mine, rows)
            return out

        result = run_small(main, images=images, ipn=2)
        assert (np.vstack(result.results) == full.T).all()


class TestFft:
    @pytest.mark.parametrize("n1,n2,images,ipn", [
        (8, 8, 2, 2), (16, 8, 4, 2), (16, 32, 8, 4), (32, 32, 16, 8),
    ])
    def test_matches_numpy_fft(self, n1, n2, images, ipn):
        rng = np.random.default_rng(5)
        signal = rng.random(n1 * n2) + 1j * rng.random(n1 * n2)

        def main(ctx):
            me = ctx.this_image()
            rows = n1 // ctx.num_images()
            mine = signal.reshape(n1, n2)[(me - 1) * rows: me * rows]
            out = yield from distributed_fft(ctx, mine, n1, n2)
            return out

        result = run_small(main, images=images, ipn=ipn)
        w = np.vstack(result.results)
        got = reassemble_fft(w)
        ref = np.fft.fft(signal)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_real_signal(self):
        signal = np.sin(np.arange(64) * 0.3)

        def main(ctx):
            me = ctx.this_image()
            rows = 8 // ctx.num_images()
            mine = signal.reshape(8, 8)[(me - 1) * rows: me * rows]
            out = yield from distributed_fft(ctx, mine.astype(complex), 8, 8)
            return out

        result = run_small(main, images=4, ipn=2)
        got = reassemble_fft(np.vstack(result.results))
        np.testing.assert_allclose(got, np.fft.fft(signal), atol=1e-10)


class TestStencil:
    def test_converges_toward_steady_state(self):
        def main(ctx):
            strip, residual = yield from jacobi_solve(
                ctx, rows_per_image=4, cols=16, steps=40, check_every=10)
            return residual

        residuals = run_small(main, images=4, ipn=2).results
        assert len(set(residuals)) == 1       # co_max agrees everywhere
        assert residuals[0] < 10.0

    def test_more_steps_smaller_residual(self):
        def run(steps):
            def main(ctx):
                _, residual = yield from jacobi_solve(
                    ctx, rows_per_image=4, cols=16, steps=steps,
                    check_every=steps)
                return residual

            return run_small(main, images=4, ipn=2).results[0]

        assert run(80) < run(10)

    def test_custom_init(self):
        def main(ctx):
            def init(ctx_, strip):
                strip[:] = 7.0

            strip, _ = yield from jacobi_solve(
                ctx, rows_per_image=2, cols=8, steps=1, init=init)
            return float(strip.mean())

        # uniform field is already steady: stays exactly 7
        results = run_small(main, images=2, ipn=2).results
        assert all(r == 7.0 for r in results)

    def test_on_subteams(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            _, residual = yield from jacobi_solve(
                ctx, rows_per_image=4, cols=8, steps=20)
            yield from ctx.end_team()
            return residual

        results = run_small(main, images=4, ipn=2).results
        assert results[0] == results[1]
        assert results[2] == results[3]

    def test_bad_args_rejected(self):
        def main(ctx):
            yield from jacobi_solve(ctx, 2, 8, steps=0)

        with pytest.raises(ProcessFailure):
            run_small(main, images=2)
