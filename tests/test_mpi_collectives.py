"""Tests for the rooted MPI collectives (reduce/gather/scatter/alltoall)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mpi import MPI_TUNINGS, run_mpi
from repro.machine import paper_cluster
from repro.sim import ProcessFailure


def run(main, ranks=6, ipn=3, tuning="openmpi"):
    nodes = max(-(-ranks // ipn), 1)
    return run_mpi(main, num_ranks=ranks, images_per_node=ipn,
                   spec=paper_cluster(nodes), tuning=tuning)


class TestReduce:
    @pytest.mark.parametrize("root", [0, 3])
    def test_only_root_gets_result(self, root):
        def main(ctx):
            return (yield from ctx.reduce(ctx.rank() + 1, root=root))

        results = run(main).results
        assert results[root] == 21
        assert all(r is None for i, r in enumerate(results) if i != root)

    def test_custom_op(self):
        def main(ctx):
            out = yield from ctx.reduce(ctx.rank(), op=max, root=0)
            return out

        assert run(main).results[0] == 5

    def test_numpy_arrays(self):
        def main(ctx):
            out = yield from ctx.reduce(np.full(3, ctx.rank()),
                                        op=lambda a, b: a + b, root=0)
            return out

        assert (run(main).results[0] == 15).all()


class TestGatherScatter:
    @pytest.mark.parametrize("root", [0, 2, 5])
    def test_gather_ordered_by_rank(self, root):
        def main(ctx):
            return (yield from ctx.gather(f"r{ctx.rank()}", root=root))

        results = run(main).results
        assert results[root] == [f"r{i}" for i in range(6)]

    @pytest.mark.parametrize("root", [0, 2, 5])
    def test_scatter_delivers_per_rank_element(self, root):
        def main(ctx):
            values = None
            if ctx.rank() == root:
                values = [r * 10 for r in range(ctx.size())]
            return (yield from ctx.scatter(values, root=root))

        assert run(main).results == [0, 10, 20, 30, 40, 50]

    def test_scatter_wrong_length_rejected(self):
        def main(ctx):
            yield from ctx.scatter([1, 2], root=0)

        with pytest.raises(ProcessFailure, match="exactly"):
            run(main, ranks=3)

    def test_gather_scatter_roundtrip(self):
        def main(ctx):
            gathered = yield from ctx.gather(ctx.rank() ** 2, root=0)
            if ctx.rank() == 0:
                gathered = [v + 1 for v in gathered]
            back = yield from ctx.scatter(gathered, root=0)
            return back

        assert run(main).results == [r * r + 1 for r in range(6)]

    @given(
        n=st.integers(min_value=1, max_value=9),
        root_seed=st.integers(min_value=0, max_value=100),
        tuning=st.sampled_from(MPI_TUNINGS),
    )
    @settings(max_examples=40, deadline=None)
    def test_gather_any_shape(self, n, root_seed, tuning):
        root = root_seed % n

        def main(ctx):
            return (yield from ctx.gather(ctx.rank(), root=root))

        results = run(main, ranks=n, tuning=tuning).results
        assert results[root] == list(range(n))


class TestAlltoall:
    def test_personalized_exchange(self):
        def main(ctx):
            n = ctx.size()
            out = yield from ctx.alltoall(
                [(ctx.rank(), d) for d in range(n)])
            return out

        results = run(main).results
        for me, out in enumerate(results):
            assert out == [(s, me) for s in range(6)]

    def test_wrong_length_rejected(self):
        def main(ctx):
            yield from ctx.alltoall([1])

        with pytest.raises(ProcessFailure, match="alltoall"):
            run(main, ranks=2)

    def test_single_rank(self):
        def main(ctx):
            return (yield from ctx.alltoall(["self"]))

        assert run(main, ranks=1, ipn=1).results == [["self"]]

    def test_payloads_frozen(self):
        def main(ctx):
            n = ctx.size()
            bufs = [np.full(2, float(ctx.rank())) for _ in range(n)]
            out = yield from ctx.alltoall(bufs)
            for b in bufs:
                b[:] = -1
            return [o.copy() for o in out]

        results = run(main, ranks=3).results
        for out in results:
            for src, arr in enumerate(out):
                assert (arr == src).all()
