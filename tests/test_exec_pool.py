"""The exec worker pool: ordering, fallback layers, crash recovery.

The pool's contract (see ``docs/parallel.md``) is that a parallel run is
indistinguishable from a sequential one except in wall-clock time, and
that misbehaving tasks — raising, hanging, hard-crashing the worker —
cost only their own result.  These tests exercise each clause with real
worker processes where the sandbox allows them; the pool transparently
degrades to inline execution where it does not, and every assertion
below holds either way.
"""

import os
import time

import pytest

from repro.exec import TaskSpec, WorkerPool, resolve_jobs, run_tasks
from repro.exec.pool import JOBS_ENV, MAX_JOBS


# ----------------------------------------------------------------------
# Module-level task bodies (workers import them by reference)
# ----------------------------------------------------------------------
def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad cell {x}")


def crash_once(sentinel):
    """Hard-exit the worker on the first attempt, succeed on the retry."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(17)
    return "recovered"


def crash_always(_):
    os._exit(17)


def napper(seconds):
    time.sleep(seconds)
    return "slept"


def hang_in_worker(seconds):
    """Hang only inside a pool worker; complete instantly when run
    inline in the parent — models environment-induced hangs."""
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        time.sleep(seconds)
    return "inline-ok"


# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_auto_is_effective_cpu_count(self):
        from repro.exec.pool import effective_cpu_count
        assert resolve_jobs("auto") == min(effective_cpu_count(), MAX_JOBS)

    def test_auto_falls_back_to_inline_on_single_cpu(self, monkeypatch):
        # BENCH_HARNESS.json: pooled speedup 0.873 on the 1-CPU runner —
        # with one core available, -j auto must mean "run inline".
        import repro.exec.pool as pool_mod
        monkeypatch.setattr(pool_mod.os, "sched_getaffinity",
                            lambda pid: {0}, raising=False)
        assert pool_mod.auto_jobs() == 1
        assert resolve_jobs("auto") == 1

    def test_auto_respects_affinity_mask_not_machine_size(self, monkeypatch):
        # A 64-core machine with the process pinned to 2 cores gets 2
        # workers, not 64.
        import repro.exec.pool as pool_mod
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 64)
        monkeypatch.setattr(pool_mod.os, "sched_getaffinity",
                            lambda pid: {0, 1}, raising=False)
        assert pool_mod.auto_jobs() == 2

    def test_effective_cpu_count_survives_missing_affinity(self, monkeypatch):
        # Platforms without sched_getaffinity (macOS/Windows) fall back
        # to cpu_count.
        import repro.exec.pool as pool_mod
        monkeypatch.setattr(pool_mod.os, "sched_getaffinity", None,
                            raising=False)
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 5)
        from repro.exec.pool import effective_cpu_count
        assert effective_cpu_count() == 5

    def test_zero_and_negative_mean_auto(self):
        assert resolve_jobs(0) == resolve_jobs("auto")
        assert resolve_jobs(-4) == resolve_jobs("auto")

    def test_capped(self):
        assert resolve_jobs(10_000) == MAX_JOBS

    def test_numeric_string(self):
        assert resolve_jobs("2") == 2

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs("fast")


# ----------------------------------------------------------------------
class TestOrderingAndFallback:
    def test_inline_map_preserves_order(self):
        tasks = [TaskSpec(square, (i,)) for i in range(7)]
        with WorkerPool(jobs=1) as pool:
            results = pool.map(tasks)
        assert [r.value for r in results] == [i * i for i in range(7)]
        assert all(r.inline for r in results)

    def test_pooled_matches_inline(self):
        tasks = [TaskSpec(square, (i,)) for i in range(20)]
        with WorkerPool(jobs=1) as seq, WorkerPool(jobs=2) as par:
            a = seq.map([TaskSpec(square, (i,)) for i in range(20)])
            b = par.map(tasks)
        assert [r.value for r in a] == [r.value for r in b]
        assert [r.index for r in b] == list(range(20))

    def test_on_result_fires_in_submission_order(self):
        seen = []
        tasks = [TaskSpec(square, (i,)) for i in range(16)]
        with WorkerPool(jobs=2, chunk_size=1) as pool:
            pool.map(tasks, on_result=lambda r: seen.append(r.index))
        assert seen == list(range(16))

    def test_closures_fall_back_inline(self):
        captured = 3
        tasks = [TaskSpec(square, (2,)),
                 TaskSpec(lambda: captured * 2)]
        with WorkerPool(jobs=2) as pool:
            results = pool.map(tasks)
        assert results[0].value == 4
        assert results[1].value == 6
        assert results[1].inline  # the lambda never left the parent

    def test_raising_task_reports_error_and_siblings_survive(self):
        tasks = [TaskSpec(square, (1,)), TaskSpec(boom, (7,)),
                 TaskSpec(square, (3,))]
        with WorkerPool(jobs=2) as pool:
            results = pool.map(tasks)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "ValueError" in results[1].error
        assert "bad cell 7" in results[1].error

    def test_pool_reuse_across_maps(self):
        with WorkerPool(jobs=2) as pool:
            first = pool.map([TaskSpec(square, (i,)) for i in range(6)])
            second = pool.map([TaskSpec(square, (i,)) for i in range(6, 12)])
        assert [r.value for r in first] == [i * i for i in range(6)]
        assert [r.value for r in second] == [i * i for i in range(6, 12)]

    def test_explicit_chunk_size(self):
        tasks = [TaskSpec(square, (i,)) for i in range(9)]
        with WorkerPool(jobs=2, chunk_size=2) as pool:
            results = pool.map(tasks)
        assert [r.value for r in results] == [i * i for i in range(9)]


# ----------------------------------------------------------------------
def _pool_is_real(pool) -> bool:
    """Crash/timeout semantics need actual worker processes."""
    return not pool.inline


class TestRobustness:
    def test_worker_crash_retried_once(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [TaskSpec(square, (5,)), TaskSpec(crash_once, (sentinel,))]
        with WorkerPool(jobs=2) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            results = pool.map(tasks)
        assert results[0].value == 25
        assert results[1].value == "recovered"
        assert pool.respawns >= 1

    def test_poison_task_errors_out_but_siblings_finish(self, tmp_path):
        tasks = [TaskSpec(crash_always, (0,)), TaskSpec(square, (6,))]
        with WorkerPool(jobs=2) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            results = pool.map(tasks)
        assert not results[0].ok
        assert "crash" in results[0].error
        assert results[1].value == 36

    def test_task_timeout_kills_only_the_stuck_task(self):
        tasks = [TaskSpec(hang_in_worker, (30.0,)), TaskSpec(square, (4,))]
        with WorkerPool(jobs=2, task_timeout=0.5, retries=0) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            t0 = time.perf_counter()
            results = pool.map(tasks)
            wall = time.perf_counter() - t0
        # the hung worker is killed; the sibling is unaffected; the
        # stuck task completes on its final inline attempt
        assert results[0].value == "inline-ok"
        assert results[0].inline
        assert results[1].value == 16
        assert not results[1].inline
        assert wall < 20  # nowhere near the 30s nap

    def test_timeout_retry_then_inline_fallback(self):
        """The full escalation ladder: pooled attempt times out, the
        retry times out too, then the task gets one untimed inline
        attempt in the parent and succeeds."""
        tasks = [TaskSpec(hang_in_worker, (30.0,)), TaskSpec(square, (9,))]
        with WorkerPool(jobs=2, task_timeout=0.4, retries=1) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            results = pool.map(tasks)
        assert results[0].value == "inline-ok"
        assert results[0].inline
        # two pooled starts + the inline attempt
        assert results[0].attempts == 3
        assert results[1].value == 81
        assert pool.respawns >= 2  # one kill per timed-out pooled attempt


# ----------------------------------------------------------------------
class TestRunTasksFacade:
    def test_results_and_stats(self):
        stats = {}
        results = run_tasks([TaskSpec(square, (i,)) for i in range(5)],
                            jobs=2, stats_out=stats)
        assert [r.value for r in results] == [0, 1, 4, 9, 16]
        assert stats["tasks"] == 5
        assert stats["executed"] == 5
        assert stats["jobs"] == 2

    def test_progress_in_submission_order(self):
        seen = []
        run_tasks([TaskSpec(square, (i,)) for i in range(10)], jobs=2,
                  progress=lambda r: seen.append(r.index))
        assert seen == list(range(10))

    def test_sequential_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        stats = {}
        results = run_tasks([TaskSpec(square, (3,))], stats_out=stats)
        assert results[0].value == 9
        assert stats["jobs"] == 1

    def test_external_pool_reused(self):
        with WorkerPool(jobs=2) as pool:
            a = run_tasks([TaskSpec(square, (i,)) for i in range(4)],
                          pool=pool)
            b = run_tasks([TaskSpec(square, (i,)) for i in range(4, 8)],
                          pool=pool)
        assert [r.value for r in a + b] == [i * i for i in range(8)]


class TestBatchEncoding:
    """Dispatch chunks travel as one pickle blob per chunk."""

    def test_encode_stats_counted(self):
        with WorkerPool(jobs=2, chunk_size=8) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            results = pool.map([TaskSpec(square, (i,)) for i in range(16)])
            assert [r.value for r in results] == [i * i for i in range(16)]
            stats = pool.stats()
        assert stats["encode_tasks"] == 16
        # 16 tasks in chunks of 8 → exactly 2 dumps calls, not 16
        assert stats["encode_batches"] == 2
        assert stats["encode_s"] >= 0.0
        assert stats["encode_saved_est_s"] >= 0.0

    def test_unpicklable_detected_in_batch_and_run_inline(self):
        tasks = [TaskSpec(square, (i,)) for i in range(6)]
        tasks[2] = TaskSpec(lambda: "closure")  # not picklable
        with WorkerPool(jobs=2, chunk_size=3) as pool:
            real = _pool_is_real(pool)
            results = pool.map(tasks)
        expected = [0, 1, "closure", 9, 16, 25]
        assert [r.value for r in results] == expected
        if real:
            assert results[2].inline
            # picklable siblings of the poisoned chunk still went pooled
            assert not results[0].inline and not results[5].inline

    def test_inline_pool_has_no_encode_cost(self):
        with WorkerPool(jobs=1) as pool:
            pool.map([TaskSpec(square, (i,)) for i in range(4)])
            stats = pool.stats()
        assert stats["encode_batches"] == 0
        assert stats["encode_tasks"] == 0

    def test_retry_reencodes_from_specs(self, tmp_path):
        """A crash retry re-frames the task (no stale blob cache)."""
        sentinel = tmp_path / "crashed-once"
        with WorkerPool(jobs=2, chunk_size=2) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            results = pool.map([TaskSpec(crash_once, (str(sentinel),))]
                               + [TaskSpec(square, (i,)) for i in range(5)])
        assert results[0].value == "recovered"
        assert [r.value for r in results[1:]] == [i * i for i in range(5)]
        assert results[0].attempts >= 1

    def test_pool_survives_queue_rebuild(self):
        """Poisoned-pipe recovery: after a full queue + worker rebuild
        (what stall recovery does when requeued chunks keep vanishing
        silently), the pool keeps dispatching and results stay exact."""
        with WorkerPool(jobs=2) as pool:
            if not _pool_is_real(pool):
                pytest.skip("no worker processes in this environment")
            before = pool.map([TaskSpec(square, (i,)) for i in range(4)])
            pool._rebuild()
            assert not pool._broken
            after = pool.map([TaskSpec(square, (i,)) for i in range(8)])
            stats = pool.stats()
        assert [r.value for r in before] == [i * i for i in range(4)]
        assert [r.value for r in after] == [i * i for i in range(8)]
        assert stats["respawns"] >= 2
