"""Unit tests for the conduit layer: path resolution, software overheads,
per-node serialization, and the loopback penalty — the mechanisms behind
the paper's hierarchy argument."""

import pytest

from repro.calibration import DIRECT_SMP, GASNET_RDMA, IB_VERBS, ConduitProfile
from repro.machine import build_machine, paper_cluster
from repro.runtime.conduit import Conduit
from repro.sim import Engine, Process


def make(profile=GASNET_RDMA, aware=False, images=8, ipn=4, nodes=4):
    eng = Engine()
    machine = build_machine(eng, paper_cluster(nodes), images, images_per_node=ipn)
    return eng, Conduit(machine, profile, hierarchy_aware=aware)


def drive(eng, gen):
    Process(eng, gen)
    eng.run()
    return eng.now


class TestPathResolution:
    def test_cross_node_is_remote(self):
        _, c = make()
        assert c.resolve_path(0, 4) == "remote"

    def test_same_node_unaware_is_loopback(self):
        _, c = make(aware=False)
        assert c.resolve_path(0, 1) == "loopback"

    def test_same_node_aware_is_direct(self):
        _, c = make(aware=True)
        assert c.resolve_path(0, 1) == "direct"

    def test_forced_direct_cross_node_rejected(self):
        _, c = make()
        with pytest.raises(ValueError, match="different nodes"):
            c.resolve_path(0, 4, "direct")

    def test_forced_remote_same_node_degrades_to_loopback(self):
        _, c = make()
        assert c.resolve_path(0, 1, "remote") == "loopback"

    def test_forced_direct_same_node_allowed_even_unaware(self):
        # TDLB forces direct for intranode phases regardless of the
        # runtime's default awareness.
        _, c = make(aware=False)
        assert c.resolve_path(0, 1, "direct") == "direct"

    def test_forced_loopback_cross_node_rejected(self):
        # Regression: this used to silently fall through to the remote
        # branch and return "remote" — a forced intra-node path between
        # images on different nodes is a caller bug exactly like forced
        # direct, and must be rejected the same way.
        _, c = make()
        with pytest.raises(ValueError, match="different nodes"):
            c.resolve_path(0, 4, "loopback")

    def test_forced_path_matrix(self):
        """Every (forced path × placement) combination, pinned."""
        _, c = make(aware=True)
        same, cross = (0, 1), (0, 4)
        assert c.resolve_path(*same, "remote") == "loopback"
        assert c.resolve_path(*same, "loopback") == "loopback"
        assert c.resolve_path(*same, "direct") == "direct"
        assert c.resolve_path(*cross, "remote") == "remote"
        with pytest.raises(ValueError, match="different nodes"):
            c.resolve_path(*cross, "loopback")
        with pytest.raises(ValueError, match="different nodes"):
            c.resolve_path(*cross, "direct")

    def test_unknown_path_rejected(self):
        _, c = make()
        with pytest.raises(ValueError, match="unknown path"):
            c.resolve_path(0, 1, "warp")


class TestForcedPathTransfers:
    """The same matrix end-to-end: forced paths through transfer and
    transfer_nb must land in the right counter or raise before any cost
    is charged."""

    @pytest.mark.parametrize("nonblocking", [False, True],
                             ids=["transfer", "transfer_nb"])
    def test_forced_paths_counted_per_resolved_path(self, nonblocking):
        eng, c = make(aware=False)

        def proc():
            send = c.transfer_nb if nonblocking else c.transfer
            yield from send(0, 4, 8, path="remote")      # cross: remote
            yield from send(0, 1, 8, path="remote")      # same: degrades
            yield from send(0, 1, 8, path="loopback")
            yield from send(0, 1, 8, path="direct")

        drive(eng, proc())
        assert c.counts == {"remote": 1, "loopback": 2, "direct": 1}

    @pytest.mark.parametrize("nonblocking", [False, True],
                             ids=["transfer", "transfer_nb"])
    @pytest.mark.parametrize("path", ["loopback", "direct"])
    def test_forced_intranode_cross_node_raises_without_cost(
            self, nonblocking, path):
        eng, c = make(aware=False)

        def proc():
            send = c.transfer_nb if nonblocking else c.transfer
            with pytest.raises(ValueError, match="different nodes"):
                yield from send(0, 4, 8, path=path)

        drive(eng, proc())
        assert eng.now == 0.0  # rejected before charging any time
        assert c.counts == {"remote": 0, "loopback": 0, "direct": 0}


class TestCosts:
    def test_remote_charges_software_plus_injection(self):
        eng, c = make(profile=IB_VERBS)
        t = drive(eng, c.transfer(0, 4, 0))
        net = c.machine.spec.network
        assert t == pytest.approx(IB_VERBS.remote_overhead + net.inject_time(0))

    def test_direct_is_much_cheaper_than_loopback(self):
        eng1, c1 = make(aware=True)
        t_direct = drive(eng1, c1.transfer(0, 1, 8))
        eng2, c2 = make(aware=False)
        t_loop = drive(eng2, c2.transfer(0, 1, 8))
        assert t_loop > t_direct * 5

    def test_loopback_penalty_delays_delivery(self):
        eng, c = make(aware=False)
        arrival = []

        def proc():
            yield from c.transfer(
                0, 1, 8, on_delivered=lambda: arrival.append(eng.now)
            )

        Process(eng, proc())
        eng.run()
        node = c.machine.spec.node
        base = (GASNET_RDMA.local_overhead + node.bus_hold
                + 8 / (node.smp_bandwidth * GASNET_RDMA.loopback_bw_factor)
                + node.intra_socket_latency)
        assert arrival[0] == pytest.approx(base + GASNET_RDMA.loopback_penalty)

    def test_serialized_overhead_queues_per_node(self):
        eng, c = make(profile=GASNET_RDMA)
        done = []

        def proc():
            yield from c.transfer(0, 4, 0)
            done.append(eng.now)

        # Two senders on the same node contend on the progress engine...
        def proc2():
            yield from c.transfer(1, 5, 0)
            done.append(eng.now)

        Process(eng, proc())
        Process(eng, proc2())
        eng.run()
        assert done[1] - done[0] == pytest.approx(GASNET_RDMA.remote_overhead)

    def test_unserialized_overhead_runs_in_parallel(self):
        eng, c = make(profile=IB_VERBS)
        done = []

        def proc(src, dst):
            yield from c.transfer(src, dst, 0)
            done.append(eng.now)

        Process(eng, proc(0, 4))
        Process(eng, proc(1, 5))
        eng.run()
        # Both pay their own software overhead concurrently; the NIC gap
        # is the only serialization.
        net = c.machine.spec.network
        assert done[0] == pytest.approx(IB_VERBS.remote_overhead + net.inject_time(0))
        assert done[1] - done[0] == pytest.approx(net.inject_time(0))

    def test_counters_by_path(self):
        eng, c = make(aware=True)

        def proc():
            yield from c.transfer(0, 4, 8)   # remote
            yield from c.transfer(0, 1, 8)   # direct (aware)
            yield from c.transfer(0, 1, 8, path="loopback")

        Process(eng, proc())
        eng.run()
        assert c.counts == {"remote": 1, "loopback": 1, "direct": 1}
        c.reset_counters()
        assert c.counts == {"remote": 0, "loopback": 0, "direct": 0}


class TestProfiles:
    def test_gasnet_local_path_pricier_than_remote(self):
        """The paper's central observation: unaware same-node RMA through
        GASNet costs *more* software than a genuine remote put."""
        assert GASNET_RDMA.local_overhead > GASNET_RDMA.remote_overhead

    def test_verbs_is_thin(self):
        assert IB_VERBS.remote_overhead < GASNET_RDMA.remote_overhead / 2
        assert not IB_VERBS.serialize_overhead

    def test_direct_smp_is_near_free(self):
        assert DIRECT_SMP.local_overhead < 0.1e-6

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            GASNET_RDMA.remote_overhead = 0.0
