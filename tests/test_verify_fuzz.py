"""Schedule fuzzing: the engine's seeded tie-break policy and the
:func:`repro.verify.fuzz_schedules` driver.

The two invariants that matter:

* with ``tiebreak_seed=None`` the schedule is the historical
  insertion-order one, bit-for-bit — fuzzing is strictly opt-in;
* any seed produces a *legal* interleaving (only same-``(time,
  priority)`` ties are permuted), reproducibly for that seed.
"""

import re

import numpy as np
import pytest

from repro.sim import Engine
from repro.verify import FuzzError, fuzz_schedules
from tests.conftest import run_small


# ----------------------------------------------------------------------
# Engine-level tie-break policy
# ----------------------------------------------------------------------
class TestTiebreakPolicy:
    @staticmethod
    def _order(seed, labels=8):
        engine = Engine(tiebreak_seed=seed)
        fired = []
        for i in range(labels):
            engine.schedule(1.0, lambda i=i: fired.append(i), label=f"e{i}")
        engine.run()
        return fired

    def test_default_is_insertion_order(self):
        assert self._order(None) == list(range(8))

    def test_seed_permutes_ties_deterministically(self):
        once = self._order(42)
        again = self._order(42)
        assert once == again
        assert sorted(once) == list(range(8))

    def test_some_seed_changes_the_order(self):
        assert any(self._order(s) != list(range(8)) for s in range(1, 21))

    def test_different_times_never_reordered(self):
        engine = Engine(tiebreak_seed=7)
        fired = []
        for i in range(6):
            engine.schedule(float(i), lambda i=i: fired.append(i))
        engine.run()
        assert fired == list(range(6))

    def test_priority_still_dominates_jitter(self):
        engine = Engine(tiebreak_seed=3)
        fired = []
        engine.schedule(1.0, lambda: fired.append("low"), priority=1)
        engine.schedule(1.0, lambda: fired.append("high"), priority=0)
        engine.run()
        assert fired == ["high", "low"]

    def test_seed_exposed(self):
        assert Engine().tiebreak_seed is None
        assert Engine(tiebreak_seed=9).tiebreak_seed == 9


# ----------------------------------------------------------------------
# Whole-program determinism
# ----------------------------------------------------------------------
def _reduce_main(ctx):
    me = ctx.this_image()
    value = (np.arange(8, dtype=np.float64) + 1.0) / (me + 0.5)
    total = yield from ctx.co_reduce(value, op="sum")
    yield from ctx.sync_all()
    return float(np.sum(total))


def _normalized_trace(result):
    # The team uid in trace details is a process-global counter; strip it
    # so runs from different tests compare equal.
    return [(t, img, op, re.sub(r"team\d+", "teamN", detail))
            for t, img, op, detail in result.trace]


class TestRunDeterminism:
    def test_default_runs_are_bit_identical(self):
        a = run_small(_reduce_main, images=4, trace=True)
        b = run_small(_reduce_main, images=4, trace=True)
        assert a.time == b.time
        assert a.results == b.results
        assert _normalized_trace(a) == _normalized_trace(b)

    def test_same_seed_runs_are_bit_identical(self):
        a = run_small(_reduce_main, images=4, trace=True, tiebreak_seed=5)
        b = run_small(_reduce_main, images=4, trace=True, tiebreak_seed=5)
        assert a.time == b.time
        assert _normalized_trace(a) == _normalized_trace(b)


# ----------------------------------------------------------------------
# The fuzz driver
# ----------------------------------------------------------------------
class TestFuzzSchedules:
    def test_clean_program_passes(self):
        report = fuzz_schedules(
            _reduce_main, seeds=5, num_images=4, images_per_node=2
        )
        assert report.ok
        assert len(report.outcomes) == 5
        assert all(o.seed == s for o, s in zip(report.outcomes, range(1, 6)))
        assert "interleaving-independent" in report.render()

    def test_explicit_seed_list(self):
        report = fuzz_schedules(
            _reduce_main, seeds=[11, 23], num_images=4, images_per_node=2
        )
        assert [o.seed for o in report.outcomes] == [11, 23]

    def test_racy_program_fails(self):
        # Both images atomic_define image 1's copy with different values
        # and no ordering between the stores: a WAW race, and the read
        # value is interleaving-dependent.
        def racy(ctx):
            me = ctx.this_image()
            var = yield from ctx.atomic_var("flag")
            yield from ctx.atomic_define(var, 1, me)
            yield from ctx.sync_all()
            return ctx.atomic_ref(var) if me == 1 else None

        with pytest.raises(FuzzError) as excinfo:
            fuzz_schedules(racy, seeds=5, num_images=2, images_per_node=2)
        report = excinfo.value.report
        assert not report.ok
        assert any(o.races for o in [report.baseline, *report.outcomes])

    def test_deadlocking_program_reported(self):
        def skipper(ctx):
            if ctx.this_image() == 1:
                yield from ctx.sync_all()
            return None

        report = fuzz_schedules(
            skipper, seeds=2, num_images=2, images_per_node=2, check=False
        )
        assert not report.ok
        assert report.baseline.error is not None
        assert "deadlock" in report.baseline.error
        assert "image2" in report.baseline.error

    def test_extract_hook(self):
        report = fuzz_schedules(
            _reduce_main, seeds=2, num_images=4, images_per_node=2,
            extract=lambda res: res.results[0],
        )
        assert report.ok
