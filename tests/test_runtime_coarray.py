"""Tests for coarrays: allocation, cosubscripted puts/gets, memory model."""

import numpy as np
import pytest

from repro.runtime.coarray import Coarray
from tests.conftest import run_small


class TestCoarrayObject:
    def test_each_proc_gets_own_allocation(self):
        ca = Coarray("a", (4,), np.float64, num_procs=3, fill=1.0)
        ca.local(0)[0] = 99
        assert ca.local(1)[0] == 1.0

    def test_fill_value(self):
        ca = Coarray("a", (2, 2), np.int64, num_procs=2, fill=7)
        assert (ca.local(1) == 7).all()

    def test_nbytes_full_array(self):
        ca = Coarray("a", (10,), np.float64, num_procs=1)
        assert ca.nbytes_of(None) == 80

    def test_nbytes_of_slice(self):
        ca = Coarray("a", (10,), np.float64, num_procs=1)
        assert ca.nbytes_of(slice(0, 3)) == 24

    def test_nbytes_of_scalar_index(self):
        ca = Coarray("a", (10,), np.float64, num_procs=1)
        assert ca.nbytes_of(0) == 8

    def test_nbytes_of_2d_selection(self):
        ca = Coarray("a", (4, 4), np.float64, num_procs=1)
        assert ca.nbytes_of((slice(0, 2), slice(0, 2))) == 32

    def test_read_returns_copy(self):
        ca = Coarray("a", (4,), np.float64, num_procs=1)
        out = ca.read(0)
        out[0] = 42
        assert ca.local(0)[0] == 0

    def test_write_full_shape_mismatch_rejected(self):
        ca = Coarray("a", (4,), np.float64, num_procs=1)
        with pytest.raises(ValueError, match="shape"):
            ca.write(0, np.zeros(3))

    def test_write_scalar_broadcast_fills(self):
        ca = Coarray("a", (4,), np.float64, num_procs=1)
        ca.write(0, 5.0)
        assert (ca.local(0) == 5.0).all()

    def test_write_indexed(self):
        ca = Coarray("a", (4,), np.float64, num_procs=1)
        ca.write(0, 3.0, index=2)
        assert ca.local(0)[2] == 3.0

    def test_dtype_preserved(self):
        ca = Coarray("a", (4,), np.int32, num_procs=1)
        assert ca.local(0).dtype == np.int32

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Coarray("a", (4,), np.float64, num_procs=0)


class TestAllocation:
    def test_allocate_returns_same_object_everywhere(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            return id(a)

        result = run_small(main, images=4)
        assert len(set(result.results)) == 1

    def test_reallocate_same_shape_attaches(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            b = yield from ctx.allocate("a", (4,))
            return a is b

        assert all(run_small(main, images=2).results)

    def test_reallocate_mismatched_shape_rejected(self):
        def main(ctx):
            yield from ctx.allocate("a", (4,))
            yield from ctx.allocate("a", (5,))

        from repro.sim import ProcessFailure
        with pytest.raises(ProcessFailure, match="mismatched"):
            run_small(main, images=2)

    def test_same_name_different_teams_are_distinct(self):
        def main(ctx):
            a = yield from ctx.allocate("x", (2,))
            team = yield from ctx.form_team(1 if ctx.this_image() <= 2 else 2)
            yield from ctx.change_team(team)
            b = yield from ctx.allocate("x", (2,))
            yield from ctx.end_team()
            return a is b

        assert not any(run_small(main, images=4).results)

    def test_allocation_implies_barrier(self):
        """No image can touch the coarray before all have allocated —
        verified by observing the sim time jump of the implicit sync."""

        def main(ctx):
            if ctx.this_image() == 1:
                yield from ctx.compute(seconds=1e-3)  # late arriver
            yield from ctx.allocate("a", (1,))
            return ctx.now

        result = run_small(main, images=4)
        assert min(result.results) >= 1e-3


class TestPutGet:
    def test_put_lands_at_target(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            me = ctx.this_image()
            if me == 1:
                yield from ctx.put(a, 2, np.arange(4.0))
            yield from ctx.sync_all()
            return ctx.local(a).copy()

        result = run_small(main, images=2)
        assert (result.results[1] == np.arange(4.0)).all()
        assert (result.results[0] == 0).all()

    def test_put_with_index(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            if ctx.this_image() == 1:
                yield from ctx.put(a, 2, 9.0, index=3)
            yield from ctx.sync_all()
            return ctx.local(a)[3]

        assert run_small(main, images=2).results[1] == 9.0

    def test_put_copies_source_buffer(self):
        """Mutating the local buffer after a put must not change what the
        target receives (the put snapshot semantics)."""

        def main(ctx):
            a = yield from ctx.allocate("a", (2,))
            if ctx.this_image() == 1:
                buf = np.array([1.0, 2.0])
                yield from ctx.put(a, 2, buf)
                buf[:] = -1
            yield from ctx.sync_all()
            return ctx.local(a).copy()

        assert (run_small(main, images=2).results[1] == [1.0, 2.0]).all()

    def test_get_remote_value(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (3,))
            ctx.local(a)[:] = ctx.this_image()
            yield from ctx.sync_all()
            if ctx.this_image() == 1:
                other = yield from ctx.get(a, 2)
                return other.copy()
            return None

        assert (run_small(main, images=2).results[0] == 2).all()

    def test_get_self_is_local_copy(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (2,))
            ctx.local(a)[:] = 5
            mine = yield from ctx.get(a, ctx.this_image())
            return (mine == 5).all()

        assert all(run_small(main, images=2).results)

    def test_get_with_index(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            ctx.local(a)[:] = ctx.this_image() * 10
            yield from ctx.sync_all()
            value = yield from ctx.get(a, 2, index=1)
            return float(value)

        assert run_small(main, images=2).results[0] == 20.0

    def test_put_costs_simulated_time(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (1024,))
            t0 = ctx.now
            if ctx.this_image() == 1:
                yield from ctx.put(a, 2, np.zeros(1024))
            return ctx.now - t0

        assert run_small(main, images=2).results[0] > 0

    def test_put_team_relative_indexing(self):
        """Image indices in put/get are relative to the current team."""

        def main(ctx):
            a = yield from ctx.allocate("a", (1,))
            me = ctx.this_image()
            color = 1 if me <= 2 else 2
            team = yield from ctx.form_team(color)
            yield from ctx.change_team(team)
            if ctx.this_image() == 1:
                # team-index 2 is a different global image in each team
                yield from ctx.put(a, 2, float(color))
            yield from ctx.sync_all()
            yield from ctx.end_team()
            return float(ctx.local(a)[0])

        result = run_small(main, images=4)
        assert result.results == [0.0, 1.0, 0.0, 2.0]
