"""HPL tests: block-cyclic maps, flop counts, and full verified runs."""

import numpy as np
import pytest

from repro.hpl.costmodel import (
    gemm_flops,
    getrf_flops,
    hpl_total_flops,
    scale_flops,
    trsm_flops,
)
from repro.hpl.driver import run_hpl
from repro.hpl.grid import BlockCyclicGrid, grid_shape
from repro.hpl.panel import _factor_diag_inplace, unpack_lu
from repro.hpl.state import make_block
from repro.runtime.config import (
    CAF20_GFORTRAN,
    CAF20_OPENUH,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)


class TestGridShape:
    def test_perfect_square(self):
        assert grid_shape(16) == (4, 4)

    def test_rectangular(self):
        assert grid_shape(8) == (2, 4)

    def test_prime_degenerates_to_row(self):
        assert grid_shape(7) == (1, 7)

    def test_single(self):
        assert grid_shape(1) == (1, 1)

    def test_p_le_q(self):
        for n in range(1, 65):
            p, q = grid_shape(n)
            assert p <= q and p * q == n


class TestBlockCyclicGrid:
    def g(self, index=1, n=256, nb=64, p=2, q=2):
        return BlockCyclicGrid(n=n, nb=nb, p=p, q=q, index=index)

    def test_grid_coords_row_major(self):
        assert (self.g(1).my_row, self.g(1).my_col) == (0, 0)
        assert (self.g(2).my_row, self.g(2).my_col) == (0, 1)
        assert (self.g(3).my_row, self.g(3).my_col) == (1, 0)

    def test_owner_cycles(self):
        g = self.g()
        assert g.owner_coords(0, 0) == (0, 0)
        assert g.owner_coords(1, 0) == (1, 0)
        assert g.owner_coords(2, 3) == (0, 1)

    def test_owner_index_inverse_of_coords(self):
        g = self.g()
        for bi in range(g.nblocks):
            for bj in range(g.nblocks):
                owner = g.owner_index(bi, bj)
                holder = BlockCyclicGrid(n=g.n, nb=g.nb, p=g.p, q=g.q,
                                         index=owner)
                assert holder.owns(bi, bj)

    def test_every_block_owned_exactly_once(self):
        grids = [self.g(i) for i in range(1, 5)]
        counts = {}
        for g in grids:
            for blk in g.my_blocks():
                counts[blk] = counts.get(blk, 0) + 1
        assert all(c == 1 for c in counts.values())
        assert len(counts) == grids[0].nblocks ** 2

    def test_my_blocks_in_col(self):
        g = self.g(1)  # row 0, col 0; nblocks=4
        assert g.my_blocks_in_col(0) == [0, 2]
        assert g.my_blocks_in_col(0, from_bi=1) == [2]
        assert g.my_blocks_in_col(1) == []  # column 1 not mine

    def test_my_blocks_in_row(self):
        g = self.g(2)  # row 0, col 1
        assert g.my_blocks_in_row(0) == [1, 3]
        assert g.my_blocks_in_row(0, from_bj=2) == [3]
        assert g.my_blocks_in_row(1) == []

    def test_trailing_blocks_shrink(self):
        g = self.g(4)  # row 1, col 1
        assert set(g.trailing_blocks(0)) == {(1, 1), (1, 3), (3, 1), (3, 3)}
        assert set(g.trailing_blocks(2)) == {(3, 3)}
        assert set(g.trailing_blocks(3)) == set()

    def test_nb_must_divide_n(self):
        with pytest.raises(ValueError, match="divide"):
            BlockCyclicGrid(n=100, nb=32, p=2, q=2, index=1)

    def test_index_range_checked(self):
        with pytest.raises(ValueError):
            BlockCyclicGrid(n=128, nb=64, p=2, q=2, index=5)

    def test_team_numbers_one_based(self):
        assert self.g(1).row_team_number == 1
        assert self.g(3).row_team_number == 2
        assert self.g(2).col_team_number == 2


class TestCostModel:
    def test_getrf_square(self):
        # n=m: mn² − n³/3 = (2/3)n³
        assert getrf_flops(30, 30) == pytest.approx(2 / 3 * 30**3)

    def test_trsm(self):
        assert trsm_flops(4, 8) == 128

    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_scale_linear(self):
        assert scale_flops(17) == 17

    def test_hpl_total_dominated_by_cubic(self):
        n = 4096
        assert hpl_total_flops(n) == pytest.approx(2 / 3 * n**3, rel=1e-2)


class TestLocalKernels:
    def test_factor_diag_reproduces_block(self):
        rng = np.random.default_rng(0)
        a = rng.random((16, 16)) + 16 * np.eye(16)
        original = a.copy()
        _factor_diag_inplace(a)
        lower, upper = unpack_lu(a)
        np.testing.assert_allclose(lower @ upper, original, rtol=1e-12)

    def test_unpack_shapes(self):
        packed = np.arange(9.0).reshape(3, 3)
        lower, upper = unpack_lu(packed)
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(lower, np.tril(lower))
        assert np.allclose(upper, np.triu(upper))

    def test_make_block_deterministic(self):
        a = make_block(128, 32, 1, 2)
        b = make_block(128, 32, 1, 2)
        assert (a == b).all()

    def test_make_block_diag_dominant_only_on_diagonal_blocks(self):
        diag = make_block(128, 32, 1, 1)
        off = make_block(128, 32, 1, 2)
        assert abs(diag[0, 0]) > 64
        assert abs(off).max() <= 0.5


class TestVerifiedRuns:
    @pytest.mark.parametrize("images,ipn,n,nb", [
        (1, 1, 64, 32),
        (2, 2, 128, 32),
        (4, 2, 128, 32),
        (4, 4, 192, 32),
        (8, 4, 128, 32),
        (16, 8, 256, 32),
    ])
    def test_residual_tiny(self, images, ipn, n, nb):
        report = run_hpl(n=n, nb=nb, num_images=images, images_per_node=ipn,
                         verify=True)
        assert report.residual is not None
        assert report.residual < 1e-12

    @pytest.mark.parametrize("config", [
        UHCAF_2LEVEL, UHCAF_1LEVEL, CAF20_OPENUH, CAF20_GFORTRAN,
    ])
    def test_all_stacks_compute_same_factorization(self, config):
        report = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                         config=config, verify=True)
        assert report.residual < 1e-12

    def test_report_fields(self):
        report = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                         verify=True)
        assert report.n == 64 and report.nb == 32
        assert (report.p, report.q) == (1, 2)
        assert report.seconds > 0
        assert report.gflops == pytest.approx(
            hpl_total_flops(64) / report.seconds / 1e9
        )

    def test_seed_changes_matrix_not_correctness(self):
        r1 = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                     verify=True, seed=1)
        r2 = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                     verify=True, seed=2)
        assert r1.residual < 1e-12 and r2.residual < 1e-12

    def test_model_mode_times_match_verify_mode(self):
        """Cost charging must be identical with and without real math."""
        rv = run_hpl(n=128, nb=32, num_images=4, images_per_node=2, verify=True)
        rm = run_hpl(n=128, nb=32, num_images=4, images_per_node=2, verify=False)
        assert rm.seconds == pytest.approx(rv.seconds, rel=1e-9)

    def test_two_level_not_slower_in_model_mode(self):
        r2 = run_hpl(n=256, nb=32, num_images=16, images_per_node=8)
        r1 = run_hpl(n=256, nb=32, num_images=16, images_per_node=8,
                     config=UHCAF_1LEVEL)
        assert r2.gflops > r1.gflops

    def test_gfortran_backend_slower(self):
        # Large enough that compute dominates, so the backend code-quality
        # gap (the 80-vs-29.48 axis of Figure 1) is visible.
        fast = run_hpl(n=512, nb=64, num_images=4, images_per_node=2,
                       config=CAF20_OPENUH)
        slow = run_hpl(n=512, nb=64, num_images=4, images_per_node=2,
                       config=CAF20_GFORTRAN)
        assert fast.gflops > 2 * slow.gflops
