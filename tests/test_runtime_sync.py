"""Tests for sync images, sync memory, events, and atomics."""

import numpy as np
import pytest

from repro.sim import ProcessFailure
from tests.conftest import run_small


class TestSyncImages:
    def test_pairwise_rendezvous_orders_writes(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (1,))
            me = ctx.this_image()
            if me == 1:
                yield from ctx.put(a, 2, 42.0)
                yield from ctx.sync_images([2])
            elif me == 2:
                yield from ctx.sync_images([1])
                return float(ctx.local(a)[0])
            return None

        assert run_small(main, images=2).results[1] == 42.0

    def test_star_syncs_with_everyone(self):
        def main(ctx):
            me = ctx.this_image()
            if me == 1:
                yield from ctx.compute(seconds=1e-4)
            yield from ctx.sync_images("*")
            return ctx.now

        result = run_small(main, images=4)
        assert min(result.results) >= 1e-4

    def test_self_in_list_is_noop(self):
        def main(ctx):
            yield from ctx.sync_images([ctx.this_image()])
            return True

        assert all(run_small(main, images=2).results)

    def test_repeated_rendezvous_with_same_peer(self):
        def main(ctx):
            me = ctx.this_image()
            peer = 2 if me == 1 else 1
            for _ in range(5):
                yield from ctx.sync_images([peer])
            return True

        assert all(run_small(main, images=2).results)

    def test_duplicate_peer_rejected(self):
        def main(ctx):
            yield from ctx.sync_images([2, 2])

        with pytest.raises(ProcessFailure, match="duplicate"):
            run_small(main, images=2)

    def test_invalid_string_rejected(self):
        def main(ctx):
            yield from ctx.sync_images("all")

        with pytest.raises(ProcessFailure):
            run_small(main, images=2)

    def test_partial_group_sync(self):
        """Images 1 and 2 rendezvous while 3 and 4 do their own —
        no interference, no global barrier."""

        def main(ctx):
            me = ctx.this_image()
            peer = {1: 2, 2: 1, 3: 4, 4: 3}[me]
            yield from ctx.sync_images([peer])
            return True

        assert all(run_small(main, images=4).results)

    def test_sync_memory_is_cheap_and_local(self):
        def main(ctx):
            t0 = ctx.now
            yield from ctx.sync_memory()
            return ctx.now - t0

        times = run_small(main, images=2).results
        assert all(0 < t < 1e-6 for t in times)


class TestEvents:
    def test_post_then_wait(self):
        def main(ctx):
            ev = yield from ctx.event_var("ev")
            me = ctx.this_image()
            if me == 1:
                yield from ctx.event_post(ev, 2)
            elif me == 2:
                yield from ctx.event_wait(ev)
                return ctx.now
            return None

        assert run_small(main, images=2).results[1] > 0

    def test_wait_until_count(self):
        def main(ctx):
            ev = yield from ctx.event_var("ev")
            me = ctx.this_image()
            if me != 1:
                yield from ctx.event_post(ev, 1)
            else:
                yield from ctx.event_wait(ev, until_count=3)
                return True
            return None

        assert run_small(main, images=4).results[0] is True

    def test_wait_consumes_posts(self):
        def main(ctx):
            ev = yield from ctx.event_var("ev")
            me = ctx.this_image()
            if me == 1:
                yield from ctx.event_post(ev, 2)
                yield from ctx.event_post(ev, 2)
            elif me == 2:
                yield from ctx.event_wait(ev, until_count=2)
                return ctx.event_query(ev)
            return None

        assert run_small(main, images=2).results[1] == 0

    def test_query_sees_pending(self):
        def main(ctx):
            ev = yield from ctx.event_var("ev")
            me = ctx.this_image()
            if me == 1:
                yield from ctx.event_post(ev, 2)
            yield from ctx.sync_all()
            if me == 2:
                return ctx.event_query(ev)
            return None

        assert run_small(main, images=2).results[1] == 1

    def test_bad_until_count_rejected(self):
        def main(ctx):
            ev = yield from ctx.event_var("ev")
            yield from ctx.event_wait(ev, until_count=0)

        with pytest.raises(ProcessFailure):
            run_small(main, images=2)


class TestAtomics:
    def test_atomic_add_accumulates_from_all(self):
        def main(ctx):
            var = yield from ctx.atomic_var("ctr")
            yield from ctx.atomic_add(var, 1, 1)
            yield from ctx.sync_all()
            if ctx.this_image() == 1:
                return ctx.atomic_ref(var)
            return None

        assert run_small(main, images=8, ipn=4).results[0] == 8

    def test_atomic_define_overwrites(self):
        def main(ctx):
            var = yield from ctx.atomic_var("x", initial=5)
            if ctx.this_image() == 2:
                yield from ctx.atomic_define(var, 1, 99)
            yield from ctx.sync_all()
            return ctx.atomic_ref(var)

        result = run_small(main, images=2)
        assert result.results[0] == 99
        assert result.results[1] == 5

    def test_atomic_and_or_xor(self):
        def main(ctx):
            var = yield from ctx.atomic_var("bits", initial=0b1100)
            me = ctx.this_image()
            if me == 2:
                yield from ctx.atomic_op(var, 1, "and", 0b1010)
            yield from ctx.sync_all()
            if me == 2:
                yield from ctx.atomic_op(var, 1, "or", 0b0001)
            yield from ctx.sync_all()
            if me == 2:
                yield from ctx.atomic_op(var, 1, "xor", 0b1111)
            yield from ctx.sync_all()
            return ctx.atomic_ref(var)

        # ((0b1100 & 0b1010) | 0b0001) ^ 0b1111 = (0b1000|1)^0b1111 = 0b0110
        assert run_small(main, images=2).results[0] == 0b0110

    def test_fetch_add_returns_old_value(self):
        def main(ctx):
            var = yield from ctx.atomic_var("ctr", initial=10)
            old = None
            if ctx.this_image() == 2:
                old = yield from ctx.atomic_fetch_add(var, 1, 5)
            yield from ctx.sync_all()
            return old if old is not None else ctx.atomic_ref(var)

        result = run_small(main, images=2)
        assert result.results[1] == 10  # the fetched old value
        assert result.results[0] == 15  # the updated target

    def test_fetch_add_serializes_increments(self):
        """Concurrent fetch_adds each observe a distinct old value."""

        def main(ctx):
            var = yield from ctx.atomic_var("ctr")
            old = yield from ctx.atomic_fetch_add(var, 1, 1)
            yield from ctx.sync_all()
            return (old, ctx.atomic_ref(var) if ctx.this_image() == 1 else None)

        result = run_small(main, images=4)
        olds = sorted(r[0] for r in result.results)
        assert olds == [0, 1, 2, 3]
        assert result.results[0][1] == 4

    def test_cas_succeeds_on_expected(self):
        def main(ctx):
            var = yield from ctx.atomic_var("lock")
            old = None
            if ctx.this_image() == 2:
                old = yield from ctx.atomic_cas(var, 1, expected=0, desired=7)
            yield from ctx.sync_all()
            return old if old is not None else ctx.atomic_ref(var)

        result = run_small(main, images=2)
        assert result.results[1] == 0  # old value at swap time
        assert result.results[0] == 7  # swap applied

    def test_cas_fails_on_mismatch(self):
        def main(ctx):
            var = yield from ctx.atomic_var("lock", initial=3)
            if ctx.this_image() == 2:
                old = yield from ctx.atomic_cas(var, 1, expected=0, desired=7)
                yield from ctx.sync_images([1])
                return old
            yield from ctx.sync_images([2])
            return ctx.atomic_ref(var)

        result = run_small(main, images=2)
        assert result.results[1] == 3  # old value returned
        assert result.results[0] == 3  # swap did not happen

    def test_unknown_atomic_op_rejected(self):
        def main(ctx):
            var = yield from ctx.atomic_var("x")
            yield from ctx.atomic_op(var, 1, "nand", 1)

        with pytest.raises(ProcessFailure, match="unknown atomic"):
            run_small(main, images=2)
