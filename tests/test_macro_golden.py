"""Golden-trace matrix for macro-events (:mod:`repro.collectives.macro`).

Macro-on and macro-off runs must agree on final coarray states, final
simulated time, and fabric traffic across every conformance machine
shape; macro mode must auto-disable whenever an observer (HB monitor,
trace, tiebreak seed, fault schedule) is attached; and the one documented
exactness boundary — a zero-compute hierarchical barrier loop, where a
committed window's virtual release ladder cannot feel the next window's
fine-grained traffic — must be *detected* (``inexact``/``"overlap"``)
rather than silently absorbed.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultSchedule, ImageFailure, Stat
from repro.machine import build_machine
from repro.runtime.program import run_spmd
from repro.sim.engine import Engine
from repro.verify import HBMonitor
from repro.verify.conformance import SHAPES

ALL_SHAPES = sorted(SHAPES)

#: per-iteration compute larger than any shape's release-ladder span, so
#: re-arrivals land after the previous window's last virtual delivery —
#: inside the exactness envelope (see docs/simulation.md)
SEPARATING_FLOPS = 3000.0


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def _barrier_once(ctx):
    yield from ctx.sync_all()
    return ctx.now


def _barrier_loop(ctx, iters):
    for _ in range(iters):
        yield from ctx.sync_all()
    return ctx.now


def _separated_loop(ctx, iters):
    for _ in range(iters):
        yield ctx.compute_cost(SEPARATING_FLOPS)
        yield from ctx.sync_all()
    return ctx.now


def _ring_stencil(ctx, iters):
    """Puts between compute-separated barriers: real coarray state.

    Compute brackets the put on both sides: ``allocate`` ends in an
    internal barrier, so work must separate its window from the first
    put, and the put's own fabric traffic from the next window.
    """
    me = ctx.this_image()
    n = ctx.num_images()
    co = yield from ctx.allocate("gold", (4,))
    for it in range(iters):
        yield ctx.compute_cost(SEPARATING_FLOPS)
        target = me % n + 1
        yield from ctx.put(co, target, float(me * 100 + it), index=it % 4)
        yield ctx.compute_cost(SEPARATING_FLOPS)
        yield from ctx.sync_all()
    return ctx.local(co).tolist()


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _run(shape_name, main, args=(), macro=None, tiebreak_seed=None, **kw):
    shape = SHAPES[shape_name]
    engine = Engine(tiebreak_seed=tiebreak_seed)
    machine = build_machine(engine, shape.spec, shape.num_images,
                            images_per_node=shape.images_per_node)
    return run_spmd(main, machine=machine, args=args,
                    macro_events=macro, **kw)


def _assert_golden(on, off):
    assert on.time == off.time  # bit-identical, not approx
    assert on.results == off.results
    assert on.traffic == off.traffic


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
class TestGoldenMatrix:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_single_barrier_identical(self, shape):
        on = _run(shape, _barrier_once, macro=True)
        off = _run(shape, _barrier_once, macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == 1
        assert not on.world.macro.inexact
        assert off.world.macro.replays == 0

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_compute_separated_loop_identical(self, shape):
        on = _run(shape, _separated_loop, args=(4,), macro=True)
        off = _run(shape, _separated_loop, args=(4,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays >= 1
        assert not on.world.macro.inexact

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_coarray_states_identical(self, shape):
        on = _run(shape, _ring_stencil, args=(5,), macro=True)
        off = _run(shape, _ring_stencil, args=(5,), macro=False)
        _assert_golden(on, off)
        assert not on.world.macro.inexact

    def test_flat_tight_loop_sustains_collapse(self):
        # Flat teams exit every window at one instant: collapse must
        # sustain across the whole loop and stay exact with no compute
        # separating the barriers at all.
        iters = 6
        on = _run("flat4", _barrier_loop, args=(iters,), macro=True)
        off = _run("flat4", _barrier_loop, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters
        assert not on.world.macro.inexact
        assert on.world.macro.disabled_reason is None


class TestExactnessBoundary:
    def test_tight_hierarchical_loop_is_detected(self):
        # Zero-compute loop on a hierarchical shape: the first window
        # commits, the re-arrival traffic overlaps its virtual release
        # ladder, and the coordinator must notice (post-commit grant
        # audit), flag the run inexact, and disable itself.
        on = _run("2x4", _barrier_loop, args=(6,), macro=True)
        off = _run("2x4", _barrier_loop, args=(6,), macro=False)
        m = on.world.macro
        # semantic state never drifts — only timestamps can
        assert on.results is not None
        assert m.replays <= 1  # at most the first window was bet on
        if on.time != off.time:
            assert m.inexact
            assert m.disabled_reason == "overlap"

    def test_lost_bet_disables_for_rest_of_run(self):
        def loop_then_separated(ctx, iters):
            for _ in range(iters):
                yield from ctx.sync_all()
            for _ in range(2):
                yield ctx.compute_cost(SEPARATING_FLOPS)
                yield from ctx.sync_all()
            return ctx.now

        on = _run("2x4", loop_then_separated, args=(4,), macro=True)
        m = on.world.macro
        if m.inexact:
            # once the bet is lost nothing replays again
            assert m.disabled_reason is not None
            assert m.replays <= 1


class TestAutoDisable:
    def test_monitor_disables(self):
        on = _run("2x4", _barrier_once, macro=True, monitor=HBMonitor())
        assert on.world.macro.replays == 0

    def test_trace_disables(self):
        on = _run("2x4", _barrier_once, macro=True, trace=True)
        assert on.world.macro.replays == 0
        assert on.trace  # the trace actually recorded fine-grained ops

    def test_tiebreak_seed_disables(self):
        on = _run("2x4", _barrier_once, macro=True, tiebreak_seed=3)
        assert on.world.macro.replays == 0

    def test_faults_disable_and_match_fine_grained(self):
        def survivor_loop(ctx, iters):
            st = Stat()
            for _ in range(iters):
                yield ctx.compute_cost(SEPARATING_FLOPS)
                yield from ctx.sync_all(stat=st)
            return (ctx.now, st.code, tuple(st.failed_indices))

        sched = FaultSchedule(failures=(ImageFailure(3, 20e-6),))
        on = _run("2x4", survivor_loop, args=(30,), macro=True,
                  faults=sched)
        off = _run("2x4", survivor_loop, args=(30,), macro=False,
                   faults=sched)
        assert on.world.macro.replays == 0
        assert on.time == off.time
        assert on.results == off.results

    def test_config_flag_disables(self):
        on = _run("2x4", _barrier_once, macro=False)
        assert on.world.macro.replays == 0
        assert on.world.macro.fine_pins == 0  # never even consulted
