"""Golden-trace matrix for macro-events (:mod:`repro.collectives.macro`).

Macro-on and macro-off runs must agree on final coarray states, final
simulated time, and fabric traffic across every conformance machine
shape — for barriers *and* for the data-carrying reduce/broadcast
windows; macro mode must auto-disable whenever an observer (HB monitor,
trace, tiebreak seed, fault schedule) is attached; and the one documented
exactness boundary — a zero-compute hierarchical barrier loop, where a
committed window's virtual release ladder cannot feel the next window's
fine-grained traffic — must be *detected* (``inexact``/``"overlap"``)
rather than silently absorbed.  Flat tight collective loops are the
chained-window case: every window must collapse from a single analysis
(the extreme-scale sweep's whole premise), which the sustained-collapse
tests pin with exact replay counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultSchedule, ImageFailure, Stat
from repro.machine import build_machine, paper_cluster
from repro.runtime.config import UHCAF_2LEVEL
from repro.runtime.program import run_spmd
from repro.sim.engine import Engine
from repro.verify import HBMonitor
from repro.verify.conformance import SHAPES

ALL_SHAPES = sorted(SHAPES)

#: per-iteration compute larger than any shape's release-ladder span, so
#: re-arrivals land after the previous window's last virtual delivery —
#: inside the exactness envelope (see docs/simulation.md)
SEPARATING_FLOPS = 3000.0

#: the data windows (reduce fold/unfold, broadcast tree) span much more
#: than a barrier's release ladder, so their separated loops need a
#: proportionally larger compute block between windows
DATA_SEPARATING_FLOPS = 500000.0


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def _barrier_once(ctx):
    yield from ctx.sync_all()
    return ctx.now


def _barrier_loop(ctx, iters):
    for _ in range(iters):
        yield from ctx.sync_all()
    return ctx.now


def _separated_loop(ctx, iters):
    for _ in range(iters):
        yield ctx.compute_cost(SEPARATING_FLOPS)
        yield from ctx.sync_all()
    return ctx.now


def _ring_stencil(ctx, iters):
    """Puts between compute-separated barriers: real coarray state.

    Compute brackets the put on both sides: ``allocate`` ends in an
    internal barrier, so work must separate its window from the first
    put, and the put's own fabric traffic from the next window.
    """
    me = ctx.this_image()
    n = ctx.num_images()
    co = yield from ctx.allocate("gold", (4,))
    for it in range(iters):
        yield ctx.compute_cost(SEPARATING_FLOPS)
        target = me % n + 1
        yield from ctx.put(co, target, float(me * 100 + it), index=it % 4)
        yield ctx.compute_cost(SEPARATING_FLOPS)
        yield from ctx.sync_all()
    return ctx.local(co).tolist()


def _sep_reduce(ctx, iters):
    me = float(ctx.this_image())
    acc = me
    for _ in range(iters):
        yield ctx.compute_cost(DATA_SEPARATING_FLOPS)
        acc = yield from ctx.co_sum(acc + me)
    return acc


def _tight_reduce(ctx, iters):
    acc = float(ctx.this_image())
    for _ in range(iters):
        acc = yield from ctx.co_sum(acc * 0.5)
    return acc


def _tight_reduce_arr(ctx, iters):
    acc = np.arange(4, dtype=float) + ctx.this_image()
    for _ in range(iters):
        acc = yield from ctx.co_max(acc)
        acc = acc - 0.25
    return acc.tolist()


def _sep_bcast(ctx, iters):
    me = ctx.this_image()
    out = []
    for it in range(iters):
        yield ctx.compute_cost(DATA_SEPARATING_FLOPS)
        v = yield from ctx.co_broadcast(
            float(me * 10 + it), source_image=1 + it % ctx.num_images())
        out.append(v)
    return out


def _tight_bcast(ctx, iters):
    me = ctx.this_image()
    out = []
    for it in range(iters):
        v = yield from ctx.co_broadcast(float(me + it), source_image=1)
        out.append(v)
    return out


def _mixed_collectives(ctx, iters):
    me = ctx.this_image()
    acc = float(me)
    for it in range(iters):
        yield ctx.compute_cost(DATA_SEPARATING_FLOPS)
        acc = yield from ctx.co_sum(acc)
        yield ctx.compute_cost(DATA_SEPARATING_FLOPS)
        acc = yield from ctx.co_broadcast(acc + it, source_image=1)
    return acc


def _tight_mixed_flat(ctx, iters):
    acc = float(ctx.this_image())
    for _ in range(iters):
        acc = yield from ctx.co_sum(acc * 0.5)
        acc = yield from ctx.co_min(acc + 1.0)
    return acc


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _run(shape_name, main, args=(), macro=None, tiebreak_seed=None, **kw):
    shape = SHAPES[shape_name]
    engine = Engine(tiebreak_seed=tiebreak_seed)
    machine = build_machine(engine, shape.spec, shape.num_images,
                            images_per_node=shape.images_per_node)
    return run_spmd(main, machine=machine, args=args,
                    macro_events=macro, **kw)


def _run_flat(num_images, main, args=(), macro=None, config=None, **kw):
    """A flat team (one image per node) of any size — the shape where
    chained windows sustain collapse; not limited to conformance SHAPES."""
    engine = Engine()
    machine = build_machine(engine, paper_cluster(num_images), num_images,
                            images_per_node=1)
    if config is not None:
        kw["config"] = config
    return run_spmd(main, machine=machine, args=args,
                    macro_events=macro, **kw)


def _assert_golden(on, off):
    assert on.time == off.time  # bit-identical, not approx
    assert on.results == off.results
    assert on.traffic == off.traffic


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
class TestGoldenMatrix:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_single_barrier_identical(self, shape):
        on = _run(shape, _barrier_once, macro=True)
        off = _run(shape, _barrier_once, macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == 1
        assert not on.world.macro.inexact
        assert off.world.macro.replays == 0

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_compute_separated_loop_identical(self, shape):
        on = _run(shape, _separated_loop, args=(4,), macro=True)
        off = _run(shape, _separated_loop, args=(4,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays >= 1
        assert not on.world.macro.inexact

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_coarray_states_identical(self, shape):
        on = _run(shape, _ring_stencil, args=(5,), macro=True)
        off = _run(shape, _ring_stencil, args=(5,), macro=False)
        _assert_golden(on, off)
        assert not on.world.macro.inexact

    def test_flat_tight_loop_sustains_collapse(self):
        # Flat teams exit every window at one instant: collapse must
        # sustain across the whole loop and stay exact with no compute
        # separating the barriers at all.
        iters = 6
        on = _run("flat4", _barrier_loop, args=(iters,), macro=True)
        off = _run("flat4", _barrier_loop, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters
        assert not on.world.macro.inexact
        assert on.world.macro.disabled_reason is None


class TestExactnessBoundary:
    def test_tight_hierarchical_loop_is_detected(self):
        # Zero-compute loop on a hierarchical shape: the first window
        # commits, the re-arrival traffic overlaps its virtual release
        # ladder, and the coordinator must notice (post-commit grant
        # audit), flag the run inexact, and disable itself.
        on = _run("2x4", _barrier_loop, args=(6,), macro=True)
        off = _run("2x4", _barrier_loop, args=(6,), macro=False)
        m = on.world.macro
        # semantic state never drifts — only timestamps can
        assert on.results is not None
        assert m.replays <= 1  # at most the first window was bet on
        if on.time != off.time:
            assert m.inexact
            assert m.disabled_reason == "overlap"

    def test_lost_bet_disables_for_rest_of_run(self):
        def loop_then_separated(ctx, iters):
            for _ in range(iters):
                yield from ctx.sync_all()
            for _ in range(2):
                yield ctx.compute_cost(SEPARATING_FLOPS)
                yield from ctx.sync_all()
            return ctx.now

        on = _run("2x4", loop_then_separated, args=(4,), macro=True)
        m = on.world.macro
        if m.inexact:
            # once the bet is lost nothing replays again
            assert m.disabled_reason is not None
            assert m.replays <= 1


class TestAutoDisable:
    def test_monitor_disables(self):
        on = _run("2x4", _barrier_once, macro=True, monitor=HBMonitor())
        assert on.world.macro.replays == 0

    def test_trace_disables(self):
        on = _run("2x4", _barrier_once, macro=True, trace=True)
        assert on.world.macro.replays == 0
        assert on.trace  # the trace actually recorded fine-grained ops

    def test_tiebreak_seed_disables(self):
        on = _run("2x4", _barrier_once, macro=True, tiebreak_seed=3)
        assert on.world.macro.replays == 0

    def test_faults_disable_and_match_fine_grained(self):
        def survivor_loop(ctx, iters):
            st = Stat()
            for _ in range(iters):
                yield ctx.compute_cost(SEPARATING_FLOPS)
                yield from ctx.sync_all(stat=st)
            return (ctx.now, st.code, tuple(st.failed_indices))

        sched = FaultSchedule(failures=(ImageFailure(3, 20e-6),))
        on = _run("2x4", survivor_loop, args=(30,), macro=True,
                  faults=sched)
        off = _run("2x4", survivor_loop, args=(30,), macro=False,
                   faults=sched)
        assert on.world.macro.replays == 0
        assert on.time == off.time
        assert on.results == off.results

    def test_config_flag_disables(self):
        on = _run("2x4", _barrier_once, macro=False)
        assert on.world.macro.replays == 0
        assert on.world.macro.fine_pins == 0  # never even consulted

    def test_monitor_disables_data_windows(self):
        # The data-carrying kinds go through the same engage gate: an
        # attached observer must pin reduce/broadcast windows fine too.
        on = _run("2x4", _sep_reduce, args=(3,), macro=True,
                  monitor=HBMonitor())
        assert on.world.macro.replays == 0


# ----------------------------------------------------------------------
# Reduce / broadcast windows (the macro-collectives generalization)
# ----------------------------------------------------------------------
class TestGoldenMatrixCollectives:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_separated_reduce_identical(self, shape):
        on = _run(shape, _sep_reduce, args=(4,), macro=True)
        off = _run(shape, _sep_reduce, args=(4,), macro=False)
        _assert_golden(on, off)
        assert not on.world.macro.inexact

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_separated_broadcast_identical(self, shape):
        on = _run(shape, _sep_bcast, args=(4,), macro=True)
        off = _run(shape, _sep_bcast, args=(4,), macro=False)
        _assert_golden(on, off)
        assert not on.world.macro.inexact

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_mixed_collectives_identical(self, shape):
        on = _run(shape, _mixed_collectives, args=(3,), macro=True)
        off = _run(shape, _mixed_collectives, args=(3,), macro=False)
        _assert_golden(on, off)
        assert not on.world.macro.inexact


class TestSustainedCollapseFlat:
    def test_tight_reduce_pow2(self):
        iters = 6
        on = _run_flat(4, _tight_reduce, args=(iters,), macro=True)
        off = _run_flat(4, _tight_reduce, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters
        assert not on.world.macro.inexact
        assert on.world.macro.disabled_reason is None

    @pytest.mark.parametrize("num_images", [6, 12, 25])
    def test_tight_reduce_non_pow2(self, num_images):
        # Non-power-of-two teams stagger the two-level fold/unfold exit
        # instants; chained windows must still collapse every iteration
        # — the extreme-scale acceptance scenario in miniature.
        iters = 5
        on = _run_flat(num_images, _tight_reduce, args=(iters,), macro=True)
        off = _run_flat(num_images, _tight_reduce, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters
        assert not on.world.macro.inexact

    def test_tight_reduce_array_payload(self):
        iters = 4
        on = _run_flat(12, _tight_reduce_arr, args=(iters,), macro=True)
        off = _run_flat(12, _tight_reduce_arr, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters

    def test_tight_mixed_reduce_kinds(self):
        # co_sum and co_min alternating: both windows join the same
        # macro kind and every one must replay.
        iters = 4
        on = _run_flat(12, _tight_mixed_flat, args=(iters,), macro=True)
        off = _run_flat(12, _tight_mixed_flat, args=(iters,), macro=False)
        _assert_golden(on, off)
        assert on.world.macro.replays == 2 * iters
        assert not on.world.macro.inexact

    @pytest.mark.parametrize("num_images", [8, 12])
    def test_tight_reduce_recursive_doubling(self, num_images):
        rd = UHCAF_2LEVEL.with_(name="rd", reduce="recursive-doubling")
        iters = 5
        on = _run_flat(num_images, _tight_reduce, args=(iters,),
                       macro=True, config=rd)
        off = _run_flat(num_images, _tight_reduce, args=(iters,),
                        macro=False, config=rd)
        _assert_golden(on, off)
        assert on.world.macro.replays == iters
        assert not on.world.macro.inexact


class TestCollectiveBoundaries:
    def test_tight_broadcast_chain_stays_semantically_exact(self):
        # Chained broadcast windows open under the previous window's
        # staggered wakes, which a broadcast cannot commit — window 1
        # collapses, the rest pin fine (or the audit flags the run).
        # Results and final time must match either way.
        on = _run_flat(8, _tight_bcast, args=(4,), macro=True)
        off = _run_flat(8, _tight_bcast, args=(4,), macro=False)
        assert on.results == off.results
        assert on.time == off.time
        assert on.world.macro.replays >= 1

    def test_tight_hierarchical_reduce_boundary(self):
        # Zero-compute reduce loop on a hierarchical shape: same
        # exactness boundary as the barrier case — semantic state never
        # drifts, and any timestamp drift must be flagged.
        on = _run("2x4", _tight_reduce, args=(5,), macro=True)
        off = _run("2x4", _tight_reduce, args=(5,), macro=False)
        assert on.results == off.results
        if on.time != off.time:
            assert on.world.macro.inexact


class TestExtremeScaleSweepPath:
    def test_registry_capability_map(self):
        from repro.bench.xscale import assert_macro_capable
        from repro.collectives.registry import macro_kind
        kinds = assert_macro_capable(UHCAF_2LEVEL)
        assert kinds == {"barrier": "tdlb", "reduce": "reduce-2l",
                         "broadcast": "bcast-2l"}
        assert macro_kind("reduce", "linear-flat") is None
        from repro.runtime.config import UHCAF_1LEVEL
        with pytest.raises(ValueError, match="not macro-capable"):
            assert_macro_capable(UHCAF_1LEVEL)

    def test_duplicate_rung_is_byte_identical(self):
        # The sweep path must be deterministic: the same rung run twice
        # yields byte-identical rows (wall-clock fields aside) and an
        # identical rendered table.
        from repro.bench.xscale import xscale_sweep

        def strip(rows):
            return [{k: v for k, v in row.items()
                     if not k.startswith("wall_")} for row in rows]

        table_a, rows_a = xscale_sweep([24], ab_max=10_000)
        table_b, rows_b = xscale_sweep([24], ab_max=10_000)
        assert strip(rows_a) == strip(rows_b)
        assert repr(strip(rows_a)) == repr(strip(rows_b))  # same bits
        assert table_a.render() == table_b.render()
        assert all(row["exactness"] == "exact" for row in rows_a)

    def test_ab_bound_skips_fine_leg(self):
        from repro.bench.xscale import xscale_sweep
        _table, rows = xscale_sweep([16, 32], ab_max=16,
                                    shapes=["reduce"])
        by_n = {row["images"]: row for row in rows}
        assert by_n[16]["exactness"] == "exact"
        assert by_n[32]["exactness"] == "skipped"
        assert "events_fine" not in by_n[32]
