"""Deadlock wait-for analysis: pinned report content.

These tests pin the rendered diagnosis for the canonical SPMD bug — one
image skips a collective — so report regressions (lost context, wrong
expected-notifier inference) show up as text diffs.  The team uid in
cell names is a process-global counter and is normalized out.
"""

import re
import textwrap

import pytest

from repro.runtime.config import UHCAF_2LEVEL
from repro.sim import BlockedInfo
from repro.sim.errors import DeadlockError
from repro.verify import analyze_deadlock, explain_deadlock
from tests.conftest import run_small


def _normalize(text):
    return re.sub(r"\bt\d+\.", "tN.", text)


def _deadlock_from(main, **kwargs):
    with pytest.raises(DeadlockError) as excinfo:
        run_small(main, **kwargs)
    return excinfo.value


def _skip_last(skipped):
    def main(ctx):
        if ctx.this_image() != skipped:
            yield from ctx.sync_all()
        return None
    return main


class TestPinnedReports:
    def test_linear_barrier_skip_report(self):
        # 3 images, one node, linear barrier, image3 skips sync_all:
        # the leader holds an incomplete arrival count, image2 spins on
        # its release flag, and the report names image3 as the root
        # cause — plus the leader/slave mutual wait as a potential cycle.
        err = _deadlock_from(
            _skip_last(3), images=3, ipn=3,
            config=UHCAF_2LEVEL.with_(barrier="linear"),
        )
        expected = textwrap.dedent("""\
            deadlock wait-for analysis: 2 image(s) blocked, 1 image(s) exited without notifying a waiter
            blocked:
              image1 waits on cell 'tN.cocounter[1]' [cocounter, team#-1 size 3, owner image1, node 0, leader image1] value=1; expected notifiers: image2, image3
              image2 waits on cell 'tN.release[2]' [release, team#-1 size 3, owner image2, node 0, leader image1] value=0; expected notifiers: image1
            exited before notifying: image3
            potential wait-for cycle: image1 -> image2 -> image1""")
        assert _normalize(explain_deadlock(err)) == expected

    def test_tdlb_barrier_skip_report(self):
        # 4 images on 2 nodes, TDLB: image4 skips, so node 1's leader
        # never completes its local count, and node 0's leader blocks in
        # the leader dissemination expecting that leader.
        err = _deadlock_from(_skip_last(4), images=4, ipn=2,
                             config=UHCAF_2LEVEL)
        expected = textwrap.dedent("""\
            deadlock wait-for analysis: 3 image(s) blocked, 1 image(s) exited without notifying a waiter
            blocked:
              image3 waits on cell 'tN.cocounter[3]' [cocounter, team#-1 size 4, owner image3, node 1, leader image3] value=0; expected notifiers: image4
              image2 waits on cell 'tN.release[2]' [release, team#-1 size 4, owner image2, node 0, leader image1] value=0; expected notifiers: image1
              image1 waits on cell 'tN.tdlb-leaders[1][0]' [diss, team#-1 size 4, owner image1, node 0, leader image1] value=0; expected notifiers: image3
            exited before notifying: image4""")
        assert _normalize(explain_deadlock(err)) == expected

    def test_sync_images_skip_report(self):
        def main(ctx):
            if ctx.this_image() == 1:
                yield from ctx.sync_images([2])
            return None
            yield  # pragma: no cover

        err = _deadlock_from(main, images=2, ipn=2)
        expected = textwrap.dedent("""\
            deadlock wait-for analysis: 1 image(s) blocked, 1 image(s) exited without notifying a waiter
            blocked:
              image1 waits on cell 'syncimg[1->0]' [pairwise sync image2->image1] value=0; expected notifiers: image2
            exited before notifying: image2""")
        assert _normalize(explain_deadlock(err)) == expected


class TestAnalysisStructure:
    def test_structured_details_carry_cells(self):
        err = _deadlock_from(
            _skip_last(3), images=3, ipn=3,
            config=UHCAF_2LEVEL.with_(barrier="linear"),
        )
        assert all(isinstance(d, BlockedInfo) for d in err.details)
        assert {d.kind for d in err.details} == {"cell"}
        analysis = analyze_deadlock(err)
        assert analysis.blocked == [1, 2]
        assert analysis.missing == [3]
        assert analysis.cycles == [[1, 2]]

    def test_dissemination_partner_inference(self):
        # Flat dissemination, 4 images: in round r the waiter expects
        # rank-2^r; with image4 missing every blocked image's expectation
        # must point at a real partner, and image4 is the only missing one.
        err = _deadlock_from(
            _skip_last(4), images=4, ipn=4,
            config=UHCAF_2LEVEL.with_(barrier="dissemination"),
        )
        analysis = analyze_deadlock(err)
        assert analysis.missing == [4]
        for waiter in analysis.waiters:
            assert waiter.expects is not None
            assert len(waiter.expects) == 1

    def test_true_cycle_without_missing_images(self):
        # Crossed sync images around a ring: each image's first
        # rendezvous partner has not notified it yet (it notified the
        # next image instead) — a genuine 3-cycle with nobody missing.
        def main(ctx):
            me = ctx.this_image()
            first = me % 3 + 1
            second = (me + 1) % 3 + 1
            yield from ctx.sync_images([first])
            yield from ctx.sync_images([second])
            return None

        err = _deadlock_from(main, images=3, ipn=3)
        analysis = analyze_deadlock(err)
        assert analysis.missing == []
        assert analysis.cycles == [[1, 2, 3]]
        assert ("potential wait-for cycle: "
                "image1 -> image2 -> image3 -> image1"
                in analysis.render())
