"""Tests for the ``python -m repro.bench`` command-line front end."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_barrier_tables(self, capsys):
        assert main(["barrier", "--nodes", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E2:" in out
        assert "TDLB (UHCAF 2level)" in out
        assert "2(2)" in out and "16(2)" in out

    def test_reduce_table_with_payload(self, capsys):
        assert main(["reduce", "--nodes", "2", "--nelems", "64"]) == 0
        out = capsys.readouterr().out
        assert "E3:" in out and "64 element(s)" in out
        assert "two-level reduction" in out

    def test_broadcast_table(self, capsys):
        assert main(["broadcast", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "E4:" in out and "flat binomial broadcast" in out

    def test_hpl_quick(self, capsys):
        assert main(["hpl", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "UHCAF 2level" in out and "GFortran" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp-speed"])

    def test_custom_ipn(self, capsys):
        assert main(["barrier", "--nodes", "2", "--ipn", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 images per node" in out
