"""End-to-end tests of leader-election strategies through the runtime
config (the E7b axis, verified semantically rather than by latency)."""

import pytest

from repro.runtime.config import UHCAF_2LEVEL
from tests.conftest import run_small

ALL_STRATEGIES = ["lowest", "highest", "rotating"]


def hierarchy_leaders(config, images=8, ipn=4):
    def main(ctx):
        yield from ctx.sync_all()
        return tuple(ctx.current_team.shared.hierarchy.leaders)

    return run_small(main, images=images, ipn=ipn, config=config).results[0]


class TestStrategies:
    def test_lowest_picks_first_on_each_node(self):
        leaders = hierarchy_leaders(UHCAF_2LEVEL.with_(leader_strategy="lowest"))
        assert leaders == (1, 5)

    def test_highest_picks_last_on_each_node(self):
        leaders = hierarchy_leaders(UHCAF_2LEVEL.with_(leader_strategy="highest"))
        assert leaders == (4, 8)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_collectives_correct_under_any_strategy(self, strategy):
        def main(ctx):
            total = yield from ctx.co_sum(ctx.this_image())
            value = yield from ctx.co_broadcast(
                "x" if ctx.this_image() == 3 else None, source_image=3)
            yield from ctx.sync_all()
            return (total, value)

        cfg = UHCAF_2LEVEL.with_(leader_strategy=strategy)
        results = run_small(main, images=8, ipn=4, config=cfg).results
        assert all(r == (36, "x") for r in results)

    def test_rotating_moves_leaders_between_formations(self):
        def main(ctx):
            t1 = yield from ctx.form_team(1)
            t2 = yield from ctx.form_team(1)
            return (tuple(t1.shared.hierarchy.leaders),
                    tuple(t2.shared.hierarchy.leaders))

        cfg = UHCAF_2LEVEL.with_(leader_strategy="rotating")
        first, second = run_small(main, images=8, ipn=4, config=cfg).results[0]
        assert first != second

    def test_unknown_strategy_rejected_at_launch(self):
        from repro.sim import ProcessFailure

        def main(ctx):
            yield from ctx.sync_all()

        with pytest.raises((ValueError, ProcessFailure)):
            run_small(main, images=4,
                      config=UHCAF_2LEVEL.with_(leader_strategy="dice"))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_tdlb_correct_with_every_strategy(self, strategy):
        def main(ctx):
            if ctx.this_image() == 2:
                yield from ctx.compute(seconds=1e-4)
            arrive = ctx.now
            yield from ctx.sync_all()
            return (arrive, ctx.now)

        cfg = UHCAF_2LEVEL.with_(leader_strategy=strategy)
        results = run_small(main, images=16, ipn=8, config=cfg).results
        last = max(a for a, _ in results)
        assert all(t >= last for _, t in results)
