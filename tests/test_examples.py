"""Every example must run clean — they all carry their own assertions,
so executing them is an end-to-end test of the public API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "uhcaf-2level" in out and "uhcaf-1level" in out

    def test_heat_diffusion(self):
        out = run_example("heat_diffusion.py")
        assert "final residual" in out

    def test_hpl_demo(self):
        out = run_example("hpl_demo.py")
        assert "GFLOP/s" in out and "||A - L.U||" in out

    def test_teams_microbenchmark_cli(self):
        out = run_example("teams_microbenchmark.py", "--nodes", "2", "4")
        assert "Barrier latency" in out
        assert "co_sum latency" in out
        assert "co_broadcast latency" in out

    def test_pipeline_events(self):
        out = run_example("pipeline_events.py")
        assert "sink verified" in out

    def test_monte_carlo_pi(self):
        out = run_example("monte_carlo_pi.py")
        assert "pi ≈ 3.14" in out

    def test_conjugate_gradient(self):
        out = run_example("conjugate_gradient.py")
        assert "CG converged" in out

    def test_distributed_transpose(self):
        out = run_example("distributed_transpose.py")
        assert "two-level" in out and "pairwise-flat" in out

    def test_distributed_fft(self):
        out = run_example("distributed_fft.py")
        assert "relative error" in out

    def test_random_access(self):
        out = run_example("random_access.py")
        assert "GUPS" in out
