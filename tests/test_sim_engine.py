"""Unit tests for the discrete-event engine: ordering, determinism,
clock behaviour, limits, and deadlock reporting."""

import pytest

from repro.sim import (
    DeadlockError,
    Engine,
    SimulationLimitExceeded,
)


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0.0

    def test_single_event_advances_clock(self):
        eng = Engine()
        eng.schedule(1.5, lambda: None)
        assert eng.run() == 1.5

    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(2.0, lambda: fired.append("b"))
        eng.schedule(1.0, lambda: fired.append("a"))
        eng.schedule(3.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_insertion_order(self):
        eng = Engine()
        fired = []
        for i in range(10):
            eng.schedule(1.0, lambda i=i: fired.append(i))
        eng.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties_before_insertion_order(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append("low"), priority=1)
        eng.schedule(1.0, lambda: fired.append("high"), priority=0)
        eng.run()
        assert fired == ["high", "low"]

    def test_nested_scheduling_from_callback(self):
        eng = Engine()
        fired = []

        def outer():
            fired.append("outer")
            eng.schedule(1.0, lambda: fired.append("inner"))

        eng.schedule(1.0, outer)
        eng.run()
        assert fired == ["outer", "inner"]
        assert eng.now == 2.0

    def test_call_now_runs_at_current_instant(self):
        eng = Engine()
        times = []
        eng.schedule(5.0, lambda: eng.call_now(lambda: times.append(eng.now)))
        eng.run()
        assert times == [5.0]

    def test_zero_delay_is_legal(self):
        eng = Engine()
        eng.schedule(0.0, lambda: None)
        assert eng.run() == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Engine().schedule(-1.0, lambda: None)

    def test_infinite_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Engine().schedule(float("inf"), lambda: None)

    def test_nan_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Engine().schedule(float("nan"), lambda: None)

    def test_run_with_empty_queue_returns_current_time(self):
        assert Engine().run() == 0.0

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(7):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(10.0, lambda: fired.append(10))
        assert eng.run(until=5.0) == 5.0
        assert fired == [1]

    def test_run_until_can_resume(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(10.0, lambda: fired.append(10))
        eng.run(until=5.0)
        eng.run()
        assert fired == [1, 10]

    def test_step_returns_false_on_empty(self):
        assert Engine().step() is False

    def test_step_processes_one_event(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(2.0, lambda: fired.append(2))
        assert eng.step() is True
        assert fired == [1]

    def test_determinism_across_runs(self):
        def build():
            eng = Engine()
            order = []
            for i in range(50):
                eng.schedule((i * 7919 % 13) * 0.1, lambda i=i: order.append(i))
            eng.run()
            return order

        assert build() == build()

    def test_run_not_reentrant(self):
        eng = Engine()

        def recurse():
            eng.run()

        eng.schedule(1.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            eng.run()


class TestLimits:
    def test_max_events_exceeded_raises(self):
        eng = Engine(max_events=10)

        def reschedule():
            eng.schedule(1.0, reschedule)

        eng.schedule(1.0, reschedule)
        with pytest.raises(SimulationLimitExceeded):
            eng.run()


class TestDeadlockDetection:
    def test_blocked_process_reported_on_drain(self):
        eng = Engine()
        eng.note_blocked("proc A: waiting forever")
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert "proc A" in str(exc.value)

    def test_unblocked_process_not_reported(self):
        eng = Engine()
        token = eng.note_blocked("transient")
        eng.note_unblocked(token)
        eng.run()  # no exception

    def test_deadlock_lists_all_blocked(self):
        eng = Engine()
        for name in ("p1", "p2", "p3"):
            eng.note_blocked(name)
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert exc.value.blocked == ["p1", "p2", "p3"]

    def test_trace_hook_sees_labeled_events(self):
        seen = []
        eng = Engine(trace=lambda t, label: seen.append((t, label)))
        eng.schedule(1.0, lambda: None, label="tick")
        eng.schedule(2.0, lambda: None)  # unlabeled: not traced
        eng.run()
        assert seen == [(1.0, "tick")]
