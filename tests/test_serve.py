"""The experiment-grid job server: specs, jobs, dedup, end-to-end.

The server's contract has three load-bearing clauses, each pinned here:

* a spec expands into *the same* cells (same tasks, same order, same
  cache keys) the sequential CLI would run, so rendering the streamed
  outcomes reproduces the CLI's output byte for byte;
* overlapping jobs from different tenants cost one execution per unique
  cell (in-flight dedup + result cache), visible in ``/stats``;
* the whole loop works over real HTTP with concurrent clients.
"""

import asyncio
import json
import queue
import threading

import pytest

from repro.bench.cells import plan_experiment, plan_tasks, render_results
from repro.exec import run_tasks
from repro.serve.client import (
    ServerError,
    get_stats,
    run_bench_remote,
    shutdown_server,
    submit_job,
    wait_server,
)
from repro.serve.jobs import Job, JobRegistry
from repro.serve.server import serve_forever
from repro.serve.spec import SpecError, expand, outcome_shims


# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_rejects_non_object(self):
        with pytest.raises(SpecError):
            expand([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(SpecError):
            expand({"kind": "hpl"})

    def test_rejects_bad_nodes(self):
        with pytest.raises(SpecError):
            expand({"kind": "bench", "experiment": "barrier", "nodes": []})
        with pytest.raises(SpecError):
            expand({"kind": "bench", "experiment": "barrier",
                    "nodes": [2, -1]})

    def test_barrier_has_no_payload_axis(self):
        with pytest.raises(SpecError):
            expand({"kind": "bench", "experiment": "barrier",
                    "nelems": [1, 64]})

    def test_verify_empty_filter_rejected(self):
        with pytest.raises(SpecError):
            expand({"kind": "verify", "kinds": ["no-such-kind"]})


class TestBenchExpansion:
    def test_cells_match_the_sequential_plan(self):
        spec = {"kind": "bench", "experiment": "barrier", "nodes": [2, 4]}
        expanded = expand(spec)
        plans = plan_experiment("barrier", [2, 4])
        tasks = plan_tasks(plans)
        assert len(expanded.cells) == len(tasks)
        for cell, task in zip(expanded.cells, tasks):
            assert cell.index == tasks.index(task)
            assert cell.task.fn.func is task.fn.func
            assert cell.task.args == task.args

    def test_payload_bands_expand_in_order(self):
        spec = {"kind": "bench", "experiment": "reduce", "nodes": [2],
                "nelems": [1, 64]}
        expanded = expand(spec)
        single = expand({"kind": "bench", "experiment": "reduce",
                         "nodes": [2], "nelems": 1})
        assert len(expanded.cells) == 2 * len(single.cells)

    def test_render_parity_with_sequential_cli(self):
        """Server-style JSON records, rendered, equal the sequential
        CLI's tables byte for byte."""
        spec = {"kind": "bench", "experiment": "barrier", "nodes": [2]}
        expanded = expand(spec)
        plans = plan_experiment("barrier", [2])
        sequential = render_results(plans, run_tasks(plan_tasks(plans),
                                                     jobs=1))
        local = run_tasks([c.task for c in expanded.cells], jobs=1)
        records = [{"index": i, "ok": r.ok, "error": r.error,
                    "value": expanded.summarize(r.value) if r.ok else None}
                   for i, r in enumerate(local)]
        assert expanded.render(records) == sequential

    def test_outcome_shims_round_trip(self):
        shims = outcome_shims([{"ok": True, "value": 1.5, "error": None},
                               {"ok": False, "value": None, "error": "boom"}])
        assert shims[0].ok and shims[0].value == 1.5
        assert not shims[1].ok and shims[1].error == "boom"


class TestVerifyExpansion:
    def test_cells_match_the_matrix(self):
        from repro.verify.conformance import build_matrix

        spec = {"kind": "verify", "quick": True, "seeds": 2,
                "kinds": ["barrier"]}
        expanded = expand(spec)
        cases = build_matrix(quick=True, kinds=["barrier"])
        assert len(expanded.cells) == len(cases)
        assert [c.label for c in expanded.cells] == [c.label for c in cases]

    def test_summarize_is_json_safe(self):
        from repro.verify.conformance import build_matrix, run_case

        spec = {"kind": "verify", "quick": True, "seeds": 1,
                "kinds": ["barrier"]}
        expanded = expand(spec)
        case = build_matrix(quick=True, kinds=["barrier"])[0]
        summary = expanded.summarize(run_case(case, seeds=1))
        json.dumps(summary)  # must not raise
        assert summary["ok"] is True


# ----------------------------------------------------------------------
class TestJobPlumbing:
    def _job(self, cells=2):
        spec = {"kind": "bench", "experiment": "barrier",
                "nodes": [2] if cells == 8 else [2]}
        expanded = expand(spec)
        return Job("j000001", "t", spec, expanded)

    def test_subscribe_replays_then_terminates(self):
        async def scenario():
            job = self._job()
            n = len(job.expanded.cells)
            early = job.subscribe()
            for i in range(n):
                job.record({"event": "cell", "index": i, "ok": True,
                            "value": 1.0, "error": None})
            job.finish()
            late = job.subscribe()  # after completion: full replay

            async def drain(q):
                events = []
                while True:
                    event = await q.get()
                    if event is None:
                        return events
                    events.append(event)

            a = await drain(early)
            b = await drain(late)
            assert a == b
            assert a[-1]["event"] == "done"
            assert a[-1]["status"] == "done"
            assert len(a) == n + 1

        asyncio.run(scenario())

    def test_snapshot_includes_table_only_when_done(self):
        job = self._job()
        assert "table" not in job.snapshot()
        for i in range(len(job.expanded.cells)):
            job.record({"event": "cell", "index": i, "ok": True,
                        "value": 1.0, "error": None})
        job.finish()
        assert "us" in job.snapshot()["table"]  # a rendered latency table

    def test_registry_counts_tenants(self):
        registry = JobRegistry()
        spec = {"kind": "bench", "experiment": "barrier", "nodes": [2]}
        registry.create("alice", spec, expand(spec))
        registry.create("alice", spec, expand(spec))
        registry.create("bob", spec, expand(spec))
        stats = registry.stats()
        assert stats["total"] == 3
        assert stats["tenants"]["alice"]["jobs"] == 2
        assert stats["tenants"]["bob"]["jobs"] == 1


# ----------------------------------------------------------------------
@pytest.fixture
def live_server(tmp_path):
    """A real JobServer on an OS-assigned port, in a daemon thread."""
    announced: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=lambda: asyncio.run(serve_forever(
            host="127.0.0.1", port=0, jobs=1,
            cache_root=tmp_path / "cache", namespace="test-serve",
            announce=announced.put)),
        daemon=True)
    thread.start()
    url = announced.get(timeout=30).replace("serving on ", "")
    assert wait_server(url, timeout=30)
    yield url
    try:
        shutdown_server(url)
    except (ServerError, OSError):
        pass
    thread.join(timeout=15)


class TestEndToEnd:
    SPEC = {"kind": "bench", "experiment": "barrier", "nodes": [2]}

    def test_bad_spec_is_a_400(self, live_server):
        with pytest.raises(ServerError, match="HTTP 400"):
            submit_job(live_server, {"kind": "nope"})

    def test_unknown_job_is_a_404(self, live_server):
        from repro.serve.client import get_job

        with pytest.raises(ServerError, match="HTTP 404"):
            get_job(live_server, "j999999")

    def test_two_tenants_one_execution_per_unique_cell(self, live_server):
        """The acceptance scenario: two concurrent clients with fully
        overlapping grids produce byte-identical tables, and the server
        executed each unique cell exactly once."""
        plans = plan_experiment("barrier", [2])
        expected = render_results(plans, run_tasks(plan_tasks(plans),
                                                   jobs=1))
        unique_cells = len(plan_tasks(plans))
        outputs: dict = {}

        def client(tenant):
            shims = run_bench_remote(live_server, dict(self.SPEC),
                                     tenant=tenant)
            outputs[tenant] = render_results(
                plan_experiment("barrier", [2]), shims)

        threads = [threading.Thread(target=client, args=(t,))
                   for t in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert outputs["alice"] == expected
        assert outputs["bob"] == expected

        stats = get_stats(live_server)
        tenants = stats["jobs"]["tenants"]
        executed = sum(t["executed"] for t in tenants.values())
        shared = sum(t["deduped"] + t["cache_hits"]
                     for t in tenants.values())
        assert executed == unique_cells  # exactly once per unique cell
        assert shared == unique_cells    # the other tenant paid nothing
        assert stats["pool"]["submitted"] == unique_cells
        assert stats["cache"]["unkeyed"] == 0

    def test_third_run_is_served_entirely_from_cache(self, live_server):
        run_bench_remote(live_server, dict(self.SPEC), tenant="warm")
        before = get_stats(live_server)["pool"]["submitted"]
        run_bench_remote(live_server, dict(self.SPEC), tenant="cold")
        stats = get_stats(live_server)
        assert stats["pool"]["submitted"] == before  # nothing re-executed
        assert stats["jobs"]["tenants"]["cold"]["cache_hits"] == len(
            plan_tasks(plan_experiment("barrier", [2])))
