"""Tests for the distributed triangular solves (HPL's solve phase)."""

import numpy as np
import pytest

from repro.hpl import run_hpl
from repro.runtime.config import NAMED_CONFIGS, UHCAF_1LEVEL, UHCAF_2LEVEL


class TestSolveResiduals:
    @pytest.mark.parametrize("images,ipn,n,nb", [
        (1, 1, 64, 32),
        (2, 2, 128, 32),
        (4, 2, 128, 32),
        (4, 4, 192, 32),
        (8, 4, 256, 32),
        (16, 8, 256, 32),
    ])
    def test_ax_equals_b_to_machine_precision(self, images, ipn, n, nb):
        report = run_hpl(n=n, nb=nb, num_images=images, images_per_node=ipn,
                         verify=True, solve=True)
        assert report.solve_residual is not None
        assert report.solve_residual < 1e-12

    @pytest.mark.parametrize("config_name", sorted(NAMED_CONFIGS))
    def test_every_stack_solves_correctly(self, config_name):
        report = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                         config=NAMED_CONFIGS[config_name], verify=True)
        assert report.solve_residual < 1e-12

    def test_rectangular_grid(self):
        # 8 images → 2×4 grid: row/col teams of different sizes
        report = run_hpl(n=192, nb=32, num_images=8, images_per_node=4,
                         verify=True)
        assert report.solve_residual < 1e-12

    def test_different_rhs_seeds_both_solve(self):
        a = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                    verify=True, seed=1)
        b = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                    verify=True, seed=2)
        assert a.solve_residual < 1e-12 and b.solve_residual < 1e-12


class TestSolveCosting:
    def test_solve_adds_time(self):
        with_solve = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                             solve=True)
        without = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                          solve=False)
        assert with_solve.seconds > without.seconds

    def test_solve_is_small_fraction_at_scale(self):
        """O(n²) solve vs O(n³) factorization: the solve must stay a
        minor fraction of the run."""
        with_solve = run_hpl(n=1024, nb=128, num_images=16,
                             images_per_node=8, solve=True)
        without = run_hpl(n=1024, nb=128, num_images=16,
                          images_per_node=8, solve=False)
        assert (with_solve.seconds - without.seconds) < 0.25 * without.seconds

    def test_model_and_verify_mode_times_agree_with_solve(self):
        rv = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                     verify=True, solve=True)
        rm = run_hpl(n=128, nb=32, num_images=4, images_per_node=2,
                     verify=False, solve=True)
        assert rm.seconds == pytest.approx(rv.seconds, rel=1e-9)

    def test_no_solve_no_residual(self):
        report = run_hpl(n=64, nb=32, num_images=2, images_per_node=2,
                         verify=True, solve=False)
        assert report.solve_residual is None
        assert report.residual is not None

    def test_two_level_solve_not_slower(self):
        r2 = run_hpl(n=512, nb=64, num_images=16, images_per_node=8,
                     config=UHCAF_2LEVEL)
        r1 = run_hpl(n=512, nb=64, num_images=16, images_per_node=8,
                     config=UHCAF_1LEVEL)
        assert r2.gflops > r1.gflops
