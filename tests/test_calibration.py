"""Regression guards on the calibration: the documented invariants that
the reproduction's shape results rest on (docs/calibration.md).  If a
re-tuning breaks one of these, the benchmark suite will likely drift out
of the paper's bands — fail here first, with a named reason."""

import pytest

from repro.baselines import caf20, gasnet
from repro.calibration import (
    BACKEND_EFFICIENCY,
    CAF20_GASNET,
    DIRECT_SMP,
    GASNET_RDMA,
    IB_VERBS,
    MPI_NATIVE,
    PAPER_CORES_PER_NODE,
    PAPER_NODES,
)
from repro.machine import paper_cluster
from repro.runtime.config import NAMED_CONFIGS


class TestPlatformConstants:
    def test_paper_cluster_dimensions(self):
        assert PAPER_NODES == 44
        assert PAPER_CORES_PER_NODE == 8
        spec = paper_cluster()
        assert spec.num_nodes == PAPER_NODES
        assert spec.node.cores == PAPER_CORES_PER_NODE

    def test_latency_hierarchy_ordering(self):
        """coherence << wire << conduit software under contention."""
        spec = paper_cluster()
        assert spec.node.intra_socket_latency < spec.node.smp_latency
        assert spec.node.smp_latency < spec.network.latency
        assert spec.network.latency < GASNET_RDMA.local_overhead


class TestProfileInvariants:
    def test_gasnet_local_pricier_than_remote(self):
        """THE asymmetry the paper attacks: unaware same-node RMA through
        GASNet costs more software than a genuine remote put."""
        assert GASNET_RDMA.local_overhead > GASNET_RDMA.remote_overhead

    def test_caf20_adds_glue_over_gasnet(self):
        assert CAF20_GASNET.remote_overhead > GASNET_RDMA.remote_overhead
        assert CAF20_GASNET.local_overhead >= GASNET_RDMA.local_overhead

    def test_verbs_thin_and_parallel(self):
        assert IB_VERBS.remote_overhead < GASNET_RDMA.remote_overhead / 2
        assert not IB_VERBS.serialize_overhead
        assert GASNET_RDMA.serialize_overhead

    def test_mpi_local_path_is_cheap(self):
        """MPI's sm BTL was already node-aware — its local path must be
        cheaper than its remote path (opposite of GASNet's asymmetry)."""
        assert MPI_NATIVE.local_overhead < MPI_NATIVE.remote_overhead

    def test_direct_store_cheapest_of_all(self):
        for profile in (IB_VERBS, GASNET_RDMA, CAF20_GASNET, MPI_NATIVE):
            assert DIRECT_SMP.local_overhead < profile.local_overhead

    def test_loopback_degrades_bandwidth_only_for_gasnet_class(self):
        assert GASNET_RDMA.loopback_bw_factor < 1.0
        assert CAF20_GASNET.loopback_bw_factor < 1.0
        assert MPI_NATIVE.loopback_bw_factor == 1.0


class TestBackendEfficiencies:
    def test_all_configs_resolve(self):
        for cfg in NAMED_CONFIGS.values():
            assert 0 < cfg.compute_efficiency < 1

    def test_openuh_vs_gfortran_code_quality_gap(self):
        """Figure 1's 95-vs-29.48 pins this ratio near 3.2x."""
        ratio = BACKEND_EFFICIENCY["openuh"] / BACKEND_EFFICIENCY["gfortran"]
        assert 2.8 <= ratio <= 3.6

    def test_gcc_between(self):
        assert (BACKEND_EFFICIENCY["gfortran"]
                < BACKEND_EFFICIENCY["gcc-mpi"]
                < BACKEND_EFFICIENCY["openuh"])


class TestBaselineShims:
    def test_gasnet_module_exposes_profiles(self):
        assert gasnet.RDMA is GASNET_RDMA
        assert gasnet.VERBS is IB_VERBS

    def test_gasnet_dissemination_over_builds_unaware_config(self):
        cfg = gasnet.dissemination_over(IB_VERBS, "test-line")
        assert cfg.name == "test-line"
        assert not cfg.hierarchy_aware
        assert cfg.barrier == "dissemination"
        assert cfg.conduit_profile is IB_VERBS

    def test_caf20_module_exposes_configs(self):
        assert caf20.PROFILE is CAF20_GASNET
        assert caf20.OPENUH_BACKEND.backend == "openuh"
        assert caf20.GFORTRAN_BACKEND.backend == "gfortran"
        assert caf20.OPENUH_BACKEND.barrier == "dissemination-mcs"

    def test_named_configs_complete(self):
        assert set(NAMED_CONFIGS) == {
            "uhcaf-2level", "uhcaf-tuned", "uhcaf-1level",
            "gasnet-ib-dissemination",
            "caf2.0-openuh", "caf2.0-gfortran", "openmpi-gcc",
        }

    def test_uhcaf_stacks_differ_only_in_awareness_axes(self):
        two = NAMED_CONFIGS["uhcaf-2level"]
        one = NAMED_CONFIGS["uhcaf-1level"]
        assert two.conduit_profile is one.conduit_profile
        assert two.backend == one.backend
        assert two.hierarchy_aware and not one.hierarchy_aware
        assert two.barrier != one.barrier


class TestCalibrationChecks:
    """The band-check harness itself (probes run in the band tests of
    benchmarks/; here we verify the plumbing and the cheap constant
    probes)."""

    def test_constant_probes_in_band(self):
        from repro.calibration import CALIBRATION_CHECKS

        by_name = {name: (probe, lo, hi)
                   for name, probe, lo, hi in CALIBRATION_CHECKS}
        for name in ("conduit-local-gap", "mpi-transport-hierarchy"):
            probe, lo, hi = by_name[name]
            assert lo <= probe() <= hi, name

    def test_result_ok_logic(self):
        from repro.calibration import CalibrationResult

        assert CalibrationResult("x", 1.0, 2.0, value=1.5).ok
        assert not CalibrationResult("x", 1.0, 2.0, value=2.5).ok
        assert not CalibrationResult("x", 1.0, 2.0, error="boom").ok

    def test_check_calibration_reports_probe_failures(self, monkeypatch):
        import repro.calibration as cal

        def explode():
            raise RuntimeError("probe broke")

        monkeypatch.setattr(
            cal, "CALIBRATION_CHECKS",
            (("good", cal._probe_conduit_local_gap, 50.0, 500.0),
             ("bad", explode, 0.0, 1.0)),
        )
        results = cal.check_calibration()
        assert results[0].ok
        assert not results[1].ok
        assert "probe broke" in results[1].error
