"""Tests for the benchmark harnesses and result tables."""

import pytest

from repro.bench import (
    barrier_benchmark,
    broadcast_benchmark,
    config_label,
    figure1,
    mpi_barrier_benchmark,
    reduce_benchmark,
    sweep,
)
from repro.bench.tables import ResultTable, Series
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL


class TestTables:
    def test_config_label(self):
        assert config_label(64, 8) == "64(8)"

    def test_series_ratio(self):
        fast = Series("fast", {"a": 1.0, "b": 2.0})
        slow = Series("slow", {"a": 10.0, "b": 5.0})
        assert fast.ratio_to(slow) == {"a": 10.0, "b": 2.5}

    def test_ratio_skips_missing_labels(self):
        fast = Series("fast", {"a": 1.0, "b": 1.0})
        slow = Series("slow", {"a": 2.0})
        assert fast.ratio_to(slow) == {"a": 2.0}

    def test_render_contains_all_systems_and_labels(self):
        table = ResultTable("T", labels=["4(4)", "16(2)"])
        table.add_series(Series("sysA", {"4(4)": 1.5, "16(2)": 2.5}))
        table.add_series(Series("sysB", {"4(4)": 3.5}))
        text = table.render()
        assert "sysA" in text and "sysB" in text
        assert "4(4)" in text and "16(2)" in text
        assert "1.50" in text and "-" in text  # missing value renders as -

    def test_get_unknown_series_raises(self):
        table = ResultTable("T", labels=[])
        with pytest.raises(KeyError):
            table.get("nope")

    def test_speedup_row(self):
        table = ResultTable("T", labels=["x"])
        table.add_series(Series("fast", {"x": 1.0}))
        table.add_series(Series("slow", {"x": 26.0}))
        row = table.speedup_row("fast", "slow")
        assert "26.0x" in row


class TestMicrobench:
    def test_barrier_benchmark_returns_positive_latency(self):
        res = barrier_benchmark(8, 4, UHCAF_2LEVEL, iters=4)
        assert res.seconds_per_op > 0

    def test_barrier_traffic_accounting(self):
        res = barrier_benchmark(8, 4, UHCAF_2LEVEL, iters=4)
        # TDLB on 2 nodes of 4: intra 2·2·3=12, inter 2 per op.  The
        # window edges catch releases in flight, so allow ±2 intra.
        assert 10 <= res.traffic_per_op.intra_messages <= 14
        assert res.traffic_per_op.inter_messages == 2

    def test_reduce_benchmark(self):
        res = reduce_benchmark(8, 4, UHCAF_2LEVEL, nelems=4, iters=4)
        assert res.seconds_per_op > 0

    def test_broadcast_benchmark(self):
        res = broadcast_benchmark(8, 4, UHCAF_2LEVEL, nelems=4, iters=4)
        assert res.seconds_per_op > 0

    def test_team_fraction_runs_on_subteam(self):
        full = barrier_benchmark(8, 4, UHCAF_2LEVEL, iters=4)
        half = barrier_benchmark(8, 4, UHCAF_2LEVEL, iters=4,
                                 team_fraction=0.5)
        # the 4-image subteam fits one node → cheaper than the full team
        assert half.seconds_per_op < full.seconds_per_op

    def test_mpi_barrier_benchmark_all_tunings(self):
        for tuning in ("mvapich", "openmpi", "openmpi-hierarch"):
            res = mpi_barrier_benchmark(8, 4, tuning, iters=4)
            assert res.seconds_per_op > 0

    def test_mpi_barrier_traffic_accounting(self):
        # MPI rows share the CAF traffic-mark protocol: per-op counters,
        # warm-up excluded.  A barrier moves messages, not payload-free
        # magic, and a flat tuning crosses the fabric every round.
        res = mpi_barrier_benchmark(8, 4, "mvapich", iters=4)
        total = (res.traffic_per_op.inter_messages
                 + res.traffic_per_op.intra_messages)
        assert total > 0
        assert res.traffic_per_op.inter_messages > 0

    def test_mpi_unknown_tuning_rejected(self):
        with pytest.raises(ValueError):
            mpi_barrier_benchmark(4, 2, "fastest")

    def test_sweep_builds_full_table(self):
        table = sweep(
            "demo",
            configs=[(4, 2), (8, 2)],
            systems=[
                ("two", lambda i, n: barrier_benchmark(
                    i, i // n, UHCAF_2LEVEL, iters=2).seconds_per_op),
                ("one", lambda i, n: barrier_benchmark(
                    i, i // n, UHCAF_1LEVEL, iters=2).seconds_per_op),
            ],
        )
        assert len(table.series) == 2
        assert set(table.get("two").values) == {"4(2)", "8(2)"}
        assert all(v > 0 for v in table.get("one").values.values())

    def test_sweep_reports_failed_cells_and_continues(self):
        def flaky(i, n):
            if i == 8:
                raise RuntimeError("cell exploded")
            return 1.0

        table = sweep(
            "demo",
            configs=[(4, 2), (8, 2)],
            systems=[
                ("flaky", flaky),
                ("steady", lambda i, n: 2.0),
            ],
        )
        flaky_series = table.get("flaky")
        assert "4(2)" in flaky_series.values
        assert "8(2)" in flaky_series.failures
        assert "cell exploded" in flaky_series.failures["8(2)"]
        # the other system's sweep is unaffected
        assert set(table.get("steady").values) == {"4(2)", "8(2)"}
        text = table.render()
        assert "FAIL" in text and "cell exploded" in text


class TestFigure1Harness:
    def test_quick_mode_preserves_orderings(self):
        table = figure1(quick=True)
        two = table.get("UHCAF 2level")
        gfortran = table.get("CAF2.0 GFortran backend")
        for label in table.labels:
            assert two.values[label] > gfortran.values[label]

    def test_quick_mode_has_all_five_systems(self):
        table = figure1(quick=True)
        assert len(table.series) == 5
