"""Parallel == sequential, end to end through the real harnesses.

The exec layer's headline promise is that ``--jobs N`` changes only the
wall clock: the conformance matrix, the fuzz sweep, and a warm-cache
re-run must all produce results equal to the sequential run, field for
field, and render to identical output.  (Raw pickle *streams* are not
compared: equal object graphs pickle differently depending on which
string objects happen to be shared, which is identity, not content.)
"""

import numpy as np
import pytest

from repro.exec import ResultCache
from repro.exec.cache import invalidate_fingerprint_memo
from repro.verify import fuzz_schedules
from repro.verify.conformance import build_matrix, run_matrix


def _small_matrix():
    """A fast slice of the quick matrix (one kind, every shape)."""
    return build_matrix(quick=True, kinds=["barrier"])


# ----------------------------------------------------------------------
class TestMatrixEquivalence:
    def test_pooled_matrix_matches_sequential(self):
        cases = _small_matrix()
        assert cases, "quick barrier matrix unexpectedly empty"
        seq = run_matrix(cases, seeds=2, jobs=1)
        par = run_matrix(cases, seeds=2, jobs=4)
        assert par == seq
        assert repr(par) == repr(seq)

    def test_progress_order_is_identical(self):
        cases = _small_matrix()
        seq_labels, par_labels = [], []
        run_matrix(cases, seeds=2, jobs=1,
                   progress=lambda r: seq_labels.append(r.case.label))
        run_matrix(cases, seeds=2, jobs=2,
                   progress=lambda r: par_labels.append(r.case.label))
        assert par_labels == seq_labels == [c.label for c in cases]


# ----------------------------------------------------------------------
def _fuzz_main(ctx):
    me = ctx.this_image()
    value = (np.arange(4, dtype=np.float64) + 1.0) * me
    total = yield from ctx.co_reduce(value, op="sum")
    yield from ctx.sync_all()
    return float(np.sum(total))


class TestFuzzEquivalence:
    def test_pooled_fuzz_matches_sequential(self):
        kwargs = dict(seeds=4, num_images=4, images_per_node=2)
        seq = fuzz_schedules(_fuzz_main, jobs=1, **kwargs)
        par = fuzz_schedules(_fuzz_main, jobs=3, **kwargs)
        assert seq.ok and par.ok
        assert [o.seed for o in par.outcomes] == [o.seed for o in seq.outcomes]
        assert par == seq
        assert par.render() == seq.render()

    def test_closure_main_still_fuzzes(self):
        """An unpicklable program falls back inline, same report."""
        bias = 2.0

        def main(ctx):
            total = yield from ctx.co_sum(
                np.full(2, ctx.this_image() + bias))
            yield from ctx.sync_all()
            return float(total[0])

        report = fuzz_schedules(main, seeds=2, num_images=2,
                                images_per_node=2, jobs=2)
        assert report.ok


# ----------------------------------------------------------------------
class TestCacheEquivalence:
    def test_cold_then_warm_matrix_is_byte_identical(self, tmp_path):
        cases = _small_matrix()
        seq = run_matrix(cases, seeds=2, jobs=1)

        cold_cache = ResultCache(root=tmp_path, namespace="t")
        cold = run_matrix(cases, seeds=2, jobs=2, cache=cold_cache)
        assert cold_cache.hits == 0
        assert cold == seq and repr(cold) == repr(seq)

        warm_cache = ResultCache(root=tmp_path, namespace="t")
        warm = run_matrix(cases, seeds=2, jobs=2, cache=warm_cache)
        assert warm_cache.hits == len(cases)  # 100% served from disk
        assert warm == seq and repr(warm) == repr(seq)

    def test_source_change_forces_rerun(self, tmp_path):
        """A cache keyed to a mutable source tree drops its entries the
        moment any source file changes."""
        cases = _small_matrix()[:2]
        src_root = tmp_path / "src"
        src_root.mkdir()
        (src_root / "sim.py").write_text("VERSION = 1\n")
        invalidate_fingerprint_memo()
        try:
            first = ResultCache(root=tmp_path / "cache", namespace="t",
                                source_roots=[src_root])
            run_matrix(cases, seeds=2, jobs=1, cache=first)
            assert first.puts == len(cases)

            (src_root / "sim.py").write_text("VERSION = 2\n")
            invalidate_fingerprint_memo()
            second = ResultCache(root=tmp_path / "cache", namespace="t",
                                 source_roots=[src_root])
            run_matrix(cases, seeds=2, jobs=1, cache=second)
            assert second.hits == 0
            assert second.misses == len(cases)
        finally:
            invalidate_fingerprint_memo()
