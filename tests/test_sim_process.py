"""Unit tests for generator-based simulated processes."""

import pytest

from repro.sim import (
    Acquire,
    Cell,
    DeadlockError,
    Engine,
    Hold,
    Process,
    ProcessFailure,
    Resource,
    SimEvent,
    Timeout,
    Wait,
    WaitFor,
)


@pytest.fixture
def eng():
    return Engine()


class TestCommands:
    def test_timeout_advances_process(self, eng):
        marks = []

        def proc():
            yield Timeout(1.0)
            marks.append(eng.now)
            yield Timeout(0.5)
            marks.append(eng.now)

        Process(eng, proc())
        eng.run()
        assert marks == [1.0, 1.5]

    def test_timeout_negative_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_wait_resumes_with_event_value(self, eng):
        ev = SimEvent(eng)
        got = []

        def waiter():
            value = yield Wait(ev)
            got.append(value)

        def poster():
            yield Timeout(1.0)
            ev.trigger("payload")

        Process(eng, waiter())
        Process(eng, poster())
        eng.run()
        assert got == ["payload"]

    def test_wait_on_already_triggered_event(self, eng):
        ev = SimEvent(eng)
        ev.trigger(9)
        got = []

        def proc():
            got.append((yield Wait(ev)))

        Process(eng, proc())
        eng.run()
        assert got == [9]

    def test_waitfor_blocks_until_predicate(self, eng):
        cell = Cell(eng, 0)
        times = []

        def waiter():
            value = yield WaitFor(cell, lambda v: v >= 2)
            times.append((eng.now, value))

        def writer():
            yield Timeout(1.0)
            cell.add(1)
            yield Timeout(1.0)
            cell.add(1)

        Process(eng, waiter())
        Process(eng, writer())
        eng.run()
        assert times == [(2.0, 2)]

    def test_acquire_and_manual_release(self, eng):
        res = Resource(eng, capacity=1)
        order = []

        def holder():
            yield Acquire(res)
            order.append(("got", eng.now))
            yield Timeout(2.0)
            res.release()

        def contender():
            yield Timeout(0.1)
            yield Acquire(res)
            order.append(("second", eng.now))
            res.release()

        Process(eng, holder())
        Process(eng, contender())
        eng.run()
        assert order == [("got", 0.0), ("second", 2.0)]

    def test_hold_acquires_for_duration(self, eng):
        res = Resource(eng, capacity=1)
        marks = []

        def p(name):
            yield Hold(res, 1.0)
            marks.append((name, eng.now))

        Process(eng, p("a"))
        Process(eng, p("b"))
        eng.run()
        assert marks == [("a", 1.0), ("b", 2.0)]

    def test_unknown_command_fails_process(self, eng):
        def proc():
            yield "not a command"

        Process(eng, proc())
        with pytest.raises(ProcessFailure, match="non-command"):
            eng.run()


class TestLifecycle:
    def test_return_value_on_done_event(self, eng):
        def proc():
            yield Timeout(1.0)
            return "result"

        p = Process(eng, proc())
        eng.run()
        assert p.finished
        assert p.result == "result"

    def test_exception_wrapped_with_process_name(self, eng):
        def proc():
            yield Timeout(1.0)
            raise ValueError("boom")

        Process(eng, proc(), name="imageX")
        with pytest.raises(ProcessFailure, match="imageX") as exc:
            eng.run()
        assert isinstance(exc.value.original, ValueError)

    def test_immediate_return_without_yield(self, eng):
        def proc():
            return 5
            yield  # pragma: no cover - makes this a generator

        p = Process(eng, proc())
        eng.run()
        assert p.result == 5

    def test_yield_from_subgenerators_compose(self, eng):
        def inner():
            yield Timeout(1.0)
            return 10

        def outer():
            value = yield from inner()
            yield Timeout(1.0)
            return value + 1

        p = Process(eng, outer())
        eng.run()
        assert p.result == 11
        assert eng.now == 2.0

    def test_blocked_process_detected_as_deadlock(self, eng):
        ev = SimEvent(eng, name="never")

        def proc():
            yield Wait(ev)

        Process(eng, proc(), name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            eng.run()

    def test_join_via_done_event(self, eng):
        def worker():
            yield Timeout(3.0)
            return "w"

        w = Process(eng, worker())
        got = []

        def joiner():
            value = yield Wait(w.done)
            got.append((value, eng.now))

        Process(eng, joiner())
        eng.run()
        assert got == [("w", 3.0)]

    def test_spawn_order_is_first_step_order(self, eng):
        order = []

        def proc(name):
            order.append(name)
            yield Timeout(0.0)

        Process(eng, proc("a"))
        Process(eng, proc("b"))
        eng.run()
        assert order == ["a", "b"]
