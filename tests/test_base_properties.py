"""Seeded property-based tests for the collective building blocks in
:mod:`repro.collectives.base`.

Sizes are drawn from one seeded RNG so the sample is stable across runs
(fully reproducible failures) while still sweeping far beyond the
hand-picked sizes the unit tests use.
"""

import math
import random
from types import SimpleNamespace

import pytest

from repro.collectives.base import binomial_peers, dissemination_rounds
from repro.sim import Cell, Engine, WaitFor

_SEED = 20260806
_rng = random.Random(_SEED)
SIZES = sorted({2, 3, 4, 5, 7, 8, 64, *_rng.sample(range(2, 400), 30)})


# ----------------------------------------------------------------------
# dissemination_rounds: exactly ceil(log2 n) rounds, one wait per round
# ----------------------------------------------------------------------
class _StubConduit:
    """Delivers instantly with no cost — we only count control flow."""

    def __init__(self):
        self.sends = []

    def transfer(self, src, dst, nbytes, on_delivered=None, path="auto"):
        self.sends.append((src, dst))
        if on_delivered is not None:
            on_delivered()
        return
        yield  # pragma: no cover - makes this a generator


class _StubShared:
    def __init__(self, engine):
        self.engine = engine
        self._flags = {}

    def diss_flag(self, index, round_, variant):
        key = (variant, index, round_)
        if key not in self._flags:
            self._flags[key] = Cell(self.engine, 0)
        return self._flags[key]

    def proc_of(self, index):
        return index - 1


def _drive(n, index=1, seq=1):
    """Run dissemination_rounds for one member; return (#waits, conduit)."""
    engine = Engine()
    conduit = _StubConduit()
    shared = _StubShared(engine)
    view = SimpleNamespace(shared=shared, index=index, proc=index - 1)
    ctx = SimpleNamespace(conduit=conduit)
    gen = dissemination_rounds(
        ctx, view, list(range(1, n + 1)), "prop", seq=seq
    )
    waits = 0
    try:
        item = next(gen)
        while True:
            if isinstance(item, WaitFor):
                waits += 1
            item = gen.send(None)
    except StopIteration:
        pass
    return waits, conduit


@pytest.mark.parametrize("n", SIZES)
def test_dissemination_round_count_is_ceil_log2(n):
    waits, conduit = _drive(n)
    assert waits == math.ceil(math.log2(n))
    # one notification per round, never to self
    assert len(conduit.sends) == waits
    assert all(src != dst for src, dst in conduit.sends)


def test_dissemination_single_participant_is_noop():
    waits, conduit = _drive(1)
    assert waits == 0
    assert conduit.sends == []


@pytest.mark.parametrize("n", random.Random(_SEED + 1).sample(range(3, 200), 5))
def test_dissemination_partners_cover_all_distances(n):
    # The member at index 1 (proc 0) notifies the participant at
    # distance 2^r in every round r — all distinct targets.
    _waits, conduit = _drive(n)
    targets = [dst for _src, dst in conduit.sends]  # 0-based procs
    expected = [(1 << r) % n for r in range(math.ceil(math.log2(n)))]
    assert targets == expected
    assert len(set(targets)) == len(targets)


# ----------------------------------------------------------------------
# binomial_peers: a proper spanning tree, symmetric, no self-peering
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", SIZES)
def test_binomial_tree_properties(n):
    children_of = {}
    for rank in range(n):
        parent, children = binomial_peers(rank, n)
        children_of[rank] = children
        # no self-peering
        assert parent != rank
        assert rank not in children
        # children stay in range and are distinct
        assert all(0 <= c < n for c in children)
        assert len(set(children)) == len(children)
        # root iff rank 0
        assert (parent is None) == (rank == 0)

    # parent/child symmetry both ways
    for rank in range(n):
        parent, children = binomial_peers(rank, n)
        if parent is not None:
            assert rank in children_of[parent]
        for child in children:
            assert binomial_peers(child, n)[0] == rank

    # the tree spans all n ranks exactly once
    seen = set()
    frontier = [0]
    while frontier:
        rank = frontier.pop()
        assert rank not in seen
        seen.add(rank)
        frontier.extend(children_of[rank])
    assert seen == set(range(n))


@pytest.mark.parametrize("n", SIZES)
def test_binomial_children_ordered_largest_stride_first(n):
    for rank in range(n):
        _parent, children = binomial_peers(rank, n)
        strides = [c - rank for c in children]
        assert strides == sorted(strides, reverse=True)
        assert all(s > 0 and (s & (s - 1)) == 0 for s in strides)


def test_binomial_rank_out_of_range_rejected():
    with pytest.raises(ValueError):
        binomial_peers(5, 5)
    with pytest.raises(ValueError):
        binomial_peers(-1, 4)
