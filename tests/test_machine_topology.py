"""Unit tests for placements and the topology map."""

import pytest

from repro.machine import (
    Placement,
    Topology,
    block_placement,
    cyclic_placement,
    paper_cluster,
)


class TestBlockPlacement:
    def test_fills_nodes_sequentially(self):
        p = block_placement(6, images_per_node=2)
        assert [(x.node, x.core) for x in p] == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_partial_last_node(self):
        p = block_placement(5, images_per_node=4)
        assert p[4] == Placement(node=1, core=0)

    def test_one_image_per_node(self):
        p = block_placement(4, images_per_node=1)
        assert [x.node for x in p] == [0, 1, 2, 3]
        assert all(x.core == 0 for x in p)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            block_placement(0, 1)
        with pytest.raises(ValueError):
            block_placement(4, 0)


class TestCyclicPlacement:
    def test_round_robins_nodes(self):
        p = cyclic_placement(6, num_nodes=3)
        assert [x.node for x in p] == [0, 1, 2, 0, 1, 2]

    def test_cores_advance_per_node(self):
        p = cyclic_placement(6, num_nodes=3)
        assert [x.core for x in p] == [0, 0, 0, 1, 1, 1]

    def test_adjacent_images_never_colocated(self):
        p = cyclic_placement(12, num_nodes=4)
        for a, b in zip(p, p[1:]):
            assert a.node != b.node

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cyclic_placement(0, 2)
        with pytest.raises(ValueError):
            cyclic_placement(4, 0)


class TestTopology:
    def _topo(self, images=8, ipn=4, nodes=4):
        return Topology(paper_cluster(nodes), block_placement(images, ipn))

    def test_num_images(self):
        assert self._topo().num_images == 8

    def test_node_and_core_queries(self):
        topo = self._topo()
        assert topo.node_of(0) == 0
        assert topo.node_of(5) == 1
        assert topo.core_of(5) == 1

    def test_same_node(self):
        topo = self._topo()
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_socket_queries(self):
        topo = self._topo(images=8, ipn=8, nodes=1)
        # paper node: 8 cores, 2 sockets → cores 0-3 socket 0, 4-7 socket 1
        assert topo.socket_of(0) == 0
        assert topo.socket_of(7) == 1
        assert topo.same_socket(0, 3)
        assert not topo.same_socket(3, 4)

    def test_images_on_node(self):
        topo = self._topo()
        assert topo.images_on_node(1) == [4, 5, 6, 7]
        assert topo.images_on_node(2) == []

    def test_nodes_used(self):
        assert self._topo().nodes_used() == [0, 1]

    def test_intranode_sets_groups_by_node(self):
        topo = self._topo()
        groups = topo.intranode_sets([0, 1, 4, 6])
        assert groups == {0: [0, 1], 1: [4, 6]}

    def test_intranode_sets_sorted_members(self):
        topo = self._topo()
        groups = topo.intranode_sets([6, 4, 1, 0])
        assert groups[1] == [4, 6]

    def test_rejects_node_out_of_range(self):
        with pytest.raises(ValueError, match="node"):
            Topology(paper_cluster(1), [Placement(node=1, core=0)])

    def test_rejects_core_out_of_range(self):
        with pytest.raises(ValueError, match="core"):
            Topology(paper_cluster(1), [Placement(node=0, core=8)])

    def test_rejects_oversubscribed_core(self):
        with pytest.raises(ValueError, match="occupied"):
            Topology(
                paper_cluster(1),
                [Placement(node=0, core=0), Placement(node=0, core=0)],
            )

    def test_rejects_empty_placement(self):
        with pytest.raises(ValueError):
            Topology(paper_cluster(1), [])
