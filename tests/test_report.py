"""Tests for the reproduction-report generator and its CLI."""

import pytest

from repro.report import Claim, render_report, run_report
from repro.__main__ import main


class TestClaim:
    def test_in_band(self):
        c = Claim("E1", "x", "p", "m", (1.0, 2.0), 1.5)
        assert c.ok

    def test_below_band(self):
        assert not Claim("E1", "x", "p", "m", (1.0, 2.0), 0.5).ok

    def test_above_band(self):
        assert not Claim("E1", "x", "p", "m", (1.0, 2.0), 2.5).ok

    def test_band_edges_inclusive(self):
        assert Claim("E1", "x", "p", "m", (1.0, 2.0), 1.0).ok
        assert Claim("E1", "x", "p", "m", (1.0, 2.0), 2.0).ok


class TestRender:
    def test_all_pass_message(self):
        text = render_report([Claim("E1", "d", "p", "m", (0, 2), 1)])
        assert "All claims within" in text
        assert "✅" in text

    def test_failures_flagged(self):
        text = render_report([Claim("E9", "d", "p", "m", (0, 1), 5)])
        assert "OUT OF BAND" in text
        assert "1 claim(s) out of band" in text

    def test_table_structure(self):
        claims = [Claim("E1", "desc-a", "pap", "meas", (0, 2), 1),
                  Claim("E2", "desc-b", "pap2", "meas2", (0, 2), 1)]
        text = render_report(claims)
        assert "| E1 | desc-a | pap | meas |" in text
        assert "| E2 | desc-b |" in text


class TestRunReport:
    def test_quick_report_all_in_band(self):
        claims = run_report(quick=True)
        assert len(claims) >= 6
        for c in claims:
            assert c.ok, f"{c.experiment} {c.description}: {c.measured}"

    def test_quick_report_covers_headlines(self):
        claims = run_report(quick=True)
        experiments = {c.experiment for c in claims}
        assert experiments >= {"E1", "E2", "E3", "E4", "E5"}


class TestReportCli:
    def test_prints_report(self, capsys):
        assert main(["--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["--quick", "-o", str(path)]) == 0
        assert "paper vs measured" in path.read_text()
