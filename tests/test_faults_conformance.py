"""Smoke slice of the fault conformance matrix (the full sweep runs via
``python -m repro.verify --faults``; 704 cells pass at the time of
writing).  Here: the paper's two-level algorithms on the canonical 2x4
hierarchy under every schedule, plus the matrix builder's filters."""

import pytest

from repro.verify.faultconf import (
    SCHEDULE_NAMES,
    build_fault_matrix,
    make_schedule,
    run_fault_case,
)


class TestScheduleCatalog:
    def test_named_schedules_cover_the_issue_minimum(self):
        assert set(SCHEDULE_NAMES) == {
            "none", "slave-fails", "leader-fails", "message-drop"}
        assert make_schedule("none").is_null
        assert make_schedule("slave-fails").failures[0].image == 2
        assert make_schedule("leader-fails").failures[0].image == 1
        assert make_schedule("message-drop").has_link_faults

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown fault schedule"):
            make_schedule("meteor-strike")


class TestMatrixBuilder:
    def test_full_matrix_covers_every_kind_and_schedule(self):
        cases = build_fault_matrix()
        kinds = {c.kind for c in cases}
        assert kinds == {"barrier", "reduce", "broadcast", "allgather",
                         "alltoall", "event", "lock", "critical"}
        assert {c.schedule for c in cases} == set(SCHEDULE_NAMES)
        # every registered algorithm appears under every schedule
        per_sched = {s: {(c.kind, c.alg) for c in cases if c.schedule == s}
                     for s in SCHEDULE_NAMES}
        assert len(set(map(frozenset, per_sched.values()))) == 1

    def test_filters_compose(self):
        cases = build_fault_matrix(kinds=["barrier"], shapes=["2x4"],
                                   schedules=["leader-fails"])
        assert cases and all(
            c.kind == "barrier" and c.shape == "2x4"
            and c.schedule == "leader-fails" for c in cases)


@pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
@pytest.mark.parametrize("kind,alg", [
    ("barrier", "tdlb"),
    ("reduce", "two-level"),
    ("broadcast", "two-level"),
    ("allgather", "two-level"),
    ("alltoall", "two-level"),
    ("event", "leader-mediated"),
    ("lock", "cas-wait"),
    ("critical", "lock-based"),
])
def test_paper_algorithms_survive_faults_on_2x4(kind, alg, schedule):
    cases = build_fault_matrix(kinds=[kind], algs=[alg], shapes=["2x4"],
                               schedules=[schedule])
    assert len(cases) == 1
    result = run_fault_case(cases[0])
    assert result.ok, result.detail
