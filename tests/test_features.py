"""Tests for cross-cutting runtime features: compute jitter, tracing,
the tournament barrier, custom reduction operations."""

import pytest

from repro.runtime.config import GASNET_IB_DISSEMINATION, UHCAF_2LEVEL
from tests.conftest import run_small


class TestJitter:
    CFG = UHCAF_2LEVEL.with_(compute_jitter=0.25)

    @staticmethod
    def _compute_main(ctx):
        yield ctx.compute_cost(1e6)
        return ctx.now

    def test_default_is_noise_free(self):
        times = run_small(self._compute_main, images=4).results
        assert len(set(times)) == 1

    def test_jitter_spreads_compute_times(self):
        times = run_small(self._compute_main, images=4, config=self.CFG).results
        assert len(set(times)) > 1

    def test_jitter_bounded(self):
        base = run_small(self._compute_main, images=4).results[0]
        times = run_small(self._compute_main, images=4, config=self.CFG).results
        assert all(base <= t <= base * 1.25 + 1e-12 for t in times)

    def test_same_seed_reproduces_exactly(self):
        a = run_small(self._compute_main, images=4, config=self.CFG,
                      jitter_seed=9).results
        b = run_small(self._compute_main, images=4, config=self.CFG,
                      jitter_seed=9).results
        assert a == b

    def test_different_seed_differs(self):
        a = run_small(self._compute_main, images=4, config=self.CFG,
                      jitter_seed=1).results
        b = run_small(self._compute_main, images=4, config=self.CFG,
                      jitter_seed=2).results
        assert a != b

    def test_jittered_collectives_stay_correct(self):
        def main(ctx):
            yield ctx.compute_cost(1e5)
            total = yield from ctx.co_sum(ctx.this_image())
            return total

        results = run_small(main, images=8, ipn=4, config=self.CFG).results
        assert all(r == 36 for r in results)


class TestTrace:
    def test_trace_disabled_by_default(self):
        def main(ctx):
            yield from ctx.sync_all()

        assert run_small(main, images=2).trace is None

    def test_trace_records_ops_in_time_order(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (2,))
            yield from ctx.put(a, 2 if ctx.this_image() == 1 else 1, 1.0,
                               index=0)
            yield from ctx.sync_all()

        result = run_small(main, images=2, trace=True)
        trace = result.trace
        assert trace, "trace should have records"
        times = [t for t, *_ in trace]
        assert times == sorted(times)
        ops = {op for _, _, op, _ in trace}
        assert "sync_all" in ops and "put" in ops

    def test_trace_identifies_images(self):
        def main(ctx):
            yield from ctx.sync_all()

        trace = run_small(main, images=3, ipn=3, trace=True).trace
        images = {img for _, img, _, _ in trace}
        assert images == {1, 2, 3}


class TestTournamentBarrier:
    CFG = GASNET_IB_DISSEMINATION.with_(barrier="tournament")

    def test_holds_everyone(self):
        def main(ctx):
            if ctx.this_image() == 3:
                yield from ctx.compute(seconds=1e-3)
            arrive = ctx.now
            yield from ctx.sync_all()
            return (arrive, ctx.now)

        result = run_small(main, images=8, ipn=4, config=self.CFG)
        last = max(a for a, _ in result.results)
        assert all(t >= last for _, t in result.results)

    def test_message_count_is_2n_minus_2(self):
        def main(ctx):
            yield from ctx.sync_all()

        n = 8
        traffic = run_small(main, images=n, ipn=4, config=self.CFG).traffic
        assert traffic.total_messages == 2 * (n - 1)

    def test_repeated_invocations(self):
        def main(ctx):
            for _ in range(4):
                yield from ctx.sync_all()
            return True

        assert all(run_small(main, images=6, ipn=3, config=self.CFG).results)

    def test_non_power_of_two(self):
        def main(ctx):
            yield from ctx.sync_all()
            return True

        assert all(run_small(main, images=7, ipn=4, config=self.CFG).results)


class TestCustomReduceOp:
    def test_callable_op(self):
        def main(ctx):
            out = yield from ctx.co_reduce(
                ctx.this_image(), op=lambda a, b: a * b
            )
            return out

        results = run_small(main, images=5, ipn=3).results
        assert all(r == 120 for r in results)

    @pytest.mark.parametrize(
        "strategy", ["linear-flat", "binomial-flat", "recursive-doubling",
                     "two-level"])
    def test_callable_op_all_strategies(self, strategy):
        def main(ctx):
            out = yield from ctx.co_reduce(
                {ctx.this_image()}, op=lambda a, b: a | b
            )
            return out

        results = run_small(
            main, images=6, ipn=3, config=UHCAF_2LEVEL.with_(reduce=strategy)
        ).results
        assert all(r == {1, 2, 3, 4, 5, 6} for r in results)
