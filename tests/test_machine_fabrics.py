"""Unit tests for the interconnect, shared-memory fabric, and Machine facade."""

import pytest

from repro.machine import build_machine, paper_cluster
from repro.sim import Engine, Process, Timeout


def make(images=8, ipn=4, nodes=4):
    eng = Engine()
    return eng, build_machine(eng, paper_cluster(nodes), images, images_per_node=ipn)


def drive(eng, gen):
    """Run one transport generator as a process; return completion time."""
    p = Process(eng, gen)
    eng.run()
    return eng.now


class TestInterconnect:
    def test_same_node_send_rejected(self):
        eng, m = make()

        def proc():
            yield from m.interconnect.send(0, 0, 8)

        from repro.sim import ProcessFailure
        Process(eng, proc())
        with pytest.raises(ProcessFailure, match="SharedMemory"):
            eng.run()

    def test_sender_blocks_for_injection_only(self):
        eng, m = make()
        net = m.spec.network
        t = drive(eng, m.interconnect.send(0, 1, 0))
        assert t == pytest.approx(net.inject_time(0))

    def test_delivery_after_wire_time(self):
        eng, m = make()
        net = m.spec.network
        arrival = []

        def proc():
            yield from m.interconnect.send(0, 1, 100,
                                           on_delivered=lambda: arrival.append(eng.now))

        Process(eng, proc())
        eng.run()
        assert arrival[0] == pytest.approx(net.inject_time(100) + net.wire_time(100))

    def test_nic_serializes_concurrent_sends(self):
        eng, m = make()
        net = m.spec.network
        done = []

        def proc():
            yield from m.interconnect.send(0, 1, 0)
            done.append(eng.now)

        for _ in range(3):
            Process(eng, proc())
        eng.run()
        gaps = [round(t / net.inject_time(0)) for t in done]
        assert gaps == [1, 2, 3]

    def test_distinct_nodes_inject_in_parallel(self):
        eng, m = make()
        net = m.spec.network
        done = []

        def proc(src):
            yield from m.interconnect.send(src, (src + 1) % 4, 0)
            done.append(eng.now)

        for src in range(3):
            Process(eng, proc(src))
        eng.run()
        assert all(t == pytest.approx(net.inject_time(0)) for t in done)

    def test_traffic_counters(self):
        eng, m = make()
        drive(eng, m.interconnect.send(0, 1, 512))
        assert m.interconnect.messages == 1
        assert m.interconnect.bytes == 512
        m.interconnect.reset_counters()
        assert m.interconnect.messages == 0

    def test_negative_bytes_rejected(self):
        eng, m = make()
        with pytest.raises(Exception):
            drive(eng, m.interconnect.send(0, 1, -1))


class TestSharedMemory:
    def test_visibility_latency_cross_socket(self):
        eng, m = make(images=8, ipn=8, nodes=1)
        node = m.spec.node
        arrival = []

        def proc():
            yield from m.shared_memory.transfer(
                0, 0, 7, 8, on_visible=lambda: arrival.append(eng.now)
            )

        Process(eng, proc())
        eng.run()
        occupancy = (node.bus_hold + 8 / node.smp_bandwidth) * node.cross_socket_bus_factor
        assert arrival[0] == pytest.approx(occupancy + node.smp_latency)

    def test_intra_socket_visibility_is_cheaper(self):
        eng, m = make(images=8, ipn=8, nodes=1)
        arrivals = {}

        def proc(dst, key):
            yield from m.shared_memory.transfer(
                0, 0, dst, 8, on_visible=lambda: arrivals.__setitem__(key, eng.now)
            )

        Process(eng, proc(1, "same_socket"))
        eng.run()
        eng2, m2 = make(images=8, ipn=8, nodes=1)

        def proc2():
            yield from m2.shared_memory.transfer(
                0, 0, 7, 8, on_visible=lambda: arrivals.__setitem__("cross", eng2.now)
            )

        Process(eng2, proc2())
        eng2.run()
        assert arrivals["same_socket"] < arrivals["cross"]

    def test_bus_serializes_notifications(self):
        eng, m = make(images=8, ipn=8, nodes=1)
        node = m.spec.node
        done = []

        def proc():
            yield from m.shared_memory.transfer(0, 0, 1, 0)
            done.append(eng.now)

        for _ in range(4):
            Process(eng, proc())
        eng.run()
        assert done == pytest.approx(
            [node.bus_hold * (i + 1) for i in range(4)]
        )

    def test_bandwidth_factor_slows_streaming(self):
        eng, m = make(images=8, ipn=8, nodes=1)
        t_full = drive(eng, m.shared_memory.transfer(0, 0, 1, 3_000_000))
        eng2, m2 = make(images=8, ipn=8, nodes=1)
        t_slow = drive(
            eng2,
            m2.shared_memory.transfer(0, 0, 1, 3_000_000, bandwidth_factor=0.5),
        )
        assert t_slow == pytest.approx(t_full * 2, rel=0.01)

    def test_bad_bandwidth_factor_rejected(self):
        eng, m = make()
        with pytest.raises(Exception):
            drive(eng, m.shared_memory.transfer(0, 0, 1, 8, bandwidth_factor=0.0))


class TestMachineFacade:
    def test_transfer_routes_same_node_to_shared_memory(self):
        eng, m = make()
        drive(eng, m.transfer(0, 1, 64))
        assert m.shared_memory.messages == 1
        assert m.interconnect.messages == 0

    def test_transfer_routes_cross_node_to_interconnect(self):
        eng, m = make()
        drive(eng, m.transfer(0, 4, 64))
        assert m.interconnect.messages == 1
        assert m.shared_memory.messages == 0

    def test_traffic_snapshot_subtraction(self):
        eng, m = make()
        drive(eng, m.transfer(0, 4, 64))
        snap = m.traffic()
        eng2 = Engine()
        # continue on same machine is awkward; just verify arithmetic
        diff = snap - snap
        assert diff.total_messages == 0

    def test_compute_charges_flops_at_efficiency(self):
        eng, m = make()
        cmd = m.compute(8.8e9, efficiency=1.0)
        assert cmd.delay == pytest.approx(1.0)
        cmd = m.compute(8.8e9, efficiency=0.5)
        assert cmd.delay == pytest.approx(2.0)

    def test_compute_rejects_bad_efficiency(self):
        eng, m = make()
        with pytest.raises(ValueError):
            m.compute(1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            m.compute(1.0, efficiency=1.5)

    def test_compute_rejects_negative_flops(self):
        eng, m = make()
        with pytest.raises(ValueError):
            m.compute(-1.0)

    def test_build_machine_default_packs_nodes(self):
        eng = Engine()
        m = build_machine(eng, paper_cluster(2), 16)
        assert m.topology.node_of(7) == 0
        assert m.topology.node_of(8) == 1

    def test_build_machine_rejects_overflow(self):
        eng = Engine()
        with pytest.raises(ValueError):
            build_machine(eng, paper_cluster(1), 16, images_per_node=16)
