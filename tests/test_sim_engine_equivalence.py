"""Lean-record vs tiebreak-record engine equivalence.

``Engine.__init__`` documents that event records are lean 3-tuples
``(key, fn, label)`` on the default path and 5-tuples
``(priority, jitter, seq, fn, label)`` under a ``tiebreak_seed`` — and
asserts that with the jitter pinned at 0.0 the 5-tuple orders exactly as
the 3-tuple's merged key, so the lean record cannot reorder anything.
This module is the proof the comment promises: identical workloads on
both paths must produce byte-identical event traces.

The jitter is pinned by swapping the engine's tiebreak RNG for one whose
``random()`` is constantly ``0.0`` and re-binding the schedule closures
(they capture the RNG at bind time).
"""

from __future__ import annotations

import random

import pytest

from repro.machine import build_machine, paper_cluster
from repro.runtime.program import run_spmd
from repro.sim import Cell, Process, Timeout, WaitFor
from repro.sim.engine import Engine


class ZeroRandom(random.Random):
    """An RNG whose jitter stream is identically zero."""

    def random(self) -> float:  # noqa: D102
        return 0.0


def _tiebreak_engine(trace) -> Engine:
    """An engine on the 5-tuple record path with jitter pinned to 0.0."""
    engine = Engine(trace=trace, tiebreak_seed=12345)
    engine._tiebreak_rng = ZeroRandom()
    engine._bind_schedule()  # closures capture the RNG; rebind with the pin
    return engine


def _paired_engines():
    """(lean engine, pinned tiebreak engine, lean trace, tiebreak trace)."""
    lean_trace: list = []
    tb_trace: list = []
    lean = Engine(trace=lambda t, lbl: lean_trace.append((t, lbl)))
    tb = _tiebreak_engine(lambda t, lbl: tb_trace.append((t, lbl)))
    return lean, tb, lean_trace, tb_trace


def _assert_byte_identical(lean_trace, tb_trace):
    assert lean_trace, "workload produced no labeled events"
    assert lean_trace == tb_trace
    # byte-identical, not merely ==: same float bit patterns, same text
    assert repr(lean_trace) == repr(tb_trace)


class TestScheduleEquivalence:
    def test_same_slot_priority_and_insertion_order(self):
        # Events colliding on one timestamp with mixed priorities: the
        # pinned 5-tuple must fall back to (priority, seq) exactly like
        # the lean merged key.
        def load(engine):
            for i in range(40):
                engine.schedule(1e-6, lambda: None,
                                priority=(3 - i % 4), label=f"p{3 - i % 4}.{i}")
            for i in range(10):
                engine.call_now(lambda: None, label=f"now.{i}")
                engine.schedule_at(2e-6, lambda: None, priority=i % 2,
                                   label=f"at.{i}")
            engine.run()

        lean, tb, lean_trace, tb_trace = _paired_engines()
        load(lean)
        load(tb)
        _assert_byte_identical(lean_trace, tb_trace)

    def test_cascading_reschedules(self):
        # Events that schedule more events from inside the run loop, with
        # same-instant fan-out (the batched-drain shape).  Default
        # priority only: the engine module doc explicitly scopes the
        # fast-path same-instant refinement to priority-0 events when
        # scheduling from inside a same-instant callback.
        def load(engine):
            def fan(depth):
                if depth == 0:
                    return
                for k in range(3):
                    engine.schedule(k * 1e-9, lambda d=depth - 1: fan(d),
                                    label=f"fan{depth}.{k}")

            engine.schedule(0.0, lambda: fan(4), label="root")
            engine.run()

        lean, tb, lean_trace, tb_trace = _paired_engines()
        load(lean)
        load(tb)
        _assert_byte_identical(lean_trace, tb_trace)

    def test_process_timeout_and_waitfor_workload(self):
        # The sync_kernel shape: generator processes, Cell watchers,
        # zero-delay wake trampolines.
        def load(engine):
            cells = [Cell(engine, name=f"c{i}") for i in range(4)]

            def left(ping, pong, rounds=30):
                for r in range(1, rounds + 1):
                    ping.add(1)
                    yield WaitFor(pong, lambda v, r=r: v >= r)
                    yield Timeout(1e-9)

            def right(ping, pong, rounds=30):
                for r in range(1, rounds + 1):
                    yield WaitFor(ping, lambda v, r=r: v >= r)
                    yield Timeout(1e-9)
                    pong.add(1)

            for p in range(2):
                Process(engine, left(cells[2 * p], cells[2 * p + 1]),
                        name=f"left{p}")
                Process(engine, right(cells[2 * p], cells[2 * p + 1]),
                        name=f"right{p}")
            engine.run()

        lean, tb, lean_trace, tb_trace = _paired_engines()
        load(lean)
        load(tb)
        _assert_byte_identical(lean_trace, tb_trace)
        lean_now, tb_now = lean.now, tb.now
        assert lean_now == tb_now

    def test_full_runtime_barrier_sweep(self):
        # End to end through run_spmd: a hierarchical TDLB sweep must
        # give identical traces and final time on both record paths.
        def main(ctx, iters):
            for _ in range(iters):
                yield from ctx.sync_all()

        def load(engine):
            machine = build_machine(engine, paper_cluster(2), 8,
                                    images_per_node=4)
            result = run_spmd(main, machine=machine, args=(3,))
            return result.time

        lean, tb, lean_trace, tb_trace = _paired_engines()
        t_lean = load(lean)
        t_tb = load(tb)
        _assert_byte_identical(lean_trace, tb_trace)
        assert t_lean == t_tb > 0

    def test_record_shapes_actually_differ(self):
        # Guard the premise: the two paths must really use different
        # record tuples, or this module tests nothing.
        lean, tb, _, _ = _paired_engines()
        lean.schedule(1e-6, lambda: None, label="x")
        tb.schedule(1e-6, lambda: None, label="x")
        # default path stores a lone record bare; jittered keeps a list
        lean_rec = lean._buckets[1e-6]
        assert isinstance(lean_rec, tuple)
        (tb_rec,) = tb._buckets[1e-6]
        assert len(lean_rec) == 3
        assert len(tb_rec) == 5
        assert tb_rec[1] == 0.0  # the pin
        # a second same-instant insert promotes the bare record to a list
        lean.schedule(1e-6, lambda: None, label="y")
        promoted = lean._buckets[1e-6]
        assert isinstance(promoted, list) and len(promoted) == 2
        assert promoted[0] is lean_rec

    def test_unpinned_seed_can_reorder(self):
        # And the converse: with a real seed the jitter may legally
        # permute same-slot events — the fuzzing behavior repro.verify
        # relies on.  (Deterministic given the seed; just not insertion
        # order for this one.)
        order: list = []
        engine = Engine(trace=lambda t, lbl: order.append(lbl),
                        tiebreak_seed=7)
        for i in range(20):
            engine.schedule(1e-6, lambda: None, label=f"e{i}")
        engine.run()
        assert sorted(order) == sorted(f"e{i}" for i in range(20))
        if order == [f"e{i}" for i in range(20)]:  # pragma: no cover
            pytest.skip("seed 7 happened to preserve insertion order")
