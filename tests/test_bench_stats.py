"""Tests for replicated jittered measurements (bench.stats) and the
robustness claim they enable: TDLB's win survives noisy nodes."""

import pytest

from repro.bench.stats import ReplicaStats, replicate
from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.runtime.program import run_spmd


class TestReplicaStats:
    def test_summary_fields(self):
        s = ReplicaStats.of([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0
        # sample (Bessel-corrected) std: sqrt(((1)^2 + 0 + (1)^2) / (3-1))
        assert s.std == pytest.approx(1.0)
        assert s.spread == pytest.approx(1.0)

    def test_std_is_sample_not_population(self):
        # two samples: population /n would give half the variance
        s = ReplicaStats.of([0.0, 2.0])
        assert s.std == pytest.approx(2.0 ** 0.5)

    def test_single_sample(self):
        s = ReplicaStats.of([5.0])
        assert s.std == 0.0 and s.spread == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicaStats.of([])

    def test_replicate_passes_seeds(self):
        seen = []

        def measure(seed):
            seen.append(seed)
            return float(seed)

        s = replicate(measure, seeds=[3, 1, 4])
        assert seen == [3, 1, 4]
        assert s.samples == (3.0, 1.0, 4.0)


class TestJitteredBarrier:
    @staticmethod
    def _barrier_time(config, seed):
        def main(ctx):
            yield ctx.compute_cost(1e5)     # jittered local work
            yield from ctx.sync_all()
            t0 = ctx.now
            for _ in range(4):
                yield ctx.compute_cost(1e4)
                yield from ctx.sync_all()
            return ctx.now - t0

        result = run_spmd(main, num_images=16, images_per_node=8,
                          spec=paper_cluster(2), config=config,
                          jitter_seed=seed)
        return max(result.results)

    def test_jitter_produces_variance(self):
        cfg = UHCAF_2LEVEL.with_(compute_jitter=0.3)
        stats = replicate(lambda s: self._barrier_time(cfg, s),
                          seeds=range(5))
        assert stats.std > 0
        assert stats.spread < 0.5

    def test_no_jitter_zero_variance(self):
        stats = replicate(lambda s: self._barrier_time(UHCAF_2LEVEL, s),
                          seeds=range(3))
        assert stats.std == 0.0

    def test_tdlb_win_survives_noise(self):
        """The paper's improvement is not a fragile artifact of perfectly
        synchronized images: under 30% compute noise, the *worst* TDLB
        replica still beats the *best* flat-dissemination replica."""
        noisy2 = UHCAF_2LEVEL.with_(compute_jitter=0.3)
        noisy1 = UHCAF_1LEVEL.with_(compute_jitter=0.3)
        tdlb = replicate(lambda s: self._barrier_time(noisy2, s), range(5))
        flat = replicate(lambda s: self._barrier_time(noisy1, s), range(5))
        assert tdlb.maximum < flat.minimum
