"""Tests for the miniature MPI baseline: point-to-point matching,
communicator split, collectives across all three tunings."""

import numpy as np
import pytest

from repro.baselines.mpi import MPI_TUNINGS, run_mpi
from repro.machine import paper_cluster


def run(main, ranks=4, ipn=2, tuning="openmpi", **kw):
    nodes = max(-(-ranks // ipn), 1)
    return run_mpi(main, num_ranks=ranks, images_per_node=ipn,
                   spec=paper_cluster(nodes), tuning=tuning, **kw)


class TestPointToPoint:
    def test_send_recv_delivers_payload(self):
        def main(ctx):
            if ctx.rank() == 0:
                yield from ctx.send({"k": [1, 2]}, dest=1, tag=5)
                return None
            return (yield from ctx.recv(0, tag=5))

        assert run(main, ranks=2).results[1] == {"k": [1, 2]}

    def test_tag_matching_out_of_order(self):
        def main(ctx):
            if ctx.rank() == 0:
                yield from ctx.send("a", dest=1, tag=1)
                yield from ctx.send("b", dest=1, tag=2)
                return None
            second = yield from ctx.recv(0, tag=2)
            first = yield from ctx.recv(0, tag=1)
            return (first, second)

        assert run(main, ranks=2).results[1] == ("a", "b")

    def test_any_source_wildcard(self):
        def main(ctx):
            me = ctx.rank()
            if me != 0:
                yield from ctx.send(me, dest=0, tag=9)
                return None
            got = set()
            for _ in range(ctx.size() - 1):
                got.add((yield from ctx.recv(None, tag=9)))
            return got

        assert run(main, ranks=4).results[0] == {1, 2, 3}

    def test_any_tag_wildcard(self):
        def main(ctx):
            if ctx.rank() == 0:
                yield from ctx.send("x", dest=1, tag=("weird", 3))
                return None
            return (yield from ctx.recv(0, tag=None))

        assert run(main, ranks=2).results[1] == "x"

    def test_fifo_between_same_pair_same_tag(self):
        def main(ctx):
            if ctx.rank() == 0:
                for i in range(5):
                    yield from ctx.send(i, dest=1, tag=0)
                return None
            got = []
            for _ in range(5):
                got.append((yield from ctx.recv(0, tag=0)))
            return got

        assert run(main, ranks=2).results[1] == [0, 1, 2, 3, 4]

    def test_numpy_payload_frozen_at_send(self):
        def main(ctx):
            if ctx.rank() == 0:
                buf = np.ones(4)
                yield from ctx.send(buf, dest=1)
                buf[:] = -1
                return None
            got = yield from ctx.recv(0)
            return got.copy()

        assert (run(main, ranks=2).results[1] == 1).all()

    def test_sendrecv_exchange(self):
        def main(ctx):
            me = ctx.rank()
            peer = 1 - me
            got = yield from ctx.sendrecv(me * 10, peer, tag=3)
            return got

        assert run(main, ranks=2).results == [10, 0]

    def test_same_node_cheaper_than_cross_node(self):
        def main(ctx):
            me = ctx.rank()
            t0 = ctx.now
            if me == 0:
                yield from ctx.send(0, dest=1)   # same node (ipn=2)
                yield from ctx.send(0, dest=2)   # different node
                return None
            elif me == 1:
                yield from ctx.recv(0)
                return ctx.now - t0
            elif me == 2:
                yield from ctx.recv(0)
                return ctx.now - t0
            return None

        r = run(main, ranks=4, ipn=2)
        assert r.results[1] < r.results[2]


class TestCommunicators:
    def test_split_by_parity(self):
        def main(ctx):
            me = ctx.rank()
            sub = yield from ctx.split(color=me % 2, key=me)
            return (ctx.rank(sub), ctx.size(sub))

        results = run(main, ranks=6).results
        assert results == [(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]

    def test_split_key_reorders_ranks(self):
        def main(ctx):
            me = ctx.rank()
            sub = yield from ctx.split(color=0, key=-me)
            return ctx.rank(sub)

        assert run(main, ranks=4).results == [3, 2, 1, 0]

    def test_sub_communicator_isolated_from_world(self):
        def main(ctx):
            me = ctx.rank()
            sub = yield from ctx.split(color=me % 2, key=me)
            total = yield from ctx.allreduce(1, comm=sub)
            world_total = yield from ctx.allreduce(1)
            return (total, world_total)

        results = run(main, ranks=6).results
        assert all(r == (3, 6) for r in results)


class TestCollectives:
    @pytest.mark.parametrize("tuning", MPI_TUNINGS)
    def test_barrier_holds_everyone(self, tuning):
        def main(ctx):
            if ctx.rank() == 0:
                from repro.sim import Timeout
                yield Timeout(1e-3)
            arrive = ctx.now
            yield from ctx.barrier()
            return (arrive, ctx.now)

        results = run(main, ranks=8, ipn=4, tuning=tuning).results
        last = max(a for a, _ in results)
        assert all(t >= last for _, t in results)

    @pytest.mark.parametrize("tuning", MPI_TUNINGS)
    @pytest.mark.parametrize("ranks", [1, 2, 5, 8])
    def test_allreduce_sum(self, tuning, ranks):
        def main(ctx):
            return (yield from ctx.allreduce(ctx.rank() + 1))

        results = run(main, ranks=ranks, tuning=tuning).results
        assert all(r == ranks * (ranks + 1) // 2 for r in results)

    @pytest.mark.parametrize("tuning", MPI_TUNINGS)
    def test_allreduce_custom_op(self, tuning):
        def main(ctx):
            out = yield from ctx.allreduce(
                ctx.rank() + 1, op=lambda a, b: max(a, b)
            )
            return out

        assert all(r == 6 for r in run(main, ranks=6, tuning=tuning).results)

    @pytest.mark.parametrize("tuning", MPI_TUNINGS)
    @pytest.mark.parametrize("root", [0, 3])
    def test_bcast_from_any_root(self, tuning, root):
        def main(ctx):
            value = f"r{ctx.rank()}" if ctx.rank() == root else None
            return (yield from ctx.bcast(value, root=root))

        results = run(main, ranks=6, ipn=4, tuning=tuning).results
        assert results == [f"r{root}"] * 6

    @pytest.mark.parametrize("tuning", MPI_TUNINGS)
    def test_bcast_array(self, tuning):
        def main(ctx):
            value = np.arange(10) if ctx.rank() == 0 else None
            out = yield from ctx.bcast(value, root=0)
            return (out == np.arange(10)).all()

        assert all(run(main, ranks=5, tuning=tuning).results)

    def test_hierarchical_barrier_beats_tree_with_colocated_ranks(self):
        def body(ctx):
            yield from ctx.barrier()
            t0 = ctx.now
            for _ in range(5):
                yield from ctx.barrier()
            return ctx.now - t0

        t_tree = max(run(body, ranks=16, ipn=8, tuning="openmpi").results)
        t_hier = max(run(body, ranks=16, ipn=8, tuning="openmpi-hierarch").results)
        assert t_hier < t_tree

    def test_unknown_tuning_rejected(self):
        with pytest.raises(ValueError, match="tuning"):
            run(lambda ctx: iter(()), ranks=2, tuning="magic")
