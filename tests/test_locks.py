"""Tests for F2008 lock variables: mutual exclusion, error conditions,
fairness under contention."""

import pytest

from repro.sim import ProcessFailure
from tests.conftest import run_small


class TestMutualExclusion:
    def test_protected_read_modify_write_is_exact(self):
        """Without the lock, concurrent get+put would lose updates; with
        it, n images each add 1 and the final count is exactly n."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            counter = yield from ctx.allocate("c", (1,))
            yield from ctx.lock(lock, 1)
            value = yield from ctx.get(counter, 1)
            yield from ctx.compute(seconds=1e-6)  # widen the race window
            yield from ctx.put(counter, 1, float(value[0]) + 1, index=0)
            yield from ctx.unlock(lock, 1)
            yield from ctx.sync_all()
            return float(ctx.local(counter)[0]) if ctx.this_image() == 1 else None

        result = run_small(main, images=8, ipn=4)
        assert result.results[0] == 8.0

    def test_unprotected_rmw_actually_loses_updates(self):
        """Sanity: the race the lock prevents is real in this model."""

        def main(ctx):
            counter = yield from ctx.allocate("c", (1,))
            yield from ctx.sync_all()
            value = yield from ctx.get(counter, 1)
            yield from ctx.put(counter, 1, float(value[0]) + 1, index=0)
            yield from ctx.sync_all()
            return float(ctx.local(counter)[0]) if ctx.this_image() == 1 else None

        result = run_small(main, images=8, ipn=4)
        assert result.results[0] < 8.0

    def test_critical_sections_never_overlap(self):
        """Record (enter, exit) windows; no two may intersect."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.lock(lock, 1)
            enter = ctx.now
            yield from ctx.compute(seconds=2e-6)
            exit_ = ctx.now
            yield from ctx.unlock(lock, 1)
            return (enter, exit_)

        result = run_small(main, images=6, ipn=3)
        windows = sorted(result.results)
        for (_, exit_a), (enter_b, _) in zip(windows, windows[1:]):
            assert enter_b >= exit_a

    def test_all_images_eventually_acquire(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            for _ in range(3):
                yield from ctx.lock(lock, 2)
                yield from ctx.unlock(lock, 2)
            return True

        assert all(run_small(main, images=6, ipn=3).results)

    def test_locks_on_different_images_are_independent(self):
        """Two lock homes: holders of different homes overlap freely."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            me = ctx.this_image()
            home = 1 if me <= 2 else 2
            yield from ctx.lock(lock, home)
            enter = ctx.now
            yield from ctx.compute(seconds=5e-6)
            yield from ctx.unlock(lock, home)
            return (home, enter)

        result = run_small(main, images=4, ipn=2)
        # at least one pair with different homes overlapped in time
        by_home = {}
        for home, enter in result.results:
            by_home.setdefault(home, []).append(enter)
        assert min(by_home[2]) < max(by_home[1]) + 5e-6


class TestErrorConditions:
    def test_relock_while_holding_rejected(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.lock(lock, 1)
            yield from ctx.lock(lock, 1)

        with pytest.raises(ProcessFailure, match="STAT_LOCKED"):
            run_small(main, images=1, ipn=1)

    def test_unlock_without_holding_rejected(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.unlock(lock, 1)

        with pytest.raises(ProcessFailure, match="STAT_UNLOCKED"):
            run_small(main, images=1, ipn=1)

    def test_holder_query(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            me = ctx.this_image()
            if me == 2:
                yield from ctx.lock(lock, 1)
                holder_while_held = lock.holder(0)
                yield from ctx.unlock(lock, 1)
                yield from ctx.sync_images([1])
                return holder_while_held
            yield from ctx.sync_images([2])
            return lock.holder(0)

        result = run_small(main, images=2)
        assert result.results[1] == 1   # proc 1 == image 2 held it
        assert result.results[0] == -1  # free afterwards
