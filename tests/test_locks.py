"""Tests for F2008 lock variables: mutual exclusion, error conditions,
fairness under contention, and the F2018 ``stat=`` conditions
(``STAT_LOCKED``, ``STAT_UNLOCKED_FAILED_IMAGE``)."""

import re
import textwrap

import pytest

from repro.faults import (
    STAT_LOCKED,
    STAT_OK,
    STAT_UNLOCKED_FAILED_IMAGE,
    FaultSchedule,
    ImageFailure,
    Stat,
)
from repro.sim import ProcessFailure
from repro.sim.errors import DeadlockError
from repro.verify import explain_deadlock
from tests.conftest import run_small

pytestmark = pytest.mark.image_control

FAIL_3_AT_20US = FaultSchedule(failures=(ImageFailure(3, 20e-6),))


class TestMutualExclusion:
    def test_protected_read_modify_write_is_exact(self):
        """Without the lock, concurrent get+put would lose updates; with
        it, n images each add 1 and the final count is exactly n."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            counter = yield from ctx.allocate("c", (1,))
            yield from ctx.lock(lock, 1)
            value = yield from ctx.get(counter, 1)
            yield from ctx.compute(seconds=1e-6)  # widen the race window
            yield from ctx.put(counter, 1, float(value[0]) + 1, index=0)
            yield from ctx.unlock(lock, 1)
            yield from ctx.sync_all()
            return float(ctx.local(counter)[0]) if ctx.this_image() == 1 else None

        result = run_small(main, images=8, ipn=4)
        assert result.results[0] == 8.0

    def test_unprotected_rmw_actually_loses_updates(self):
        """Sanity: the race the lock prevents is real in this model."""

        def main(ctx):
            counter = yield from ctx.allocate("c", (1,))
            yield from ctx.sync_all()
            value = yield from ctx.get(counter, 1)
            yield from ctx.put(counter, 1, float(value[0]) + 1, index=0)
            yield from ctx.sync_all()
            return float(ctx.local(counter)[0]) if ctx.this_image() == 1 else None

        result = run_small(main, images=8, ipn=4)
        assert result.results[0] < 8.0

    def test_critical_sections_never_overlap(self):
        """Record (enter, exit) windows; no two may intersect."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.lock(lock, 1)
            enter = ctx.now
            yield from ctx.compute(seconds=2e-6)
            exit_ = ctx.now
            yield from ctx.unlock(lock, 1)
            return (enter, exit_)

        result = run_small(main, images=6, ipn=3)
        windows = sorted(result.results)
        for (_, exit_a), (enter_b, _) in zip(windows, windows[1:]):
            assert enter_b >= exit_a

    def test_all_images_eventually_acquire(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            for _ in range(3):
                yield from ctx.lock(lock, 2)
                yield from ctx.unlock(lock, 2)
            return True

        assert all(run_small(main, images=6, ipn=3).results)

    def test_locks_on_different_images_are_independent(self):
        """Two lock homes: holders of different homes overlap freely."""

        def main(ctx):
            lock = yield from ctx.lock_var("L")
            me = ctx.this_image()
            home = 1 if me <= 2 else 2
            yield from ctx.lock(lock, home)
            enter = ctx.now
            yield from ctx.compute(seconds=5e-6)
            yield from ctx.unlock(lock, home)
            return (home, enter)

        result = run_small(main, images=4, ipn=2)
        # at least one pair with different homes overlapped in time
        by_home = {}
        for home, enter in result.results:
            by_home.setdefault(home, []).append(enter)
        assert min(by_home[2]) < max(by_home[1]) + 5e-6


class TestErrorConditions:
    def test_relock_while_holding_rejected(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.lock(lock, 1)
            yield from ctx.lock(lock, 1)

        with pytest.raises(ProcessFailure, match="STAT_LOCKED"):
            run_small(main, images=1, ipn=1)

    def test_unlock_without_holding_rejected(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            yield from ctx.unlock(lock, 1)

        with pytest.raises(ProcessFailure, match="STAT_UNLOCKED"):
            run_small(main, images=1, ipn=1)

    def test_holder_query(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            me = ctx.this_image()
            if me == 2:
                yield from ctx.lock(lock, 1)
                holder_while_held = lock.holder(0)
                yield from ctx.unlock(lock, 1)
                yield from ctx.sync_images([1])
                return holder_while_held
            yield from ctx.sync_images([2])
            return lock.holder(0)

        result = run_small(main, images=2)
        assert result.results[1] == 1   # proc 1 == image 2 held it
        assert result.results[0] == -1  # free afterwards


class TestStatConditions:
    def test_nonblocking_contended_acquire_reports_stat_locked(self):
        """The ``ACQUIRED_LOCK=`` form: a contended acquire returns
        False immediately — ``stat`` gets ``STAT_LOCKED`` when supplied,
        and stays silent otherwise."""
        def main(ctx):
            me = ctx.this_image()
            lock = yield from ctx.lock_var("L")
            if me == 1:
                yield from ctx.lock(lock, 1)
                yield from ctx.sync_images([2])   # held: let 2 probe
                yield from ctx.sync_images([2])   # 2 done probing
                yield from ctx.unlock(lock, 1)
                return None
            yield from ctx.sync_images([1])
            st = Stat()
            with_stat = yield from ctx.lock(lock, 1, blocking=False, stat=st)
            silent = yield from ctx.lock(lock, 1, blocking=False)
            yield from ctx.sync_images([1])
            # after the holder releases, the blocking form goes through
            acquired = yield from ctx.lock(lock, 1)
            yield from ctx.unlock(lock, 1)
            return (with_stat, st.code, silent, acquired)

        result = run_small(main, images=2)
        assert result.results[1] == (False, STAT_LOCKED, False, True)

    def test_nonblocking_uncontended_acquire_succeeds_with_stat_ok(self):
        def main(ctx):
            lock = yield from ctx.lock_var("L")
            st = Stat()
            acquired = yield from ctx.lock(lock, 1, blocking=False, stat=st)
            yield from ctx.unlock(lock, 1)
            return (acquired, st.code)

        result = run_small(main, images=1, ipn=1)
        assert result.results == [(True, STAT_OK)]

    def test_holder_failstop_reports_stat_unlocked_failed_image(self):
        """The holder fail-stops mid-section: the next acquire succeeds
        but carries ``STAT_UNLOCKED_FAILED_IMAGE`` and names the dead
        holder, since the protected state may be torn."""
        def main(ctx):
            me = ctx.this_image()
            lock = yield from ctx.lock_var("L")
            if me == 3:
                yield from ctx.lock(lock, 2)
                yield from ctx.compute(seconds=30e-6)  # killed at 20us
                yield from ctx.unlock(lock, 2)
                return None
            if me == 2:
                yield from ctx.compute(seconds=25e-6)
                st = Stat()
                acquired = yield from ctx.lock(lock, 2, stat=st)
                yield from ctx.unlock(lock, 2)
                return (acquired, st.code, tuple(st.failed_indices))
            yield from ctx.compute(seconds=40e-6)
            return None

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[1] == (
            True, STAT_UNLOCKED_FAILED_IMAGE, (3,))

    def test_holder_failstop_without_stat_is_error_termination(self):
        def main(ctx):
            me = ctx.this_image()
            lock = yield from ctx.lock_var("L")
            if me == 3:
                yield from ctx.lock(lock, 2)
                yield from ctx.compute(seconds=30e-6)
                yield from ctx.unlock(lock, 2)
                return None
            if me == 2:
                yield from ctx.compute(seconds=25e-6)
                yield from ctx.lock(lock, 2)
                yield from ctx.unlock(lock, 2)
                return None
            yield from ctx.compute(seconds=40e-6)
            return None

        with pytest.raises(ProcessFailure,
                           match="STAT_UNLOCKED_FAILED_IMAGE"):
            run_small(main, images=4, faults=FAIL_3_AT_20US)


class TestDeadlockReport:
    def test_two_lock_cycle_pinned_report(self):
        """Classic lock-order inversion: image1 takes A then wants B,
        image2 takes B then wants A.  The wait-for analysis must name
        the locks, their holders, and the 2-cycle."""
        def main(ctx):
            me = ctx.this_image()
            lock_a = yield from ctx.lock_var("A")
            lock_b = yield from ctx.lock_var("B")
            if me == 1:
                yield from ctx.lock(lock_a, 1)
                yield from ctx.sync_all()
                yield from ctx.lock(lock_b, 2)
            else:
                yield from ctx.lock(lock_b, 2)
                yield from ctx.sync_all()
                yield from ctx.lock(lock_a, 1)
            return None

        with pytest.raises(DeadlockError) as excinfo:
            run_small(main, images=2)
        text = re.sub(r"\bt\d+\.", "tN.", explain_deadlock(excinfo.value))
        expected = textwrap.dedent("""\
            deadlock wait-for analysis: 2 image(s) blocked, 0 image(s) exited without notifying a waiter
            blocked:
              image1 waits on cell 'tN.B.lock[1]' [lock 'B', home image2] value=2; expected notifiers: image2
              image2 waits on cell 'tN.A.lock[0]' [lock 'A', home image1] value=1; expected notifiers: image1
            potential wait-for cycle: image1 -> image2 -> image1""")
        assert text == expected
