"""Barrier tests: semantic correctness (no image escapes early), message
count analytics (n·log n vs 2(n−1)), variant behaviour, and TDLB's
flat-hierarchy degeneration."""

import math

import pytest

from repro.collectives import NOTIFY_NBYTES
from repro.runtime.config import (
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)
from tests.conftest import run_small

ALL_BARRIERS = [
    "dissemination",
    "dissemination-mcs",
    "dissemination-twowait",
    "linear",
    "tdlb",
]


def barrier_config(name, base=UHCAF_2LEVEL):
    return base.with_(barrier=name)


class TestSemantics:
    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_no_image_leaves_before_last_arrives(self, name):
        """Image 1 arrives late; every exit time must be >= its arrival."""

        def main(ctx):
            if ctx.this_image() == 1:
                yield from ctx.compute(seconds=1e-3)
            arrive = ctx.now
            yield from ctx.sync_all()
            return (arrive, ctx.now)

        result = run_small(main, images=8, ipn=4, config=barrier_config(name))
        last_arrival = max(a for a, _ in result.results)
        assert all(exit_ >= last_arrival for _, exit_ in result.results)

    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_repeated_barriers_stay_correct(self, name):
        """The sync_flags carry must hold across many invocations."""

        def main(ctx):
            exits = []
            for i in range(5):
                if ctx.this_image() == (i % ctx.num_images()) + 1:
                    yield from ctx.compute(seconds=1e-4)
                yield from ctx.sync_all()
                exits.append(ctx.now)
            return exits

        result = run_small(main, images=6, ipn=3, config=barrier_config(name))
        # After each round, all images agree the barrier completed after
        # the straggler's arrival; exit times are non-decreasing rounds.
        for img in result.results:
            assert img == sorted(img)

    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_barrier_on_subteam_does_not_touch_outsiders(self, name):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            if ctx.team_id() == 1:
                yield from ctx.sync_all()
                yield from ctx.sync_all()
            else:
                yield from ctx.sync_all()
            yield from ctx.end_team()
            return True

        assert all(
            run_small(main, images=4, config=barrier_config(name)).results
        )

    def test_single_image_barrier_is_noop(self):
        def main(ctx):
            t0 = ctx.now
            yield from ctx.sync_all()
            return ctx.now - t0

        result = run_small(main, images=1, ipn=1)
        assert result.results[0] == 0.0

    def test_mixed_variants_on_same_team_do_not_alias(self):
        """Running different barrier algorithms on one team must keep
        their flag namespaces separate (variant-keyed sync_flags)."""
        from repro.collectives import (
            barrier_dissemination,
            barrier_linear,
            barrier_tdlb,
        )

        def main(ctx):
            view = ctx.current_team
            for _ in range(2):
                yield from barrier_dissemination(ctx, view)
                yield from barrier_tdlb(ctx, view)
                yield from barrier_linear(ctx, view)
            return True

        assert all(run_small(main, images=6, ipn=3).results)


class TestMessageCounts:
    def _traffic(self, name, images, ipn, config=UHCAF_1LEVEL):
        """Whole-run traffic of a program that executes exactly one
        barrier — counting at the end avoids racing in-flight releases."""

        def main(ctx):
            yield from ctx.sync_all()

        result = run_small(
            main, images=images, ipn=ipn, config=config.with_(barrier=name)
        )
        return result.traffic

    def test_dissemination_sends_n_log_n(self):
        n = 8
        t = self._traffic("dissemination", images=n, ipn=4)
        expected = n * math.ceil(math.log2(n))
        assert t.total_messages == expected

    def test_dissemination_non_power_of_two(self):
        n = 6
        t = self._traffic("dissemination", images=n, ipn=3)
        assert t.total_messages == n * math.ceil(math.log2(n))

    def test_linear_sends_2n_minus_2(self):
        n = 8
        t = self._traffic("linear", images=n, ipn=4)
        assert t.total_messages == 2 * (n - 1)

    def test_tdlb_message_count(self):
        """TDLB: 2(ipn−1) per node intra + leaders·⌈log2 nodes⌉ inter."""
        images, ipn = 16, 8
        nodes = 2
        t = self._traffic("tdlb", images=images, ipn=ipn, config=UHCAF_2LEVEL)
        intra_expected = nodes * 2 * (ipn - 1)
        inter_expected = nodes * math.ceil(math.log2(nodes))
        assert t.intra_messages == intra_expected
        assert t.inter_messages == inter_expected

    def test_tdlb_inter_node_traffic_beats_dissemination(self):
        images, ipn = 16, 8
        t_diss = self._traffic("dissemination", images=images, ipn=ipn)
        t_tdlb = self._traffic("tdlb", images=images, ipn=ipn, config=UHCAF_2LEVEL)
        assert t_tdlb.inter_messages < t_diss.inter_messages

    def test_notification_payload_is_one_word(self):
        n = 4
        t = self._traffic("linear", images=n, ipn=2)
        assert t.inter_bytes + t.intra_bytes == t.total_messages * NOTIFY_NBYTES


class TestShape:
    def test_tdlb_equals_dissemination_on_flat_hierarchy(self):
        """Paper §V-A claim (1): with one image per node TDLB degenerates
        to the leader dissemination — identical time."""

        def bench(config):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(5):
                    yield from ctx.sync_all()
                return ctx.now - t0

            return max(run_small(main, images=8, ipn=1, config=config).results)

        t_tdlb = bench(UHCAF_2LEVEL)
        t_diss = bench(UHCAF_1LEVEL)
        assert t_tdlb == pytest.approx(t_diss, rel=1e-9)

    def test_tdlb_beats_dissemination_with_colocated_images(self):
        def bench(config):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(5):
                    yield from ctx.sync_all()
                return ctx.now - t0

            return max(run_small(main, images=16, ipn=8, config=config).results)

        assert bench(UHCAF_1LEVEL) > 5 * bench(UHCAF_2LEVEL)

    def test_two_wait_variant_costs_more_than_one_wait(self):
        def bench(name):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(5):
                    yield from ctx.sync_all()
                return ctx.now - t0

            cfg = GASNET_IB_DISSEMINATION.with_(barrier=name)
            return max(run_small(main, images=8, ipn=4, config=cfg).results)

        one = bench("dissemination")
        mcs = bench("dissemination-mcs")
        two = bench("dissemination-twowait")
        assert one < mcs < two

    def test_linear_beats_dissemination_on_one_node(self):
        """§IV-A's analysis: inside one shared-memory node the linear
        barrier's 2(n−1) serialized notifications beat dissemination's
        n·log n."""

        def bench(name):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(5):
                    yield from ctx.sync_all()
                return ctx.now - t0

            cfg = UHCAF_1LEVEL.with_(barrier=name)
            return max(run_small(main, images=8, ipn=8, config=cfg).results)

        assert bench("linear") < bench("dissemination")

    def test_dissemination_beats_linear_across_nodes(self):
        """...and the reverse across nodes (the log n vs 2(n−1) steps)."""

        def bench(name):
            def main(ctx):
                yield from ctx.sync_all()
                t0 = ctx.now
                for _ in range(5):
                    yield from ctx.sync_all()
                return ctx.now - t0

            cfg = GASNET_IB_DISSEMINATION.with_(barrier=name)
            return max(run_small(main, images=32, ipn=1, config=cfg).results)

        assert bench("dissemination") < bench("linear")
