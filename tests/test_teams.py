"""Tests for team formation, change/end team, nesting, and intrinsics."""

import pytest

from repro.sim import ProcessFailure
from repro.teams.formation import _partition
from repro.teams.intrinsics import (
    get_team,
    image_index,
    num_images,
    team_id,
    this_image,
)
from tests.conftest import run_small


class TestPartition:
    def test_groups_by_number(self):
        records = [(1, 10, None), (2, 20, None), (3, 10, None)]
        assert _partition(records) == {10: [1, 3], 20: [2]}

    def test_default_order_is_parent_index(self):
        records = [(3, 1, None), (1, 1, None), (2, 1, None)]
        assert _partition(records) == {1: [1, 2, 3]}

    def test_new_index_orders_members(self):
        records = [(1, 1, 2), (2, 1, 1)]
        assert _partition(records) == {1: [2, 1]}

    def test_mixed_new_index_rejected(self):
        with pytest.raises(ValueError, match="all or none"):
            _partition([(1, 1, 1), (2, 1, None)])

    def test_new_index_must_be_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            _partition([(1, 1, 1), (2, 1, 3)])

    def test_duplicate_new_index_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            _partition([(1, 1, 1), (2, 1, 1)])


class TestFormTeam:
    def test_split_into_halves(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            return (team.team_number, team.size, team.index)

        result = run_small(main, images=4)
        assert result.results == [(1, 2, 1), (1, 2, 2), (2, 2, 1), (2, 2, 2)]

    def test_new_index_respected(self):
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            # reverse the order within the single new team
            team = yield from ctx.form_team(1, new_index=n - me + 1)
            return team.index

        assert run_small(main, images=4).results == [4, 3, 2, 1]

    def test_singleton_teams(self):
        def main(ctx):
            team = yield from ctx.form_team(ctx.this_image())
            return (team.size, team.index)

        assert run_small(main, images=3).results == [(1, 1)] * 3

    def test_negative_team_number_rejected(self):
        def main(ctx):
            yield from ctx.form_team(-2)

        with pytest.raises(ProcessFailure, match="team_number"):
            run_small(main, images=2)

    def test_members_share_one_team_shared(self):
        def main(ctx):
            team = yield from ctx.form_team(1)
            return id(team.shared)

        assert len(set(run_small(main, images=4).results)) == 1

    def test_different_numbers_get_distinct_shareds(self):
        def main(ctx):
            team = yield from ctx.form_team(ctx.this_image() % 2 + 1)
            return (team.team_number, id(team.shared))

        result = run_small(main, images=4).results
        ids = {num: sid for num, sid in result}
        assert len(ids) == 2

    def test_formation_costs_time(self):
        def main(ctx):
            t0 = ctx.now
            yield from ctx.form_team(1)
            return ctx.now - t0

        assert all(t > 0 for t in run_small(main, images=4).results)

    def test_successive_formations_are_independent(self):
        def main(ctx):
            me = ctx.this_image()
            rows = yield from ctx.form_team(1 if me <= 2 else 2)
            cols = yield from ctx.form_team(1 if me % 2 else 2)
            return (rows.shared.uid != cols.shared.uid,
                    rows.size, cols.size)

        result = run_small(main, images=4)
        assert all(r[0] for r in result.results)
        assert all(r[1] == 2 and r[2] == 2 for r in result.results)


class TestChangeEndTeam:
    def test_change_team_updates_current(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            inside = (ctx.this_image(), ctx.num_images(), ctx.team_id())
            yield from ctx.end_team()
            outside = (ctx.this_image(), ctx.num_images(), ctx.team_id())
            return (inside, outside)

        result = run_small(main, images=4)
        assert result.results[2] == ((1, 2, 2), (3, 4, -1))

    def test_nested_teams(self):
        def main(ctx):
            me = ctx.this_image()
            outer = yield from ctx.form_team(1 if me <= 4 else 2)
            yield from ctx.change_team(outer)
            inner = yield from ctx.form_team(1 if ctx.this_image() <= 2 else 2)
            yield from ctx.change_team(inner)
            depth_info = (ctx.num_images(), ctx.get_team("parent").size)
            yield from ctx.end_team()
            yield from ctx.end_team()
            return depth_info

        result = run_small(main, images=8, ipn=4)
        assert all(r == (2, 4) for r in result.results)

    def test_end_team_without_change_rejected(self):
        def main(ctx):
            yield from ctx.end_team()

        with pytest.raises(ProcessFailure, match="end_team"):
            run_small(main, images=2)

    def test_change_team_not_formed_from_current_rejected(self):
        def main(ctx):
            a = yield from ctx.form_team(1)
            b = yield from ctx.form_team(1)
            yield from ctx.change_team(a)
            # b was formed from the initial team, not from a
            yield from ctx.change_team(b)

        with pytest.raises(ProcessFailure, match="not formed"):
            run_small(main, images=2)

    def test_change_team_synchronizes_members(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1)
            if me == 1:
                yield from ctx.compute(seconds=1e-3)
            yield from ctx.change_team(team)
            t = ctx.now
            yield from ctx.end_team()
            return t

        result = run_small(main, images=4)
        assert min(result.results) >= 1e-3


class TestIntrinsics:
    def test_initial_team_identity(self):
        def main(ctx):
            yield from ctx.sync_all()
            initial = ctx.get_team("initial")
            current = ctx.get_team("current")
            parent = ctx.get_team("parent")
            return (initial is current, parent is initial, ctx.team_id())

        assert run_small(main, images=2).results == [(True, True, -1)] * 2

    def test_get_team_parent_inside_subteam(self):
        def main(ctx):
            team = yield from ctx.form_team(1)
            yield from ctx.change_team(team)
            parent_size = ctx.get_team("parent").size
            yield from ctx.end_team()
            return parent_size

        assert run_small(main, images=3).results == [3, 3, 3]

    def test_unknown_level_rejected(self):
        def main(ctx):
            ctx.get_team("grandparent")
            yield from ctx.sync_all()

        with pytest.raises(ProcessFailure, match="team level"):
            run_small(main, images=1, ipn=1)

    def test_image_index_and_global_image_roundtrip(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            idx_of_first = ctx.image_index(ctx.current_team, 3)
            mine_globally = ctx.global_image()
            yield from ctx.end_team()
            return (idx_of_first, mine_globally)

        result = run_small(main, images=4)
        # initial image 3 is index 1 of team 2, not a member of team 1
        assert result.results[0] == (0, 1)
        assert result.results[2] == (1, 3)

    def test_free_function_forms_match_methods(self):
        def main(ctx):
            team = yield from ctx.form_team(1)
            yield from ctx.change_team(team)
            ok = (
                this_image(ctx) == ctx.this_image()
                and num_images(ctx) == ctx.num_images()
                and team_id(ctx) == ctx.team_id()
                and get_team(ctx) is ctx.current_team
                and image_index(ctx, ctx.current_team, 1) == 1
            )
            yield from ctx.end_team()
            return ok

        assert all(run_small(main, images=2).results)

    def test_this_image_with_explicit_team(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            # query without changing into it
            return ctx.this_image(team)

        assert run_small(main, images=4).results == [1, 2, 1, 2]
