"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_2LEVEL
from repro.runtime.program import run_spmd


def run_small(main, images=4, ipn=2, config=UHCAF_2LEVEL, **kwargs):
    """Run an SPMD program on a small cluster sized to fit."""
    nodes = max(-(-images // ipn), 1)
    return run_spmd(
        main, num_images=images, images_per_node=ipn,
        spec=paper_cluster(nodes), config=config, **kwargs,
    )


@pytest.fixture
def spmd():
    """Fixture handing tests the :func:`run_small` helper."""
    return run_small
