"""Tests for MPI non-blocking point-to-point (isend/irecv/wait/waitall)."""

import numpy as np
import pytest

from repro.baselines.mpi import run_mpi
from repro.machine import paper_cluster


def run(main, ranks=2, ipn=2):
    nodes = max(-(-ranks // ipn), 1)
    return run_mpi(main, num_ranks=ranks, images_per_node=ipn,
                   spec=paper_cluster(nodes))


class TestIsend:
    def test_basic_roundtrip(self):
        def main(ctx):
            if ctx.rank() == 0:
                req = yield from ctx.isend("payload", dest=1, tag=1)
                yield from ctx.wait(req)
                return None
            req = yield from ctx.irecv(0, tag=1)
            return (yield from ctx.wait(req))

        assert run(main).results[1] == "payload"

    def test_isend_returns_faster_than_send(self):
        def nb(ctx):
            if ctx.rank() == 0:
                t0 = ctx.now
                yield from ctx.isend(np.zeros(100_000), dest=1)
                return ctx.now - t0
            yield from ctx.recv(0)
            return None

        def blocking(ctx):
            if ctx.rank() == 0:
                t0 = ctx.now
                yield from ctx.send(np.zeros(100_000), dest=1)
                return ctx.now - t0
            yield from ctx.recv(0)
            return None

        t_nb = run(nb).results[0]
        t_b = run(blocking).results[0]
        assert t_nb < t_b

    def test_multiple_outstanding_sends_in_order(self):
        def main(ctx):
            if ctx.rank() == 0:
                reqs = []
                for i in range(6):
                    reqs.append((yield from ctx.isend(i, dest=1, tag=0)))
                yield from ctx.waitall(reqs)
                return None
            got = []
            for _ in range(6):
                got.append((yield from ctx.recv(0, tag=0)))
            return got

        assert run(main).results[1] == [0, 1, 2, 3, 4, 5]

    def test_payload_frozen_at_post(self):
        def main(ctx):
            if ctx.rank() == 0:
                buf = np.ones(4)
                req = yield from ctx.isend(buf, dest=1)
                buf[:] = -1
                yield from ctx.wait(req)
                return None
            got = yield from ctx.recv(0)
            return got.copy()

        assert (run(main).results[1] == 1).all()


class TestIrecvWaitall:
    def test_irecv_by_tag(self):
        def main(ctx):
            if ctx.rank() == 0:
                yield from ctx.send("a", dest=1, tag=1)
                yield from ctx.send("b", dest=1, tag=2)
                return None
            r2 = yield from ctx.irecv(0, tag=2)
            r1 = yield from ctx.irecv(0, tag=1)
            v2 = yield from ctx.wait(r2)
            v1 = yield from ctx.wait(r1)
            return (v1, v2)

        assert run(main).results[1] == ("a", "b")

    def test_waitall_mixed_kinds(self):
        def main(ctx):
            me = ctx.rank()
            peer = 1 - me
            sreq = yield from ctx.isend(me * 10, dest=peer, tag=7)
            rreq = yield from ctx.irecv(peer, tag=7)
            results = yield from ctx.waitall([sreq, rreq])
            return results

        out = run(main).results
        assert out[0] == [None, 10]
        assert out[1] == [None, 0]

    def test_overlap_with_compute(self):
        """isend + compute + wait beats send + compute for large payloads."""
        from repro.sim import Timeout

        def overlapped(ctx):
            if ctx.rank() == 0:
                req = yield from ctx.isend(np.zeros(200_000), dest=1)
                yield Timeout(150e-6)
                yield from ctx.wait(req)
            else:
                yield from ctx.recv(0)
            return ctx.now

        def sequential(ctx):
            if ctx.rank() == 0:
                yield from ctx.send(np.zeros(200_000), dest=1)
                yield Timeout(150e-6)
            else:
                yield from ctx.recv(0)
            return ctx.now

        assert max(run(overlapped).results) < max(run(sequential).results)
