"""Tests for the allgather collectives (flat and two-level)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from tests.conftest import run_small

ALL_GATHERS = ["linear-flat", "bruck-flat", "two-level"]


def gather_config(name, base=UHCAF_2LEVEL):
    return base.with_(allgather=name)


def run_gather(strategy, images, ipn, value_of):
    def main(ctx):
        out = yield from ctx.co_allgather(value_of(ctx.this_image()))
        return out

    return run_small(
        main, images=images, ipn=ipn, config=gather_config(strategy)
    ).results


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_ordered_by_team_index(self, strategy):
        results = run_gather(strategy, 6, 3, lambda m: m * 11)
        assert all(r == [11, 22, 33, 44, 55, 66] for r in results)

    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_array_contributions(self, strategy):
        results = run_gather(strategy, 5, 4, lambda m: np.full(3, m))
        for r in results:
            assert len(r) == 5
            for i, chunk in enumerate(r):
                assert (chunk == i + 1).all()

    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_single_image(self, strategy):
        assert run_gather(strategy, 1, 1, lambda m: "solo") == [["solo"]]

    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_non_power_of_two(self, strategy):
        results = run_gather(strategy, 11, 4, lambda m: m)
        assert all(r == list(range(1, 12)) for r in results)

    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_on_subteam(self, strategy):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            out = yield from ctx.co_allgather(me, team=team)
            return out

        results = run_small(
            main, images=4, config=gather_config(strategy)
        ).results
        assert results == [[1, 2], [1, 2], [3, 4], [3, 4]]

    @pytest.mark.parametrize("strategy", ALL_GATHERS)
    def test_repeated_gathers(self, strategy):
        def main(ctx):
            a = yield from ctx.co_allgather(ctx.this_image())
            b = yield from ctx.co_allgather(-ctx.this_image())
            return (a, b)

        results = run_small(
            main, images=5, ipn=3, config=gather_config(strategy)
        ).results
        for a, b in results:
            assert a == [1, 2, 3, 4, 5]
            assert b == [-1, -2, -3, -4, -5]

    @given(
        strategy=st.sampled_from(ALL_GATHERS),
        n=st.integers(min_value=1, max_value=12),
        ipn=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_shape(self, strategy, n, ipn):
        results = run_gather(strategy, n, ipn, lambda m: m * m)
        expected = [m * m for m in range(1, n + 1)]
        assert all(r == expected for r in results)


class TestShape:
    def _bench(self, config, images=16, ipn=8):
        def main(ctx):
            yield from ctx.co_allgather(float(ctx.this_image()))
            t0 = ctx.now
            for _ in range(3):
                yield from ctx.co_allgather(float(ctx.this_image()))
            return ctx.now - t0

        return max(run_small(main, images=images, ipn=ipn, config=config).results)

    def test_two_level_beats_flat_with_colocated_images(self):
        t2 = self._bench(UHCAF_2LEVEL)
        t1 = self._bench(UHCAF_1LEVEL)
        tb = self._bench(UHCAF_2LEVEL.with_(allgather="bruck-flat",
                                            hierarchy_aware=False))
        # two-level wins big over both flat variants; the flat variants'
        # relative order is shape-dependent (both drown in loopback)
        assert t2 * 5 < min(tb, t1)

    def test_two_level_moves_each_datum_once_per_node(self):
        def main(ctx):
            yield from ctx.co_allgather(float(ctx.this_image()))

        two = run_small(main, images=16, ipn=8, config=UHCAF_2LEVEL).traffic
        flat = run_small(
            main, images=16, ipn=8,
            config=UHCAF_2LEVEL.with_(allgather="bruck-flat"),
        ).traffic
        assert two.inter_messages < flat.inter_messages
