"""Broadcast tests: every strategy delivers the source's payload to every
member, on any team shape, from any source."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.sim import ProcessFailure
from tests.conftest import run_small

ALL_BCASTS = ["linear-flat", "binomial-flat", "two-level"]


def bcast_config(name, base=UHCAF_2LEVEL):
    return base.with_(broadcast=name)


def run_bcast(strategy, images, ipn, source, payload_of):
    def main(ctx):
        me = ctx.this_image()
        value = payload_of(me) if me == source else None
        out = yield from ctx.co_broadcast(value, source_image=source)
        return out

    return run_small(
        main, images=images, ipn=ipn, config=bcast_config(strategy)
    ).results


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_everyone_gets_source_scalar(self, strategy):
        results = run_bcast(strategy, 6, 3, source=2, payload_of=lambda m: m * 100)
        assert results == [200] * 6

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_everyone_gets_source_array(self, strategy):
        results = run_bcast(
            strategy, 7, 4, source=5,
            payload_of=lambda m: np.arange(8) + m,
        )
        for r in results:
            assert (r == np.arange(8) + 5).all()

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    @pytest.mark.parametrize("source", [1, 2, 8])
    def test_any_source(self, strategy, source):
        results = run_bcast(strategy, 8, 4, source=source,
                            payload_of=lambda m: m)
        assert results == [source] * 8

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_source_on_non_leader_core(self, strategy):
        """Two-level must handle a source that is not its node's leader."""
        results = run_bcast(strategy, 16, 8, source=6, payload_of=lambda m: m)
        assert results == [6] * 16

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_single_image(self, strategy):
        results = run_bcast(strategy, 1, 1, source=1, payload_of=lambda m: "x")
        assert results == ["x"]

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_payload_is_snapshot(self, strategy):
        """Source mutating its buffer after the call must not alter what
        receivers observe."""

        def main(ctx):
            me = ctx.this_image()
            buf = np.full(4, float(me))
            out = yield from ctx.co_broadcast(buf, source_image=1)
            if me == 1:
                buf[:] = -1
            yield from ctx.sync_all()
            return out.copy()

        results = run_small(main, images=4, config=bcast_config(strategy)).results
        for r in results:
            assert (r == 1.0).all()

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_repeated_broadcasts_in_order(self, strategy):
        def main(ctx):
            outs = []
            for k in range(3):
                out = yield from ctx.co_broadcast(
                    (k + 1) * 10 if ctx.this_image() == 1 else None,
                    source_image=1,
                )
                outs.append(out)
            return outs

        results = run_small(main, images=6, ipn=3,
                            config=bcast_config(strategy)).results
        assert all(r == [10, 20, 30] for r in results)

    @pytest.mark.parametrize("strategy", ALL_BCASTS)
    def test_on_subteam_with_team_argument(self, strategy):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            out = yield from ctx.co_broadcast(
                me if ctx.this_image(team) == 1 else None,
                source_image=1, team=team,
            )
            return out

        results = run_small(main, images=4, config=bcast_config(strategy)).results
        assert results == [1, 1, 3, 3]

    def test_invalid_source_rejected(self):
        def main(ctx):
            yield from ctx.co_broadcast(1, source_image=99)

        with pytest.raises(ProcessFailure, match="source_image"):
            run_small(main, images=2)

    @given(
        strategy=st.sampled_from(ALL_BCASTS),
        n=st.integers(min_value=1, max_value=12),
        ipn=st.integers(min_value=1, max_value=8),
        source_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_shape_any_source(self, strategy, n, ipn, source_seed):
        source = source_seed % n + 1
        results = run_bcast(strategy, n, ipn, source=source,
                            payload_of=lambda m: m * 7)
        assert results == [source * 7] * n


class TestShape:
    def _bench(self, config, images=16, ipn=8, nelems=1):
        def main(ctx):
            v = np.zeros(nelems)
            yield from ctx.co_broadcast(v, source_image=1)
            t0 = ctx.now
            for _ in range(4):
                yield from ctx.co_broadcast(v, source_image=1)
            return ctx.now - t0

        return max(run_small(main, images=images, ipn=ipn, config=config).results)

    def test_two_level_beats_flat_binomial_with_colocated_images(self):
        t2 = self._bench(UHCAF_2LEVEL)
        t1 = self._bench(UHCAF_1LEVEL)
        assert t1 > 1.5 * t2

    def test_flat_parity_on_one_image_per_node(self):
        """With nothing intra-node to exploit, two-level ≈ flat binomial
        (identical tree over leaders)."""
        t2 = self._bench(UHCAF_2LEVEL, images=8, ipn=1)
        t1 = self._bench(UHCAF_1LEVEL, images=8, ipn=1)
        assert t2 == pytest.approx(t1, rel=0.05)
