"""Conformance matrix as a marked pytest suite.

Runs the ``--quick`` subset of the matrix (fast shapes, one payload per
kind, 2 fuzz seeds) — one parametrized test per case, so a failure names
the exact algorithm/shape/payload.  The full sweep (all shapes including
the paper's 11×8 platform, both payloads, 20 seeds) is the CLI:
``python -m repro.verify --seeds 20``.

Marked ``conformance``; deselect with ``-m 'not conformance'``.
"""

import pytest

from repro.verify import SHAPES, Case, build_matrix, run_case
from repro.verify.conformance import KINDS, PAYLOADS

pytestmark = pytest.mark.conformance

_QUICK = build_matrix(quick=True)


def test_matrix_covers_every_registered_algorithm():
    swept = {(c.kind, c.alg) for c in build_matrix()}
    registered = {(kind, alg) for kind, table in KINDS.items() for alg in table}
    assert swept == registered


def test_matrix_covers_every_shape_and_payload():
    full = build_matrix()
    assert {c.shape for c in full} == set(SHAPES)
    for kind, payloads in PAYLOADS.items():
        assert {c.payload for c in full if c.kind == kind} == set(payloads)


@pytest.mark.parametrize("case", _QUICK, ids=[c.label for c in _QUICK])
def test_quick_case(case):
    result = run_case(case, seeds=2)
    assert result.ok, f"{case.label}:\n{result.detail}"


@pytest.mark.slow
@pytest.mark.parametrize("shape", ["7img", "24img"])
def test_non_power_of_two_shapes_full_kinds(shape):
    # The odd shapes excluded from the quick set, one flagship
    # algorithm per kind.
    flagship = {"barrier": "tdlb", "reduce": "two-level",
                "broadcast": "two-level", "allgather": "two-level",
                "alltoall": "two-level"}
    for kind, alg in flagship.items():
        case = Case(kind, alg, shape, PAYLOADS[kind][-1])
        result = run_case(case, seeds=2)
        assert result.ok, f"{case.label}:\n{result.detail}"
