"""Fail-stop fault injection and the ``failed images`` semantics.

The runtime's promise (docs/faults.md): under a deterministic
:class:`~repro.faults.FaultSchedule`, killed images fail-stop silently,
survivors observe ``STAT_FAILED_IMAGE`` at their next synchronization
(via ``stat=``, or as error termination without one), and a null
schedule leaves the run byte-identical to the fault-free runtime.
"""

import re

import pytest

from repro.faults import (
    FAILED,
    STAT_FAILED_IMAGE,
    STAT_OK,
    STAT_STOPPED_IMAGE,
    FailedImageError,
    FaultSchedule,
    ImageFailure,
    Stat,
    parse_schedule,
)
from repro.sim import Cell, DeadlockError, Engine, Process, ProcessFailure, WaitFor
from repro.verify.deadlock import analyze_deadlock
from tests.conftest import run_small

FAIL_3_AT_20US = FaultSchedule(failures=(ImageFailure(3, 20e-6),))


def _norm_trace(trace):
    """Trace rows with team uids normalized: the uid counter is process-
    global, so two runs in one process differ only in that cosmetic."""
    return [(t, img, op, re.sub(r"team\d+", "teamX", detail))
            for (t, img, op, detail) in trace]


def _sync_rounds(ctx, rounds=10):
    """Stat-aware barrier loop; returns rounds completed + observation."""
    done = 0
    for _ in range(rounds):
        st = Stat()
        yield from ctx.sync_all(stat=st)
        if not st.ok:
            return ("stat", st.code, tuple(st.failed_indices), done)
        done += 1
        yield from ctx.compute(seconds=5e-6)
    return ("ok", done)


# ----------------------------------------------------------------------
class TestScheduleParsing:
    def test_parse_full_clause_set(self):
        sched = parse_schedule("fail:3@50e-6,fail:7@80e-6,drop:0.1,seed:42")
        assert [(f.image, f.time) for f in sched.failures] == [
            (3, 50e-6), (7, 80e-6)]
        assert sched.drop_rate == 0.1
        assert sched.seed == 42
        assert not sched.is_null

    def test_parse_empty_is_null(self):
        assert parse_schedule("").is_null

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad fault-schedule clause"):
            parse_schedule("explode:now")
        with pytest.raises(ValueError, match="bad fault-schedule clause"):
            parse_schedule("fail:three@nine")

    def test_failures_sorted_by_time(self):
        sched = FaultSchedule(failures=(
            ImageFailure(1, 9e-6), ImageFailure(2, 3e-6)))
        assert [f.image for f in sched.failures] == [2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageFailure(0, 1e-6)
        with pytest.raises(ValueError):
            ImageFailure(1, -1.0)
        with pytest.raises(ValueError):
            FaultSchedule(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultSchedule(max_retransmits=-1)

    def test_schedule_beyond_image_count_rejected(self):
        def main(ctx):
            yield from ctx.sync_all()

        with pytest.raises(ValueError, match="only 2 images"):
            run_small(main, images=2,
                      faults=FaultSchedule(failures=(ImageFailure(9, 1e-6),)))


# ----------------------------------------------------------------------
class TestFailStop:
    def test_survivors_observe_via_stat(self):
        result = run_small(_sync_rounds, images=4, faults=FAIL_3_AT_20US)
        assert result.results[2] == FAILED
        for img, out in enumerate(result.results, start=1):
            if img == 3:
                continue
            kind, code, failed, done = out
            assert (kind, code, failed) == ("stat", STAT_FAILED_IMAGE, (3,))
            assert done >= 1  # rounds before the 20µs failure completed

    def test_error_termination_without_stat(self):
        def main(ctx):
            for _ in range(10):
                yield from ctx.sync_all()
                yield from ctx.compute(seconds=5e-6)

        with pytest.raises(ProcessFailure) as exc:
            run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert isinstance(exc.value.original, FailedImageError)
        assert "image3" in str(exc.value.original)

    def test_completed_image_cannot_fail(self):
        """A failure scheduled after an image finished is a no-op."""
        def main(ctx):
            yield from ctx.sync_all()
            return "done"

        result = run_small(
            main, images=2,
            faults=FaultSchedule(failures=(ImageFailure(1, 1.0),)))
        assert result.results == ["done", "done"]

    def test_image_status_and_failed_images(self):
        def main(ctx):
            me = ctx.this_image()
            st = Stat()
            for _ in range(10):
                yield from ctx.sync_all(stat=st)
                if not st.ok:
                    break
                yield from ctx.compute(seconds=5e-6)
            # query my OWN status (a surviving peer may already have
            # terminated normally by now — that is STAT_STOPPED_IMAGE,
            # not STAT_OK; see TestStoppedImages)
            return (ctx.image_status(3), ctx.image_status(me),
                    ctx.failed_images())

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        for img, out in enumerate(result.results, start=1):
            if img == 3:
                assert out == FAILED
            else:
                assert out == (STAT_FAILED_IMAGE, STAT_OK, [3])

    def test_stat_cleared_on_success(self):
        def main(ctx):
            st = Stat()
            st.code = 77  # stale garbage must be overwritten
            yield from ctx.sync_all(stat=st)
            return (st.code, st.failed_indices)

        result = run_small(main, images=2)
        assert result.results == [(STAT_OK, ())] * 2

    def test_sync_images_reports_failed_partner(self):
        def main(ctx):
            me = ctx.this_image()
            st = Stat()
            for _ in range(10):
                if me in (1, 3):
                    yield from ctx.sync_images([3 if me == 1 else 1],
                                               stat=st)
                    if not st.ok:
                        return ("stat", tuple(st.failed_indices))
                yield from ctx.compute(seconds=5e-6)
            return "no failure seen"

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[0] == ("stat", (3,))
        assert result.results[2] == FAILED

    def test_collectives_report_stat(self):
        def main(ctx):
            st = Stat()
            total = None
            for r in range(10):
                total = yield from ctx.co_sum(ctx.this_image(), stat=st)
                if not st.ok:
                    return ("stat", tuple(st.failed_indices))
                assert total == 10  # 1+2+3+4: pre-failure rounds are exact
                yield from ctx.compute(seconds=5e-6)
            return "no failure seen"

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        for img, out in enumerate(result.results, start=1):
            assert out == (FAILED if img == 3 else ("stat", (3,)))


# ----------------------------------------------------------------------
class TestSurvivorTeam:
    def test_reformation_excludes_failed_and_reelects_leader(self):
        """Kill image 1 — node 0's leader — and re-form: the survivor
        team must elect a new leader and still run collectives."""
        def main(ctx):
            st = Stat()
            for _ in range(20):
                yield from ctx.sync_all(stat=st)
                if not st.ok:
                    break
                yield from ctx.compute(seconds=5e-6)
            else:
                return "never saw the failure"
            new_view = yield from ctx.survivor_team()
            yield from ctx.change_team(new_view)
            total = yield from ctx.co_sum(1)
            h = new_view.shared.hierarchy
            info = (new_view.size, new_view.index, total,
                    sorted(h.leaders))
            yield from ctx.end_team()
            return info

        result = run_small(
            main, images=4,
            faults=FaultSchedule(failures=(ImageFailure(1, 20e-6),)))
        assert result.results[0] == FAILED
        # three survivors, re-indexed 1..3, collective spans exactly them
        for pos, out in zip(range(1, 4), result.results[1:]):
            size, index, total, leaders = out
            assert size == 3 and index == pos and total == 3
            # 2 nodes of 2: node 0 lost its leader (old image 1) — the
            # new team must still have one leader per populated node
            assert len(leaders) == 2

    def test_survivor_team_raises_for_failed_caller(self):
        """The dead image never runs again, so only survivors can even
        call survivor_team — verify the sane-at-a-distance path: calling
        with no failures returns the same membership."""
        def main(ctx):
            view = yield from ctx.survivor_team()
            return (view.size, view.index)

        result = run_small(main, images=4)
        assert result.results == [(4, i) for i in range(1, 5)]


# ----------------------------------------------------------------------
class TestDeterminism:
    def test_null_schedule_is_byte_identical(self):
        plain = run_small(_sync_rounds, images=4, trace=True)
        null = run_small(_sync_rounds, images=4, trace=True,
                         faults=FaultSchedule())
        assert null.time == plain.time
        assert null.results == plain.results
        assert _norm_trace(null.trace) == _norm_trace(plain.trace)

    def test_fault_runs_repeat_exactly(self):
        a = run_small(_sync_rounds, images=4, trace=True,
                      faults=FAIL_3_AT_20US)
        b = run_small(_sync_rounds, images=4, trace=True,
                      faults=FAIL_3_AT_20US)
        assert a.time == b.time
        assert a.results == b.results
        assert _norm_trace(a.trace) == _norm_trace(b.trace)

    def test_drop_schedule_completes_with_correct_results(self):
        def main(ctx):
            totals = []
            for _ in range(5):
                total = yield from ctx.co_sum(ctx.this_image())
                totals.append(int(total))
            return totals

        drops = FaultSchedule(drop_rate=0.8, seed=11)
        slow = run_small(main, images=4, faults=drops)
        fast = run_small(main, images=4)
        assert slow.results == fast.results == [[10] * 5] * 4
        # retransmits cost sender-visible time on the remote path
        assert slow.time > fast.time


# ----------------------------------------------------------------------
class TestEventFaults:
    """Event primitives are fault-integrated: posts to dead images fail
    fast, waits on team-scoped variables are failure-aware."""

    def test_event_post_to_failed_image_reports_stat(self):
        """Regression: posting to a fail-stopped owner used to bump a
        counter nobody would ever consume (silent lost signal); it must
        report STAT_FAILED_IMAGE instead."""
        def main(ctx):
            me = ctx.this_image()
            ev = yield from ctx.event_var("sig")
            st = Stat()
            for _ in range(20):
                yield from ctx.compute(seconds=5e-6)
                if me == 1:
                    yield from ctx.event_post(ev, 3, stat=st)
                    if not st.ok:
                        return ("stat", st.code, tuple(st.failed_indices))
            return "never saw the failure"

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[0] == ("stat", STAT_FAILED_IMAGE, (3,))
        assert result.results[2] == FAILED

    def test_event_post_to_failed_image_raises_without_stat(self):
        def main(ctx):
            me = ctx.this_image()
            ev = yield from ctx.event_var("sig2")
            for _ in range(20):
                yield from ctx.compute(seconds=5e-6)
                if me == 1:
                    yield from ctx.event_post(ev, 3)
            return "never saw the failure"

        with pytest.raises(ProcessFailure) as exc:
            run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert isinstance(exc.value.original, FailedImageError)

    def test_event_wait_observes_teammate_failure(self):
        """A wait starved by a teammate's fail-stop wakes with
        STAT_FAILED_IMAGE instead of hanging forever."""
        def main(ctx):
            me = ctx.this_image()
            ev = yield from ctx.event_var("never")
            if me == 1:
                st = Stat()
                yield from ctx.event_wait(ev, stat=st)
                return ("stat", st.code, tuple(st.failed_indices))
            # stay alive past the kill instant (a completed image
            # cannot fail)
            for _ in range(10):
                yield from ctx.compute(seconds=5e-6)
            return "done"

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[0] == ("stat", STAT_FAILED_IMAGE, (3,))


# ----------------------------------------------------------------------
class TestDeadlockAttribution:
    def test_residual_hang_attributed_to_injected_failure(self):
        """A wait that is *not* failure-aware hangs when its notifier
        dies — the analyzer must say the hang is fault fallout, not an
        algorithm bug.  The runtime's own primitives are all
        failure-aware now, so build the residual hang directly on the
        sim kernel: a waiter parked on a pairwise-sync flag whose
        notifier (image 3) never writes it."""
        engine = Engine()
        flag = Cell(engine, 0, name="syncimg[2->0]",
                    meta={"kind": "syncimg", "notifier": 2, "waiter": 0})

        def waiter():
            yield WaitFor(flag, lambda v: v > 0)

        Process(engine, waiter(), name="image1", actor=0)
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        analysis = analyze_deadlock(exc.value, failed=[3])
        assert analysis.failed == [3]
        assert analysis.fault_attributed == [1]
        rendered = analysis.render()
        assert "injected fail-stops: image3" in rendered


# ----------------------------------------------------------------------
class TestStoppedImages:
    """Normal termination is a third image state (F2018 "stopped"),
    distinct from fail-stop: reported by ``stopped_images()`` and
    ``STAT_STOPPED_IMAGE``, never by ``failed_images()``."""

    def test_stopped_image_reported_by_stopped_not_failed(self):
        def main(ctx):
            me = ctx.this_image()
            if me == 1:
                yield from ctx.sync_images([2])
                return "early"  # normal termination, no failure anywhere
            yield from ctx.sync_images([1])
            yield from ctx.compute(seconds=20e-6)
            st = Stat()
            yield from ctx.sync_all(stat=st)
            return (st.code, tuple(st.failed_indices),
                    ctx.stopped_images(), ctx.failed_images(),
                    ctx.image_status(1), ctx.image_status(me))

        result = run_small(main, images=2)
        assert result.results[0] == "early"
        assert result.results[1] == (STAT_STOPPED_IMAGE, (1,), [1], [],
                                     STAT_STOPPED_IMAGE, STAT_OK)

    def test_sync_images_with_stopped_peer(self):
        def main(ctx):
            me = ctx.this_image()
            if me == 1:
                yield from ctx.sync_images([2])
                return "early"
            if me == 2:
                yield from ctx.sync_images([1])
                yield from ctx.compute(seconds=20e-6)
                st = Stat()
                yield from ctx.sync_images([1], stat=st)
                return (st.code, tuple(st.failed_indices))
            return "bystander"

        result = run_small(main, images=4)
        assert result.results[1] == (STAT_STOPPED_IMAGE, (1,))

    def test_failed_check_precedes_stopped_check(self):
        """With both a stopped image and a failed image in the team, the
        failure wins — stat reports STAT_FAILED_IMAGE, and each intrinsic
        reports its own set."""
        def main(ctx):
            me = ctx.this_image()
            if me == 1:
                # outlive the 20µs kill, then terminate normally
                yield from ctx.compute(seconds=25e-6)
                return "early"
            # arrive at the check with image 3 failed AND image 1 stopped
            yield from ctx.compute(seconds=30e-6)
            st = Stat()
            yield from ctx.sync_all(stat=st)
            return (st.code, tuple(st.failed_indices),
                    ctx.stopped_images(), ctx.failed_images())

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[0] == "early"
        assert result.results[2] == FAILED
        for out in (result.results[1], result.results[3]):
            code, indices, stopped, failed = out
            assert (code, indices, failed) == (STAT_FAILED_IMAGE, (3,), [3])
            # image 1 stopped; the failed image is never "stopped" (a
            # fellow checker that already returned may be, though)
            assert 1 in stopped and 3 not in stopped

    def test_no_stat_sync_still_hangs_on_stopped_image(self):
        """Without stat= the standard gives no detection point: a barrier
        including a normally-terminated image is an error (here: a
        deadlock with wait-for attribution), exactly as before stopped
        tracking existed."""
        def main(ctx):
            me = ctx.this_image()
            if me == 1:
                return "early"
            yield from ctx.sync_all()
            return "unreachable"

        with pytest.raises(DeadlockError):
            run_small(main, images=4)
