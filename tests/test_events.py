"""F2018 event variables: post/wait/query semantics, team scoping, the
leader-mediated cross-node path, and schedule-independence of the wake
order under the fuzz driver."""

import pytest

from repro.faults import Stat
from repro.verify import fuzz_schedules
from repro.verify.fuzz import canonicalize

from tests.conftest import run_small

pytestmark = pytest.mark.image_control


# ----------------------------------------------------------------------
# Core semantics
# ----------------------------------------------------------------------
class TestEventSemantics:
    def test_post_then_wait_never_blocks(self):
        """A wait preceded (in program order at the owner) by a matching
        post is satisfied immediately — for posts from any image."""
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            ev = yield from ctx.event_var("selfpost")
            # post to myself, then wait: must not block
            yield from ctx.event_post(ev, me)
            yield from ctx.event_wait(ev)
            # ring: everyone posts right, then waits for the left post
            yield from ctx.event_post(ev, me % n + 1)
            yield from ctx.event_wait(ev)
            return ctx.event_query(ev)

        result = run_small(main, images=8, ipn=4)
        assert result.results == [0] * 8

    def test_until_count_consumes_exactly_threshold(self):
        """``event wait(ev, until_count=c)`` consumes all ``c`` posts;
        a lower threshold leaves the surplus pending (F2015 8.5.2)."""
        def main(ctx):
            me = ctx.this_image()
            ev = yield from ctx.event_var("counted")
            if me == 1:
                for _ in range(3):
                    yield from ctx.event_post(ev, 2)
            yield from ctx.sync_all()
            if me == 2:
                q_before = ctx.event_query(ev)
                yield from ctx.event_wait(ev, until_count=2)
                q_mid = ctx.event_query(ev)
                yield from ctx.event_wait(ev, until_count=1)
                return (q_before, q_mid, ctx.event_query(ev))
            return None

        result = run_small(main, images=4)
        assert result.results[1] == (3, 1, 0)

    def test_partial_posts_stay_pending_until_threshold_met(self):
        """An owner blocked on ``until_count=k`` wakes only once the
        k-th post lands, regardless of how many posters contribute."""
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            ev = yield from ctx.event_var("fanin")
            if me == 1:
                yield from ctx.event_wait(ev, until_count=n - 1)
                return ctx.event_query(ev)
            yield from ctx.event_post(ev, 1)
            return None

        result = run_small(main, images=6, ipn=3)
        assert result.results[0] == 0

    def test_wait_rejects_nonpositive_until_count(self):
        def main(ctx):
            ev = yield from ctx.event_var("bad")
            yield from ctx.event_wait(ev, until_count=0)

        with pytest.raises(Exception, match="until_count"):
            run_small(main, images=2)

    def test_cross_node_fanin_lands_every_post(self):
        """Posters spread over four nodes all reach one owner: the
        leader-mediated relay must deliver exactly one bump per post."""
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            ev = yield from ctx.event_var("xnode")
            if me != 1:
                yield from ctx.event_post(ev, 1)
            else:
                yield from ctx.event_wait(ev, until_count=n - 1)
            yield from ctx.sync_all()
            return ctx.event_query(ev)

        result = run_small(main, images=8, ipn=2)
        assert result.results == [0] * 8


# ----------------------------------------------------------------------
# Team scoping
# ----------------------------------------------------------------------
class TestCrossTeamIsolation:
    def test_same_name_in_sibling_teams_is_independent(self):
        """Posts on team A's ``ev`` never satisfy waits on team B's
        ``ev`` even though the names collide."""
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 4 else 2)
            yield from ctx.change_team(team)
            ev = yield from ctx.event_var("shared_name")
            tme = ctx.this_image()
            tn = ctx.num_images()
            # team 1 posts twice around its ring, team 2 once: if the
            # namespaces leaked, the counts could not both settle at 0.
            posts = 2 if ctx.team_id() == 1 else 1
            for _ in range(posts):
                yield from ctx.event_post(ev, tme % tn + 1)
            yield from ctx.event_wait(ev, until_count=posts)
            leftover = ctx.event_query(ev)
            yield from ctx.end_team()
            return (ctx.team_id(), leftover)

        result = run_small(main, images=8, ipn=4)
        assert all(leftover == 0 for _tid, leftover in result.results)

    def test_subteam_event_distinct_from_parent_event(self):
        """``event_var('iso')`` on the initial team and on a sub-team
        attach different coarrays: parent posts are invisible inside."""
        def main(ctx):
            me = ctx.this_image()
            outer = yield from ctx.event_var("iso")
            yield from ctx.event_post(outer, me)  # 1 pending on outer
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            inner = yield from ctx.event_var("iso")
            pending_inner = ctx.event_query(inner)
            yield from ctx.end_team()
            yield from ctx.event_wait(outer)
            return (pending_inner, ctx.event_query(outer))

        result = run_small(main, images=4)
        assert result.results == [(0, 0)] * 4

    def test_post_addresses_team_relative_index(self):
        """``event post(ev[i])`` resolves ``i`` in the variable's own
        team, not globally: reversed sub-teams still pair up."""
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            team = yield from ctx.form_team(1, new_index=n - me + 1)
            yield from ctx.change_team(team)
            ev = yield from ctx.event_var("rev")
            tme = ctx.this_image()
            yield from ctx.event_post(ev, tme % n + 1)
            yield from ctx.event_wait(ev)
            yield from ctx.end_team()
            return ctx.event_query(ev)

        result = run_small(main, images=4)
        assert result.results == [0] * 4


# ----------------------------------------------------------------------
# Fuzzed schedules: wake order determinism
# ----------------------------------------------------------------------
def _chain_main(ctx):
    """Event chain 1 → 2 → … → n: image k wakes only after image k−1
    posted, so the wake order is fixed by the dependence structure no
    matter how the scheduler interleaves the runnable images."""
    me = ctx.this_image()
    n = ctx.num_images()
    ev = yield from ctx.event_var("chain")
    if me > 1:
        yield from ctx.event_wait(ev)
    woke_at = ctx.now
    if me < n:
        yield from ctx.event_post(ev, me + 1)
    return woke_at


def _wake_order(result):
    """Map an SpmdResult to the images ordered by wake time."""
    times = result.results
    return [img for _t, img in sorted(
        (t, img) for img, t in enumerate(times, start=1))]


class TestEventFuzz:
    def test_chain_wake_order_is_schedule_independent(self):
        report = fuzz_schedules(
            _chain_main, seeds=[3, 5, 7], num_images=8, images_per_node=4,
            extract=_wake_order,
        )
        assert report.ok
        expected = canonicalize(list(range(1, 9)))
        assert report.baseline.results == expected
        for outcome in report.outcomes:
            assert outcome.results == expected

    def test_same_seed_reproduces_the_whole_run(self):
        """Duplicate seeds in the sweep land byte-identical outcomes:
        same wake order *and* same simulated finishing time."""
        report = fuzz_schedules(
            _chain_main, seeds=[7, 7], num_images=8, images_per_node=4,
            extract=_wake_order,
        )
        assert report.ok
        a, b = report.outcomes
        assert a.results == b.results
        assert a.time == b.time


# ----------------------------------------------------------------------
# Failure integration (regression: ISSUE 6 satellite 4)
# ----------------------------------------------------------------------
class TestEventStatPlumbing:
    def test_event_var_barrier_accepts_stat(self):
        def main(ctx):
            st = Stat()
            yield from ctx.event_var("guarded", stat=st)
            return st.code

        result = run_small(main, images=4)
        assert result.results == [0] * 4
