"""Concurrent access to the result cache and the in-flight dedup index.

The cache is shared by design: parallel CLI runs, the multi-tenant job
server, and background eviction all touch one directory tree at once.
These tests pin the three properties that make that safe:

* concurrent ``put``/``get`` on the same keys never yields a *wrong*
  value — a reader sees a miss or the (single, correct) value, never a
  torn entry (atomic ``os.replace`` publication);
* eviction never breaks a reader mid-read — POSIX ``unlink`` leaves an
  already-open handle fully readable;
* the in-flight index fans one execution's result out to every waiter,
  so N overlapping tenants pay for one run per unique cell.
"""

import asyncio
import multiprocessing
import pickle

from repro.exec import ResultCache, TaskSpec
from repro.serve.jobs import InFlightIndex


def job(x):
    return x * 2


def _expected(i: int) -> str:
    return f"value-{i}" * 20


def _hammer_put(root, src_root, n, rounds):
    cache = ResultCache(root=root, source_roots=[src_root])
    for _ in range(rounds):
        for i in range(n):
            key = cache.task_key(TaskSpec(job, (i,)))
            cache.put(key, _expected(i))


def _hammer_get(root, src_root, n, rounds, out_queue):
    cache = ResultCache(root=root, source_roots=[src_root])
    bad = 0
    hits = 0
    for _ in range(rounds):
        for i in range(n):
            key = cache.task_key(TaskSpec(job, (i,)))
            hit, value = cache.get(key)
            if hit:
                hits += 1
                if value != _expected(i):
                    bad += 1
    out_queue.put((hits, bad, cache.corrupt))


class TestTwoProcessRace:
    def test_put_get_race_never_serves_a_torn_entry(self, tmp_path):
        """One process rewrites the same keys in a loop while another
        reads them: every hit must deliver the exact stored value."""
        src_root = tmp_path / "src"
        src_root.mkdir()
        (src_root / "mod.py").write_text("X = 1\n")
        root = tmp_path / "cache"
        n, rounds = 8, 30
        ctx = multiprocessing.get_context()
        results: multiprocessing.Queue = ctx.Queue()
        writer = ctx.Process(target=_hammer_put,
                             args=(root, src_root, n, rounds))
        reader = ctx.Process(target=_hammer_get,
                             args=(root, src_root, n, rounds, results))
        writer.start()
        reader.start()
        writer.join(60)
        reader.join(60)
        assert writer.exitcode == 0
        assert reader.exitcode == 0
        hits, bad, corrupt = results.get(timeout=10)
        assert bad == 0, f"{bad} hit(s) delivered a wrong value"
        assert corrupt == 0, "atomic publication must never expose a torn entry"
        # sanity: the race actually exercised the read path
        cache = ResultCache(root=root, source_roots=[src_root])
        key = cache.task_key(TaskSpec(job, (0,)))
        hit, value = cache.get(key)
        assert hit and value == _expected(0)


class TestEvictionVsReaders:
    def test_unlink_leaves_open_handles_readable(self, tmp_path):
        """A reader that already opened an entry keeps it even if
        eviction unlinks the path underneath (POSIX semantics) — so
        eviction never has to coordinate with in-progress reads."""
        cache = ResultCache(root=tmp_path)
        key = cache.task_key(TaskSpec(job, (5,)))
        cache.put(key, {"payload": list(range(50))})
        path = cache._path(key)
        with open(path, "rb") as mid_read:
            out = cache.evict(max_entries=0)  # evict *everything*
            assert out["entries_removed"] == 1
            assert not path.exists()
            # the open handle still reads the full, valid entry
            assert pickle.load(mid_read) == {"payload": list(range(50))}
        # later readers see an ordinary miss, not an error
        hit, _ = cache.get(key)
        assert not hit
        assert cache.corrupt == 0


class TestInFlightDedup:
    def test_one_result_reaches_every_waiter(self):
        async def scenario():
            index = InFlightIndex()
            key = "k" * 64
            assert index.lookup(key) is None  # nothing in flight yet
            future = index.begin(key)

            async def wait():
                flight = index.lookup(key)
                assert flight is not None
                return await flight

            waiters = [asyncio.ensure_future(wait()) for _ in range(5)]
            await asyncio.sleep(0)  # let every waiter reach the await
            assert len(index) == 1
            index.settle(key, (True, 42, None, 0.5))
            got = await asyncio.gather(*waiters)
            assert got == [(True, 42, None, 0.5)] * 5
            assert len(index) == 0  # flight retired
            assert index.deduped == 5
            assert index.lookup(key) is None  # next request re-executes
            future.result()  # the executing side's future resolved too

        asyncio.run(scenario())

    def test_settle_is_idempotent_and_tolerates_unknown_keys(self):
        async def scenario():
            index = InFlightIndex()
            index.begin("a" * 64)
            index.settle("a" * 64, "first")
            index.settle("a" * 64, "second")  # no-op, no raise
            index.settle("b" * 64, "never-began")  # no-op, no raise

        asyncio.run(scenario())
