"""Tests for the ``repro.perf`` instrumentation layer."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    bench_burst,
    bench_engine_dispatch,
    bench_macro_barrier,
    bench_macro_bcast,
    bench_macro_reduce,
    bench_sync_kernel,
    bench_tdlb_barrier,
    bench_trampoline,
    run_with_stats,
)
from repro.perf.stats import UNLABELED
from repro.sim import Cell, Engine, Process, WaitFor
from repro.sim.errors import DeadlockError


class TestRunWithStats:
    def test_counts_and_histogram(self):
        engine = Engine()
        hits = []
        engine.schedule(1e-6, lambda: hits.append(1), label="tick")
        engine.schedule(2e-6, lambda: hits.append(2), label="tick")
        engine.schedule(3e-6, lambda: hits.append(3))  # unlabeled
        stats = run_with_stats(engine)
        assert hits == [1, 2, 3]
        assert stats.events == 3
        assert stats.label_histogram == {"tick": 2, UNLABELED: 1}
        assert stats.sim_time == pytest.approx(3e-6)
        assert stats.peak_heap == 3
        assert stats.events_per_sec > 0

    def test_peak_heap_tracks_schedule_bursts(self):
        engine = Engine()

        def fan_out():
            for _ in range(10):
                engine.schedule(1e-6, lambda: None)

        engine.schedule(0.0, fan_out, label="fan")
        stats = run_with_stats(engine)
        assert stats.events == 11
        assert stats.peak_heap == 10

    def test_top_labels_ranked_by_frequency(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1e-6, lambda: None, label="common")
        engine.schedule(1e-6, lambda: None, label="rare")
        stats = run_with_stats(engine)
        assert stats.top_labels(1) == [("common", 3)]

    def test_deadlock_still_raised(self):
        engine = Engine()
        cell = Cell(engine, name="never")

        def stuck():
            yield WaitFor(cell, lambda v: v > 0)

        Process(engine, stuck(), name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            run_with_stats(engine)

    def test_until_horizon_stops_early(self):
        engine = Engine()
        engine.schedule(1e-6, lambda: None, label="early")
        engine.schedule(1.0, lambda: None, label="late")
        stats = run_with_stats(engine, until=1e-3)
        assert stats.label_histogram == {"early": 1}


class TestMicrobenchmarks:
    @pytest.mark.parametrize("bench, kwargs", [
        (bench_trampoline, dict(events=2_000, chains=4)),
        (bench_engine_dispatch, dict(procs=4, events_per_proc=100)),
        (bench_burst, dict(procs=4, events_per_proc=100)),
        (bench_sync_kernel, dict(pairs=2, rounds=50)),
    ])
    def test_same_workload_same_event_count_on_both_kernels(self, bench, kwargs):
        # The A/B comparison is only meaningful if both kernels do
        # identical work: equal event counts and equal final sim time.
        cur = bench("current", repeats=1, **kwargs)
        leg = bench("legacy", repeats=1, **kwargs)
        assert cur.events == leg.events > 0
        assert cur.sim_time == leg.sim_time
        assert cur.events_per_sec > 0 and leg.events_per_sec > 0

    def test_tdlb_barrier_end_to_end(self):
        result = bench_tdlb_barrier(iters=5, num_images=8, images_per_node=4,
                                    repeats=1)
        assert result.events > 0
        assert result.sim_time > 0
        assert result.kernel == "current"

    def test_timeout_chain_event_count_is_exact(self):
        # procs * (1 start + events_per_proc timeouts) engine events.
        res = bench_engine_dispatch("current", procs=3, events_per_proc=10,
                                    repeats=1)
        assert res.events == 3 * 11

    def test_macro_barrier_collapses_events_with_identical_time(self):
        entry = bench_macro_barrier(iters=4, num_images=32, repeats=1)
        assert entry["identical_final_time"]
        assert entry["sim_time_macro_s"] == entry["sim_time_fine_s"] > 0
        assert entry["events_macro"] < entry["events_fine"]
        assert entry["event_ratio"] > 5

    def test_macro_reduce_collapses_chained_windows(self):
        entry = bench_macro_reduce(iters=4, num_images=32, repeats=1)
        assert entry["identical_final_time"]
        assert entry["identical_results"]
        assert not entry["inexact"]
        # Every window replays exactly — none pinned fine.
        assert entry["replays"] == 4
        assert entry["events_macro"] < entry["events_fine"]
        assert entry["event_ratio"] > 5

    def test_macro_bcast_single_window_exact(self):
        entry = bench_macro_bcast(iters=1, num_images=64, repeats=1)
        assert entry["identical_final_time"]
        assert entry["identical_results"]
        assert not entry["inexact"]
        assert entry["replays"] == 1
        # Bounded by the arrival floor (one registration event per
        # member), so modest — but strictly fewer events than fine.
        assert entry["events_macro"] < entry["events_fine"]


class TestPerfCli:
    @pytest.fixture()
    def tiny_sizes(self, monkeypatch):
        from repro.perf import __main__ as cli
        monkeypatch.setitem(cli.SIZES, "smoke", {
            "trampoline": dict(events=1_000, chains=4, repeats=1),
            "engine_dispatch": dict(procs=4, events_per_proc=100, repeats=1),
            "burst": dict(procs=4, events_per_proc=100, repeats=1),
            "sync_kernel": dict(pairs=2, rounds=20, repeats=1),
            "tdlb_barrier": dict(iters=3, num_images=8, images_per_node=4,
                                 repeats=1),
            "macro_barrier": dict(iters=2, num_images=16, repeats=1),
            "macro_reduce": dict(iters=2, num_images=16, repeats=1),
            "macro_bcast": dict(iters=1, num_images=16, repeats=1),
        })
        return cli

    def test_smoke_writes_schema_json(self, tiny_sizes, tmp_path, capsys):
        out = tmp_path / "BENCH_SIM_KERNEL.json"
        assert tiny_sizes.main(["--smoke", "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.perf/bench_sim_kernel/v1"
        assert payload["mode"] == "smoke"
        assert set(payload["benchmarks"]) == {
            "trampoline", "engine_dispatch", "burst", "sync_kernel",
            "tdlb_barrier", "tdlb_barrier_stats", "macro_barrier",
            "macro_reduce", "macro_bcast",
        }
        head = payload["headline"]
        assert head["engine_events_per_sec"] > 0
        assert head["speedup_vs_legacy"] > 0
        assert head["macro_identical_final_time"] is True
        assert head["macro_event_ratio"] > 1
        assert head["macro_reduce_exact"] is True
        assert head["macro_bcast_exact"] is True
        assert head["macro_reduce_event_ratio"] > 1
        assert "engine microbenchmark" in capsys.readouterr().out

    def test_baseline_gate_passes_and_fails(self, tiny_sizes, tmp_path):
        out = tmp_path / "fresh.json"
        assert tiny_sizes.main(["--smoke", "-o", str(out)]) == 0
        payload = json.loads(out.read_text())

        lenient = tmp_path / "lenient.json"
        lenient.write_text(json.dumps(payload))
        assert tiny_sizes.main([
            "--smoke", "-o", str(out), "--baseline", str(lenient),
            "--min-ratio", "0.01",
        ]) == 0

        impossible = dict(payload)
        impossible["headline"] = {
            "engine_events_per_sec": payload["headline"]["engine_events_per_sec"] * 1e6,
            "speedup_vs_legacy": 1.0,
        }
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps(impossible))
        assert tiny_sizes.main([
            "--smoke", "-o", str(out), "--baseline", str(strict),
            "--min-ratio", "0.7",
        ]) == 2

    def test_committed_baseline_has_required_headline(self):
        # CI gates against the committed file; keep its shape honest.
        from pathlib import Path
        root = Path(__file__).resolve().parent.parent
        payload = json.loads((root / "BENCH_SIM_KERNEL.json").read_text())
        assert payload["schema"] == "repro.perf/bench_sim_kernel/v1"
        assert payload["headline"]["engine_events_per_sec"] > 0
