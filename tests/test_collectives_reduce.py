"""Reduction tests: every algorithm must produce the NumPy reference
result for every op, on scalars and arrays, across team shapes —
including hypothesis-generated cases — and the two-level strategy must
beat the flat ones where the paper says it does."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.reduce import REDUCE_OPS
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.sim import ProcessFailure
from tests.conftest import run_small

ALL_REDUCES = ["linear-flat", "binomial-flat", "recursive-doubling",
               "rabenseifner", "two-level", "three-level"]


def reduce_config(name, base=UHCAF_2LEVEL):
    return base.with_(reduce=name)


def run_reduce(strategy, images, ipn, values, op="sum", result_image=None):
    """Run co_reduce with per-image ``values[i]``; returns per-image results."""

    def main(ctx):
        mine = values[ctx.this_image() - 1]
        out = yield from ctx.co_reduce(mine, op=op, result_image=result_image)
        return out

    return run_small(
        main, images=images, ipn=ipn, config=reduce_config(strategy)
    ).results


def reference(values, op):
    acc = values[0]
    for v in values[1:]:
        acc = REDUCE_OPS[op](acc, v)
    return acc


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_integer_scalars_exact(self, strategy, op):
        values = [3, -1, 7, 5, 2, 2]
        results = run_reduce(strategy, images=6, ipn=3, values=values, op=op)
        expected = reference(values, op)
        assert all(r == expected for r in results)

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_integer_arrays_exact(self, strategy):
        values = [np.arange(5, dtype=np.int64) * (i + 1) for i in range(7)]
        results = run_reduce(strategy, images=7, ipn=4, values=values)
        expected = sum(values)
        for r in results:
            assert (r == expected).all()

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_float_arrays_close(self, strategy):
        rng = np.random.default_rng(7)
        values = [rng.normal(size=16) for _ in range(9)]
        results = run_reduce(strategy, images=9, ipn=4, values=values)
        expected = np.sum(values, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected, rtol=1e-12)

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_non_power_of_two_team(self, strategy):
        values = list(range(1, 12))
        results = run_reduce(strategy, images=11, ipn=4, values=values)
        assert all(r == sum(values) for r in results)

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_single_image(self, strategy):
        results = run_reduce(strategy, images=1, ipn=1, values=[42])
        assert results == [42]

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_two_images(self, strategy):
        results = run_reduce(strategy, images=2, ipn=2, values=[10, 32])
        assert results == [42, 42]

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_result_image_restricts_output(self, strategy):
        values = [1, 2, 3, 4]
        results = run_reduce(
            strategy, images=4, ipn=2, values=values, result_image=3
        )
        assert results[2] == 10
        assert all(r is None for i, r in enumerate(results) if i != 2)

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_result_image_is_root_or_leader(self, strategy):
        """result_image coinciding with internal roots/leaders must work."""
        values = [1, 2, 3, 4]
        results = run_reduce(
            strategy, images=4, ipn=2, values=values, result_image=1
        )
        assert results[0] == 10

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_contribution_not_mutated(self, strategy):
        def main(ctx):
            mine = np.full(4, float(ctx.this_image()))
            yield from ctx.co_sum(mine)
            return mine.copy()

        results = run_small(
            main, images=4, ipn=2, config=reduce_config(strategy)
        ).results
        for i, r in enumerate(results):
            assert (r == i + 1).all()

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_repeated_reductions_do_not_cross_talk(self, strategy):
        def main(ctx):
            a = yield from ctx.co_sum(ctx.this_image())
            b = yield from ctx.co_sum(ctx.this_image() * 10)
            return (a, b)

        results = run_small(
            main, images=5, ipn=3, config=reduce_config(strategy)
        ).results
        assert all(r == (15, 150) for r in results)

    def test_maxloc_combines_value_location_pairs(self):
        def main(ctx):
            me = ctx.this_image()
            pair = (float(me % 3), me)  # max value 2.0 at images 2 and 5
            out = yield from ctx.co_reduce(pair, op="maxloc")
            return out

        results = run_small(main, images=6, ipn=3).results
        assert all(r == (2.0, 2) for r in results)  # tie → lower location

    def test_unknown_op_rejected_on_all_images(self):
        def main(ctx):
            yield from ctx.co_reduce(1, op="median")

        with pytest.raises(ProcessFailure, match="unknown reduce op"):
            run_small(main, images=2)

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_on_subteam(self, strategy):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 3 else 2)
            yield from ctx.change_team(team)
            out = yield from ctx.co_sum(ctx.this_image())
            yield from ctx.end_team()
            return out

        results = run_small(
            main, images=6, ipn=3, config=reduce_config(strategy)
        ).results
        assert results == [6, 6, 6, 6, 6, 6]

    @pytest.mark.parametrize("strategy", ALL_REDUCES)
    def test_team_qualified_reduction(self, strategy):
        """CAF 2.0-style team= argument without change_team."""

        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me % 2 else 2)
            out = yield from ctx.co_sum(me, team=team)
            return out

        results = run_small(
            main, images=6, ipn=3, config=reduce_config(strategy)
        ).results
        assert results == [9, 12, 9, 12, 9, 12]


class TestHypothesis:
    @given(
        strategy=st.sampled_from(ALL_REDUCES),
        op=st.sampled_from(["sum", "max", "min"]),
        values=st.lists(st.integers(min_value=-1000, max_value=1000),
                        min_size=1, max_size=13),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_team_size_matches_reference(self, strategy, op, values):
        results = run_reduce(
            strategy, images=len(values), ipn=4, values=values, op=op
        )
        expected = reference(values, op)
        assert all(r == expected for r in results)

    @given(
        strategy=st.sampled_from(ALL_REDUCES),
        n=st.integers(min_value=1, max_value=10),
        ipn=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_array_sum_any_shape(self, strategy, n, ipn, seed):
        rng = np.random.default_rng(seed)
        values = [rng.integers(-50, 50, size=6) for _ in range(n)]
        results = run_reduce(strategy, images=n, ipn=ipn, values=values)
        expected = sum(values)
        for r in results:
            assert (np.asarray(r) == expected).all()


class TestShape:
    def _bench(self, config, images=16, ipn=8, nelems=1):
        def main(ctx):
            v = np.full(nelems, float(ctx.this_image()))
            yield from ctx.co_sum(v)
            t0 = ctx.now
            for _ in range(4):
                yield from ctx.co_sum(v)
            return ctx.now - t0

        return max(run_small(main, images=images, ipn=ipn, config=config).results)

    def test_two_level_beats_linear_flat_with_colocated_images(self):
        t2 = self._bench(UHCAF_2LEVEL)
        t1 = self._bench(UHCAF_1LEVEL)
        assert t1 > 10 * t2

    def test_two_level_beats_binomial_flat(self):
        t2 = self._bench(UHCAF_2LEVEL)
        tb = self._bench(UHCAF_1LEVEL.with_(reduce="binomial-flat"))
        assert tb > 2 * t2

    def test_gap_grows_with_payload_contention(self):
        small = self._bench(UHCAF_1LEVEL) / self._bench(UHCAF_2LEVEL)
        # larger payloads shift the ratio toward bandwidth terms
        big_flat = self._bench(UHCAF_1LEVEL, nelems=2048)
        big_two = self._bench(UHCAF_2LEVEL, nelems=2048)
        assert big_flat > big_two  # still wins, by a smaller factor
        assert small > big_flat / big_two
