"""Barrier edge cases: every variant on degenerate team shapes.

The shapes that historically break barrier implementations:

* **1-image teams** — log₂(1) = 0 rounds; the algorithm must degrade to
  a no-op without dividing by zero or waiting forever;
* **2-image teams** — exactly one round, parent==partner==peer;
* **all-leader (flat) teams** — one image per node, so the hierarchical
  algorithms' intra-node phases are empty and everything rides the
  leader phase;
* **formed sub-teams** of those sizes, where team indices differ from
  global image numbers.
"""

import numpy as np
import pytest

from repro.collectives.registry import BARRIERS
from repro.runtime.config import UHCAF_2LEVEL
from tests.conftest import run_small

ALL_BARRIERS = sorted(BARRIERS)


def _cfg(alg):
    return UHCAF_2LEVEL.with_(barrier=alg)


def _visibility_probe(ctx, rounds=2):
    """Put a round-stamped token at the right neighbour, cross the
    barrier, check the left neighbour's token arrived.  Returns per-round
    mismatches (all zero when the barrier separates correctly)."""
    me = ctx.this_image()
    n = ctx.num_images()
    box = yield from ctx.allocate("edge_box", (1,), dtype=np.int64)
    mismatches = []
    for r in range(1, rounds + 1):
        right = me % n + 1
        if right != me:
            yield from ctx.put(box, right, np.int64(me * 100 + r), index=0)
        else:
            ctx.local(box)[0] = me * 100 + r
        yield from ctx.sync_all()
        left = (me - 2) % n + 1
        mismatches.append(int(ctx.local(box)[0]) - (left * 100 + r))
        yield from ctx.sync_all()
    return mismatches


@pytest.mark.parametrize("alg", ALL_BARRIERS)
class TestInitialTeamShapes:
    def test_single_image(self, alg):
        result = run_small(_visibility_probe, images=1, ipn=1, config=_cfg(alg))
        assert result.results == [[0, 0]]

    def test_two_images_same_node(self, alg):
        result = run_small(_visibility_probe, images=2, ipn=2, config=_cfg(alg))
        assert result.results == [[0, 0]] * 2

    def test_two_images_two_nodes(self, alg):
        result = run_small(_visibility_probe, images=2, ipn=1, config=_cfg(alg))
        assert result.results == [[0, 0]] * 2

    def test_all_leaders_flat(self, alg):
        result = run_small(_visibility_probe, images=4, ipn=1, config=_cfg(alg))
        assert result.results == [[0, 0]] * 4


def _team_probe(group_of):
    def main(ctx):
        me = ctx.this_image()
        team = yield from ctx.form_team(group_of(me))
        yield from ctx.change_team(team)
        idx = ctx.this_image()
        n = ctx.num_images()
        box = yield from ctx.allocate("team_box", (1,), dtype=np.int64)
        mismatches = []
        for r in range(1, 3):
            right = idx % n + 1
            if right != idx:
                yield from ctx.put(box, right, np.int64(idx * 100 + r), index=0)
            else:
                ctx.local(box)[0] = idx * 100 + r
            yield from ctx.sync_all()
            left = (idx - 2) % n + 1
            mismatches.append(int(ctx.local(box)[0]) - (left * 100 + r))
            yield from ctx.sync_all()
        yield from ctx.end_team()
        return mismatches
    return main


@pytest.mark.parametrize("alg", ALL_BARRIERS)
class TestFormedSubteams:
    def test_singleton_teams(self, alg):
        # Every image in its own 1-image team: sync_all inside the team
        # must complete without touching any peer.
        main = _team_probe(lambda me: me)
        result = run_small(main, images=4, ipn=2, config=_cfg(alg))
        assert result.results == [[0, 0]] * 4

    def test_pair_teams(self, alg):
        # Two 2-image teams; pairs straddle the node split for ipn=2
        # (members 1,2 on node 0 / 3,4 on node 1 — grouping (1,3), (2,4)
        # makes each team span both nodes, every member a leader).
        main = _team_probe(lambda me: me % 2)
        result = run_small(main, images=4, ipn=2, config=_cfg(alg))
        assert result.results == [[0, 0]] * 4

    def test_pair_teams_intra_node(self, alg):
        main = _team_probe(lambda me: (me + 1) // 2)
        result = run_small(main, images=4, ipn=2, config=_cfg(alg))
        assert result.results == [[0, 0]] * 4
