"""Vector clocks and the happens-before race monitor."""

import pytest

from repro.verify import HBMonitor, RaceError, VectorClock
from tests.conftest import run_small


# ----------------------------------------------------------------------
# VectorClock algebra
# ----------------------------------------------------------------------
class TestVectorClock:
    def test_empty_precedes_everything(self):
        a, b = VectorClock(), VectorClock({0: 3})
        assert a.precedes_eq(b)
        assert not b.precedes_eq(a)

    def test_tick_and_merge(self):
        a = VectorClock()
        a.tick(0)
        a.tick(0)
        b = VectorClock()
        b.tick(1)
        b.merge(a)
        assert b.components() == {0: 2, 1: 1}

    def test_concurrency(self):
        a, b = VectorClock({0: 1}), VectorClock({1: 1})
        assert a.concurrent_with(b)
        b.merge(a)
        b.tick(1)
        assert a.precedes_eq(b)
        assert not a.concurrent_with(b)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        c = a.copy()
        c.tick(0)
        assert a.components() == {0: 1}
        assert c.components() == {0: 2}


# ----------------------------------------------------------------------
# Monitored SPMD runs
# ----------------------------------------------------------------------
def _ordered_main(ctx):
    """Stores to the same atomic on both sides of barriers: properly
    synchronized, race-free."""
    me = ctx.this_image()
    var = yield from ctx.atomic_var("v")
    if me == 1:
        yield from ctx.atomic_define(var, 1, 10)
    yield from ctx.sync_all()
    if me == 2:
        yield from ctx.atomic_define(var, 1, 20)
    yield from ctx.sync_all()
    return ctx.atomic_ref(var)


def _racy_main(ctx):
    """Unordered stores by two images to the same atomic: a WAW race."""
    me = ctx.this_image()
    var = yield from ctx.atomic_var("v")
    yield from ctx.atomic_define(var, 1, me)
    yield from ctx.sync_all()
    return ctx.atomic_ref(var)


class TestHBMonitor:
    def test_synchronized_stores_are_clean(self):
        monitor = HBMonitor()
        run_small(_ordered_main, images=4, monitor=monitor)
        assert monitor.ok
        assert monitor.messages > 0
        assert "no write-after-write races" in monitor.describe_races()

    def test_waw_race_detected(self):
        monitor = HBMonitor()
        run_small(_racy_main, images=2, monitor=monitor)
        assert not monitor.ok
        record = monitor.races[0]
        assert "write-after-write race" in record.describe()
        assert record.meta["kind"] == "atomic"
        writers = {record.first_writer, record.second_writer}
        assert writers == {0, 1}

    def test_strict_mode_raises_at_the_instant(self):
        with pytest.raises(RaceError) as excinfo:
            run_small(_racy_main, images=2, monitor=HBMonitor(strict=True))
        assert excinfo.value.record.meta["kind"] == "atomic"

    def test_rmw_ops_never_flagged(self):
        # Concurrent atomic adds commute; they must not be reported even
        # though they are unordered.
        def adders(ctx):
            var = yield from ctx.atomic_var("acc")
            yield from ctx.atomic_add(var, 1, 1)
            yield from ctx.sync_all()
            return ctx.atomic_ref(var) if ctx.this_image() == 1 else None

        monitor = HBMonitor()
        result = run_small(adders, images=4, monitor=monitor)
        assert monitor.ok
        assert result.results[0] == 4

    def test_collectives_are_race_free(self):
        # Every sync flag the barrier algorithms touch goes through
        # Cell.add (commutative); a run across two nodes must be clean.
        def main(ctx):
            for _ in range(3):
                yield from ctx.sync_all()
            got = yield from ctx.co_reduce(ctx.this_image(), op="sum")
            return got

        monitor = HBMonitor()
        result = run_small(main, images=8, ipn=4, monitor=monitor)
        assert monitor.ok
        assert result.results == [sum(range(1, 9))] * 8

    def test_barrier_orders_cross_image_stores(self):
        # The whole point of sync_all: stores before it happen-before
        # stores after it, on every image pair — the monitor's clocks
        # must agree (no false positives across 3 rounds).
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            var = yield from ctx.atomic_var("turn")
            for round_ in range(3):
                writer = (round_ % n) + 1
                if me == writer:
                    yield from ctx.atomic_define(var, 1, round_)
                yield from ctx.sync_all()
            return None

        monitor = HBMonitor()
        run_small(main, images=4, ipn=2, monitor=monitor)
        assert monitor.ok, monitor.describe_races()
