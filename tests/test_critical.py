"""The F2008/F2018 ``critical`` construct: team-wide mutual exclusion
lowered onto a runtime lock homed at team index 1 (as in OpenUH), with
F2018 ``stat=`` fault semantics."""

import pytest

from repro.faults import (
    STAT_OK,
    STAT_UNLOCKED_FAILED_IMAGE,
    FaultSchedule,
    ImageFailure,
    Stat,
)
from repro.sim import ProcessFailure
from tests.conftest import run_small

pytestmark = pytest.mark.image_control

FAIL_3_AT_20US = FaultSchedule(failures=(ImageFailure(3, 20e-6),))


class TestMutualExclusion:
    def test_critical_protects_read_modify_write(self):
        def main(ctx):
            counter = yield from ctx.allocate("c", (1,))
            yield from ctx.sync_all()
            yield from ctx.critical_begin("rmw")
            value = yield from ctx.get(counter, 1)
            yield from ctx.compute(seconds=1e-6)
            yield from ctx.put(counter, 1, float(value[0]) + 1, index=0)
            yield from ctx.critical_end("rmw")
            yield from ctx.sync_all()
            return float(ctx.local(counter)[0]) if ctx.this_image() == 1 else None

        result = run_small(main, images=8, ipn=4)
        assert result.results[0] == 8.0

    def test_critical_windows_never_overlap(self):
        def main(ctx):
            yield from ctx.sync_all()
            entered = yield from ctx.critical_begin()
            enter = ctx.now
            yield from ctx.compute(seconds=2e-6)
            exit_ = ctx.now
            yield from ctx.critical_end()
            assert entered
            return (enter, exit_)

        result = run_small(main, images=6, ipn=3)
        windows = sorted(result.results)
        for (_, exit_a), (enter_b, _) in zip(windows, windows[1:]):
            assert enter_b >= exit_a

    def test_distinct_names_are_independent_constructs(self):
        """Two named CRITICAL blocks never serialize against each other:
        occupants of 'a' and 'b' overlap in time."""
        def main(ctx):
            me = ctx.this_image()
            name = "a" if me <= 2 else "b"
            yield from ctx.sync_all()
            yield from ctx.critical_begin(name)
            enter = ctx.now
            yield from ctx.compute(seconds=5e-6)
            yield from ctx.critical_end(name)
            return (name, enter)

        result = run_small(main, images=4, ipn=2)
        by_name = {}
        for name, enter in result.results:
            by_name.setdefault(name, []).append(enter)
        assert min(by_name["b"]) < max(by_name["a"]) + 5e-6

    def test_reacquisition_across_rounds(self):
        """Every image re-enters the same construct each round — no
        image starves and no stale holder state survives the exit."""
        def main(ctx):
            entered = 0
            for _ in range(3):
                ok = yield from ctx.critical_begin("loop")
                entered += bool(ok)
                yield from ctx.compute(seconds=0.5e-6)
                yield from ctx.critical_end("loop")
            return entered

        result = run_small(main, images=6, ipn=3)
        assert result.results == [3] * 6


class TestFaultSemantics:
    def test_occupant_failstop_reports_stat_unlocked_failed_image(self):
        """Image 3 fail-stops inside the construct; the next entrant gets
        in with ``stat=STAT_UNLOCKED_FAILED_IMAGE`` naming the corpse."""
        def main(ctx):
            me = ctx.this_image()
            yield from ctx.sync_all()
            if me == 3:
                yield from ctx.critical_begin("torn")
                yield from ctx.compute(seconds=30e-6)  # killed at 20us
                yield from ctx.critical_end("torn")
                return None
            if me == 2:
                yield from ctx.compute(seconds=25e-6)
                st = Stat()
                entered = yield from ctx.critical_begin("torn", stat=st)
                # the protected state may be torn, but the construct is
                # ours now: force the matching end to restore invariants
                yield from ctx.critical_end("torn")
                return (entered, st.code, tuple(st.failed_indices))
            # bystanders stay alive past image 2's entry checks
            yield from ctx.compute(seconds=40e-6)
            return None

        result = run_small(main, images=4, faults=FAIL_3_AT_20US)
        assert result.results[1] == (True, STAT_UNLOCKED_FAILED_IMAGE, (3,))

    def test_occupant_failstop_without_stat_is_error_termination(self):
        def main(ctx):
            me = ctx.this_image()
            yield from ctx.sync_all()
            if me == 3:
                yield from ctx.critical_begin()
                yield from ctx.compute(seconds=30e-6)
                yield from ctx.critical_end()
                return None
            if me == 2:
                yield from ctx.compute(seconds=25e-6)
                yield from ctx.critical_begin()
                yield from ctx.critical_end()
                return None
            yield from ctx.compute(seconds=40e-6)
            return None

        with pytest.raises(ProcessFailure,
                           match="STAT_UNLOCKED_FAILED_IMAGE"):
            run_small(main, images=4, faults=FAIL_3_AT_20US)

    def test_clean_run_reports_stat_ok(self):
        def main(ctx):
            st = Stat()
            entered = yield from ctx.critical_begin("ok", stat=st)
            yield from ctx.critical_end("ok", stat=st)
            return (entered, st.code)

        result = run_small(main, images=4)
        assert result.results == [(True, STAT_OK)] * 4
