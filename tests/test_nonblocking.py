"""Tests for non-blocking RMA: overlap, completion semantics, snapshots."""

import numpy as np
import pytest

from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from tests.conftest import run_small


class TestPutNb:
    def test_data_lands_after_wait(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            me = ctx.this_image()
            if me == 1:
                h = yield from ctx.put_nb(a, 2, np.arange(4.0))
                yield from ctx.wait_rma(h)
                yield from ctx.sync_images([2])
            else:
                yield from ctx.sync_images([1])
            return ctx.local(a).copy()

        result = run_small(main, images=2)
        assert (result.results[1] == np.arange(4.0)).all()

    def test_returns_before_blocking_put_would(self):
        """Posting must cost less time than the full blocking put."""

        def main(ctx):
            a = yield from ctx.allocate("big", (100_000,))
            me = ctx.this_image()
            if me != 1:
                yield from ctx.sync_all()
                return None
            t0 = ctx.now
            h = yield from ctx.put_nb(a, 2, np.zeros(100_000))
            post = ctx.now - t0
            yield from ctx.wait_rma(h)
            full = ctx.now - t0
            yield from ctx.sync_all()
            return (post, full)

        post, full = run_small(main, images=2, config=UHCAF_1LEVEL).results[0]
        assert post < full / 5

    def test_overlap_communication_with_compute(self):
        """nb-put + compute + wait finishes sooner than put then compute."""

        def overlapped(ctx):
            a = yield from ctx.allocate("a", (100_000,))
            if ctx.this_image() == 1:
                h = yield from ctx.put_nb(a, 2, np.zeros(100_000))
                yield from ctx.compute(seconds=100e-6)
                yield from ctx.wait_rma(h)
            yield from ctx.sync_all()
            return ctx.now

        def sequential(ctx):
            a = yield from ctx.allocate("a", (100_000,))
            if ctx.this_image() == 1:
                yield from ctx.put(a, 2, np.zeros(100_000))
                yield from ctx.compute(seconds=100e-6)
            yield from ctx.sync_all()
            return ctx.now

        t_overlap = max(run_small(overlapped, images=2).results)
        t_seq = max(run_small(sequential, images=2).results)
        assert t_overlap < t_seq

    def test_source_buffer_snapshot(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (2,))
            if ctx.this_image() == 1:
                buf = np.array([7.0, 8.0])
                h = yield from ctx.put_nb(a, 2, buf)
                buf[:] = -1  # mutate before delivery
                yield from ctx.wait_rma(h)
            yield from ctx.sync_all()
            return ctx.local(a).copy()

        assert (run_small(main, images=2).results[1] == [7.0, 8.0]).all()

    def test_multiple_outstanding_puts(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (8,))
            if ctx.this_image() == 1:
                handles = []
                for i in range(8):
                    h = yield from ctx.put_nb(a, 2, float(i), index=i)
                    handles.append(h)
                for h in handles:
                    yield from ctx.wait_rma(h)
            yield from ctx.sync_all()
            return ctx.local(a).copy()

        assert (run_small(main, images=2).results[1] == np.arange(8.0)).all()


class TestGetNb:
    def test_fetches_remote_value(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (3,))
            ctx.local(a)[:] = ctx.this_image() * 5
            yield from ctx.sync_all()
            h = yield from ctx.get_nb(a, 2)
            value = yield from ctx.wait_rma(h)
            return value.copy()

        result = run_small(main, images=2)
        assert (result.results[0] == 10).all()

    def test_self_get_immediate(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (2,))
            ctx.local(a)[:] = 3
            h = yield from ctx.get_nb(a, ctx.this_image())
            value = yield from ctx.wait_rma(h)
            return (value == 3).all()

        assert all(run_small(main, images=2).results)

    def test_get_with_index(self):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            ctx.local(a)[:] = ctx.this_image() * 100
            yield from ctx.sync_all()
            h = yield from ctx.get_nb(a, 2, index=3)
            value = yield from ctx.wait_rma(h)
            return float(value)

        assert run_small(main, images=2).results[0] == 200.0

    @pytest.mark.parametrize("config", [UHCAF_2LEVEL, UHCAF_1LEVEL])
    def test_nb_and_blocking_get_agree(self, config):
        def main(ctx):
            a = yield from ctx.allocate("a", (4,))
            ctx.local(a)[:] = ctx.this_image()
            yield from ctx.sync_all()
            blocking = yield from ctx.get(a, 2)
            h = yield from ctx.get_nb(a, 2)
            nonblocking = yield from ctx.wait_rma(h)
            return (blocking == nonblocking).all()

        assert all(run_small(main, images=4, config=config).results)
