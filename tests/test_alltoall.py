"""Tests for the all-to-all personalized exchange (and the critical
construct, which shares the extension family)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.sim import ProcessFailure
from tests.conftest import run_small

ALL_A2A = ["linear-flat", "pairwise-flat", "two-level"]


def a2a_config(name, base=UHCAF_2LEVEL):
    return base.with_(alltoall=name)


def run_a2a(strategy, images, ipn, payload_of):
    def main(ctx):
        me = ctx.this_image()
        n = ctx.num_images()
        payloads = {d: payload_of(me, d) for d in range(1, n + 1)}
        out = yield from ctx.co_alltoall(payloads)
        return out

    return run_small(
        main, images=images, ipn=ipn, config=a2a_config(strategy)
    ).results


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ALL_A2A)
    def test_everyone_receives_from_everyone(self, strategy):
        results = run_a2a(strategy, 6, 3, lambda s, d: (s, d))
        for i, out in enumerate(results):
            me = i + 1
            assert out == {s: (s, me) for s in range(1, 7)}

    @pytest.mark.parametrize("strategy", ALL_A2A)
    def test_array_payloads(self, strategy):
        results = run_a2a(strategy, 5, 4, lambda s, d: np.full(2, s * 10 + d))
        for i, out in enumerate(results):
            me = i + 1
            for s in range(1, 6):
                assert (out[s] == s * 10 + me).all()

    @pytest.mark.parametrize("strategy", ALL_A2A)
    def test_single_image(self, strategy):
        results = run_a2a(strategy, 1, 1, lambda s, d: "self")
        assert results == [{1: "self"}]

    @pytest.mark.parametrize("strategy", ALL_A2A)
    def test_list_form_payloads(self, strategy):
        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            out = yield from ctx.co_alltoall([me * 100 + d
                                              for d in range(1, n + 1)])
            return out

        results = run_small(main, images=4, config=a2a_config(strategy)).results
        for i, out in enumerate(results):
            me = i + 1
            assert out == {s: s * 100 + me for s in range(1, 5)}

    @pytest.mark.parametrize("strategy", ALL_A2A)
    def test_on_subteam(self, strategy):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            n = ctx.num_images()
            out = yield from ctx.co_alltoall(
                {d: (ctx.this_image(), d) for d in range(1, n + 1)})
            yield from ctx.end_team()
            return out

        results = run_small(main, images=4, config=a2a_config(strategy)).results
        for out in results:
            assert set(out) == {1, 2}

    def test_missing_payload_key_rejected(self):
        def main(ctx):
            yield from ctx.co_alltoall({1: "x"})  # team size is 2

        with pytest.raises(ProcessFailure, match="one payload per"):
            run_small(main, images=2)

    @given(
        strategy=st.sampled_from(ALL_A2A),
        n=st.integers(min_value=1, max_value=10),
        ipn=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_shape(self, strategy, n, ipn):
        results = run_a2a(strategy, n, ipn, lambda s, d: s * 1000 + d)
        for i, out in enumerate(results):
            me = i + 1
            assert out == {s: s * 1000 + me for s in range(1, n + 1)}


class TestShape:
    def _traffic(self, strategy, images=16, ipn=8):
        def main(ctx):
            n = ctx.num_images()
            payloads = {d: np.zeros(16) for d in range(1, n + 1)}
            yield from ctx.co_alltoall(payloads)

        return run_small(main, images=images, ipn=ipn,
                         config=a2a_config(strategy)).traffic

    def test_two_level_aggregation_cuts_wire_messages(self):
        """Flat alltoall crosses the wire once per image pair; two-level
        once per node pair per aggregation round."""
        flat = self._traffic("pairwise-flat")
        two = self._traffic("two-level")
        # 16 images on 2 nodes: flat crosses 8*8*2 = 128 times;
        # two-level: leaders exchange once each way = 2 messages.
        assert flat.inter_messages >= 64
        assert two.inter_messages == 2
        # the bytes still have to flow — aggregation trades messages,
        # not volume (within bundling overhead)
        assert two.inter_bytes >= 16 * 8 * 64  # 64 cross-node payloads

    def test_two_level_faster_on_colocated_images(self):
        def bench(strategy):
            def main(ctx):
                n = ctx.num_images()
                payloads = {d: np.zeros(8) for d in range(1, n + 1)}
                yield from ctx.co_alltoall(payloads)
                t0 = ctx.now
                for _ in range(2):
                    yield from ctx.co_alltoall(payloads)
                return ctx.now - t0

            return max(run_small(main, images=16, ipn=8,
                                 config=a2a_config(strategy)).results)

        assert bench("two-level") < bench("pairwise-flat")
        assert bench("two-level") < bench("linear-flat")


class TestCritical:
    def test_critical_serializes(self):
        def main(ctx):
            yield from ctx.critical_begin()
            enter = ctx.now
            yield from ctx.compute(seconds=2e-6)
            exit_ = ctx.now
            yield from ctx.critical_end()
            return (enter, exit_)

        result = run_small(main, images=6, ipn=3)
        windows = sorted(result.results)
        for (_, ea), (eb, _) in zip(windows, windows[1:]):
            assert eb >= ea

    def test_named_criticals_are_independent(self):
        def main(ctx):
            me = ctx.this_image()
            name = "A" if me <= 2 else "B"
            yield from ctx.critical_begin(name)
            enter = ctx.now
            yield from ctx.compute(seconds=5e-6)
            yield from ctx.critical_end(name)
            return (name, enter)

        result = run_small(main, images=4, ipn=2)
        by_name = {}
        for name, enter in result.results:
            by_name.setdefault(name, []).append(enter)
        # the two constructs overlapped rather than serializing globally
        assert min(by_name["B"]) < max(by_name["A"]) + 5e-6

    def test_unbalanced_end_rejected(self):
        def main(ctx):
            yield from ctx.critical_begin()
            yield from ctx.critical_end()
            yield from ctx.critical_end()

        with pytest.raises(ProcessFailure):
            run_small(main, images=1, ipn=1)
