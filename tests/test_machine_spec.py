"""Unit tests for machine specifications."""

import pytest

from repro.machine import MachineSpec, NetworkSpec, NodeSpec, paper_cluster


class TestNodeSpec:
    def test_defaults_match_paper_node(self):
        node = NodeSpec()
        assert node.cores == 8
        assert node.sockets == 2

    def test_cores_per_socket(self):
        assert NodeSpec(cores=8, sockets=2).cores_per_socket == 4

    def test_socket_of_fills_socket_major(self):
        node = NodeSpec(cores=8, sockets=2)
        assert [node.socket_of(c) for c in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_socket_of_out_of_range(self):
        with pytest.raises(ValueError):
            NodeSpec().socket_of(8)

    def test_socket_of_negative(self):
        with pytest.raises(ValueError):
            NodeSpec().socket_of(-1)

    def test_sockets_must_divide_cores(self):
        with pytest.raises(ValueError, match="divide"):
            NodeSpec(cores=6, sockets=4)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)

    def test_intra_socket_cheaper_than_cross_socket(self):
        node = NodeSpec()
        assert node.intra_socket_latency < node.smp_latency


class TestNetworkSpec:
    def test_wire_time_is_latency_plus_serialization(self):
        net = NetworkSpec(latency=2e-6, bandwidth=1e9)
        assert net.wire_time(0) == 2e-6
        assert net.wire_time(1000) == pytest.approx(2e-6 + 1e-6)

    def test_inject_time_is_gap_plus_per_byte(self):
        net = NetworkSpec(gap=0.4e-6, inject_cost_per_byte=1e-9)
        assert net.inject_time(0) == 0.4e-6
        assert net.inject_time(1000) == pytest.approx(0.4e-6 + 1e-6)

    def test_defaults_are_infiniband_class(self):
        net = NetworkSpec()
        assert 1e-6 <= net.latency <= 5e-6
        assert net.bandwidth >= 1e9


class TestMachineSpec:
    def test_paper_cluster_shape(self):
        spec = paper_cluster()
        assert spec.num_nodes == 44
        assert spec.total_cores == 352

    def test_with_nodes_changes_only_node_count(self):
        spec = paper_cluster().with_nodes(8)
        assert spec.num_nodes == 8
        assert spec.node == paper_cluster().node

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(num_nodes=0, node=NodeSpec(), network=NetworkSpec())

    def test_intranode_order_of_magnitude_cheaper_than_network(self):
        """The calibration invariant the whole paper leans on."""
        spec = paper_cluster()
        assert spec.node.smp_latency * 5 < spec.network.latency
