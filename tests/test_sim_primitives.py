"""Unit tests for SimEvent, Cell, and Resource."""

import pytest

from repro.sim import Cell, Engine, Resource, SimEvent


@pytest.fixture
def eng():
    return Engine()


class TestSimEvent:
    def test_not_triggered_initially(self, eng):
        assert SimEvent(eng).triggered is False

    def test_value_before_trigger_raises(self, eng):
        with pytest.raises(RuntimeError, match="before trigger"):
            SimEvent(eng, name="e").value

    def test_trigger_delivers_value_to_waiters(self, eng):
        ev = SimEvent(eng)
        got = []
        ev.on_trigger(got.append)
        ev.trigger(42)
        assert got == [42]
        assert ev.value == 42

    def test_late_registration_fires_immediately(self, eng):
        ev = SimEvent(eng)
        ev.trigger("x")
        got = []
        ev.on_trigger(got.append)
        assert got == ["x"]

    def test_double_trigger_raises(self, eng):
        ev = SimEvent(eng)
        ev.trigger()
        with pytest.raises(RuntimeError, match="twice"):
            ev.trigger()

    def test_multiple_waiters_all_fire_in_order(self, eng):
        ev = SimEvent(eng)
        got = []
        ev.on_trigger(lambda v: got.append("a"))
        ev.on_trigger(lambda v: got.append("b"))
        ev.trigger()
        assert got == ["a", "b"]


class TestCell:
    def test_initial_value(self, eng):
        assert Cell(eng, 7).value == 7

    def test_set_updates_value(self, eng):
        c = Cell(eng)
        c.set(3)
        assert c.value == 3

    def test_add_returns_new_value(self, eng):
        c = Cell(eng, 10)
        assert c.add(5) == 15

    def test_wait_until_fires_when_predicate_becomes_true(self, eng):
        c = Cell(eng, 0)
        got = []
        key = c.wait_until(lambda v: v >= 3, got.append)
        assert key is not None
        c.add(1)
        c.add(1)
        assert got == []
        c.add(1)
        assert got == [3]

    def test_wait_until_fires_immediately_if_already_true(self, eng):
        c = Cell(eng, 5)
        got = []
        key = c.wait_until(lambda v: v >= 3, got.append)
        assert key is None
        assert got == [5]

    def test_watcher_removed_after_firing(self, eng):
        c = Cell(eng, 0)
        got = []
        c.wait_until(lambda v: v >= 1, got.append)
        c.add(1)
        c.add(1)
        assert got == [1]  # fired once only

    def test_cancel_wait(self, eng):
        c = Cell(eng, 0)
        got = []
        key = c.wait_until(lambda v: v >= 1, got.append)
        c.cancel_wait(key)
        c.add(1)
        assert got == []

    def test_multiple_watchers_fire_in_registration_order(self, eng):
        c = Cell(eng, 0)
        got = []
        c.wait_until(lambda v: v >= 1, lambda v: got.append("first"))
        c.wait_until(lambda v: v >= 1, lambda v: got.append("second"))
        c.set(1)
        assert got == ["first", "second"]

    def test_callback_may_reregister(self, eng):
        c = Cell(eng, 0)
        got = []

        def again(v):
            got.append(v)
            if v < 3:
                c.wait_until(lambda x, t=v: x > t, again)

        c.wait_until(lambda v: v >= 1, again)
        c.set(1)
        c.set(2)
        c.set(3)
        assert got == [1, 2, 3]

    def test_callback_writing_cell_does_not_lose_watchers(self, eng):
        c = Cell(eng, 0)
        got = []
        c.wait_until(lambda v: v == 1, lambda v: c.set(2))
        c.wait_until(lambda v: v == 2, got.append)
        c.set(1)
        assert got == [2]


class TestResource:
    def test_capacity_must_be_positive(self, eng):
        with pytest.raises(ValueError):
            Resource(eng, capacity=0)

    def test_grant_immediate_when_free(self, eng):
        r = Resource(eng)
        assert r.acquire().triggered is True
        assert r.in_use == 1

    def test_queueing_when_full(self, eng):
        r = Resource(eng, capacity=1)
        r.acquire()
        second = r.acquire()
        assert second.triggered is False
        assert r.queue_length == 1

    def test_release_grants_fifo(self, eng):
        r = Resource(eng, capacity=1)
        r.acquire()
        order = []
        r.acquire().on_trigger(lambda _: order.append("first"))
        r.acquire().on_trigger(lambda _: order.append("second"))
        r.release()
        r.release()
        assert order == ["first", "second"]

    def test_release_idle_raises(self, eng):
        with pytest.raises(RuntimeError, match="idle"):
            Resource(eng, name="r").release()

    def test_capacity_two_grants_two(self, eng):
        r = Resource(eng, capacity=2)
        assert r.acquire().triggered
        assert r.acquire().triggered
        assert not r.acquire().triggered

    def test_occupy_serializes_holders(self, eng):
        r = Resource(eng, capacity=1)
        finish_times = []
        for _ in range(3):
            r.occupy(1.0).on_trigger(lambda _: finish_times.append(eng.now))
        eng.run()
        assert finish_times == [1.0, 2.0, 3.0]

    def test_occupy_then_callback_runs_at_release(self, eng):
        r = Resource(eng)
        marks = []
        r.occupy(2.0, then=lambda: marks.append(eng.now))
        eng.run()
        assert marks == [2.0]

    def test_grant_statistics(self, eng):
        r = Resource(eng, capacity=1)
        for _ in range(4):
            r.occupy(1.0)
        eng.run()
        assert r.total_grants == 4
        assert r.peak_queue == 3

    def test_parallel_capacity_overlaps_holds(self, eng):
        r = Resource(eng, capacity=2)
        finish = []
        for _ in range(4):
            r.occupy(1.0).on_trigger(lambda _: finish.append(eng.now))
        eng.run()
        assert finish == [1.0, 1.0, 2.0, 2.0]
