"""Content fingerprints and the on-disk result cache.

The cache's one safety property: it may only return a value for *the
same computation* — same callable, same arguments, same source tree.
So the fingerprint tests focus on (a) stability across calls, (b)
sensitivity to every component, and (c) refusing to key anything whose
identity is not derivable from content (a wrong key is strictly worse
than no cache).
"""

import functools
import pickle

import numpy as np
import pytest

from repro.exec import (
    ResultCache,
    TaskSpec,
    UnstableFingerprint,
    run_tasks,
    source_fingerprint,
    stable_fingerprint,
    stable_repr,
)
from repro.exec.cache import invalidate_fingerprint_memo
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL


def job(x, scale=1):
    return x * scale


# ----------------------------------------------------------------------
class TestStableRepr:
    def test_primitives(self):
        assert stable_repr(3) == "3"
        assert stable_repr("hi") == "'hi'"
        assert stable_repr(None) == "None"
        assert stable_repr(True) == "True"

    def test_floats_are_exact(self):
        # hex form: no formatting round-off can alias two close floats
        assert stable_repr(0.1) == (0.1).hex()
        assert stable_repr(float("nan")) == "float:nan"

    def test_container_determinism(self):
        assert stable_repr({"b": 1, "a": 2}) == stable_repr({"a": 2, "b": 1})
        assert stable_repr({3, 1, 2}) == stable_repr({2, 3, 1})
        assert stable_repr([1, 2]) != stable_repr((1, 2))

    def test_ndarray_content_keyed(self):
        a = np.arange(4.0)
        b = np.arange(4.0)
        c = np.arange(4.0) + 1
        assert stable_repr(a) == stable_repr(b)
        assert stable_repr(a) != stable_repr(c)

    def test_dataclass_by_fields(self):
        assert stable_repr(UHCAF_2LEVEL) == stable_repr(UHCAF_2LEVEL)
        assert stable_repr(UHCAF_2LEVEL) != stable_repr(UHCAF_1LEVEL)

    def test_partial_by_target_and_args(self):
        p1 = functools.partial(job, 3, scale=2)
        p2 = functools.partial(job, 3, scale=2)
        p3 = functools.partial(job, 4, scale=2)
        assert stable_repr(p1) == stable_repr(p2)
        assert stable_repr(p1) != stable_repr(p3)

    def test_identity_reprs_refused(self):
        with pytest.raises(UnstableFingerprint):
            stable_repr(object())
        with pytest.raises(UnstableFingerprint):
            stable_repr(lambda: None)


class TestStableFingerprint:
    def test_stable_across_calls(self):
        a = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        b = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        assert a == b

    def test_sensitive_to_every_component(self):
        base = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        assert stable_fingerprint(TaskSpec(job, (4,), {"scale": 2})) != base
        assert stable_fingerprint(TaskSpec(job, (3,), {"scale": 3})) != base

    def test_explicit_cache_key_override(self):
        a = stable_fingerprint(TaskSpec(job, (1,), cache_key="same"))
        b = stable_fingerprint(TaskSpec(job, (2,), cache_key="same"))
        assert a == b


# ----------------------------------------------------------------------
class TestSourceFingerprint:
    def test_tracks_file_content(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1\n")
        invalidate_fingerprint_memo()
        before = source_fingerprint([tmp_path])
        src.write_text("X = 2\n")
        invalidate_fingerprint_memo()
        after = source_fingerprint([tmp_path])
        assert before != after

    def test_stat_scan_revalidates_without_explicit_invalidation(self, tmp_path):
        """An ordinary edit (mtime/size change) is picked up by the memo's
        stat-scan guard — no ``invalidate_fingerprint_memo()`` required.
        This is what lets a long-lived server see source changes."""
        src = tmp_path / "mod.py"
        src.write_text("X = 1\n")
        before = source_fingerprint([tmp_path])
        src.write_text("X = 2\n")  # no invalidation call on purpose
        assert source_fingerprint([tmp_path]) != before

    def test_file_set_change_revalidates(self, tmp_path):
        (tmp_path / "a.py").write_text("A = 1\n")
        before = source_fingerprint([tmp_path])
        (tmp_path / "b.py").write_text("B = 1\n")
        middle = source_fingerprint([tmp_path])
        assert middle != before
        (tmp_path / "b.py").unlink()
        assert source_fingerprint([tmp_path]) == before

    def test_memoized_when_stats_unchanged(self, tmp_path):
        """The scan's documented blind spot: a same-size rewrite with the
        mtime faked back to the original is invisible — the memo serves
        the old digest until explicitly invalidated."""
        import os

        src = tmp_path / "mod.py"
        src.write_text("X = 1\n")
        before = source_fingerprint([tmp_path])
        st = src.stat()
        src.write_text("X = 9\n")  # same size
        os.utime(src, ns=(st.st_atime_ns, st.st_mtime_ns))
        assert source_fingerprint([tmp_path]) == before  # memo, by design
        invalidate_fingerprint_memo()
        assert source_fingerprint([tmp_path]) != before


# ----------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        task = TaskSpec(job, (21,), {"scale": 2})
        key = cache.task_key(task)
        assert key is not None
        hit, _ = cache.get(key)
        assert not hit
        assert cache.put(key, 42)
        hit, value = cache.get(key)
        assert hit and value == 42
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.task_key(TaskSpec(job, (1,)))
        cache.put(key, "fine")
        # clobber the entry on disk
        [path] = list((tmp_path / cache.namespace).rglob("*.pkl"))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.entry_count() == 0  # dropped, not left to rot

    def test_unkeyable_task_gets_no_key(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.task_key(TaskSpec(lambda: 1)) is None
        assert cache.unkeyed == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(3):
            cache.put(cache.task_key(TaskSpec(job, (i,))), i)
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_namespaces_are_disjoint(self, tmp_path):
        a = ResultCache(root=tmp_path, namespace="a")
        b = ResultCache(root=tmp_path, namespace="b")
        key = a.task_key(TaskSpec(job, (1,)))
        a.put(key, "from-a")
        hit, _ = b.get(key)
        assert not hit

    def test_transient_oserror_is_a_miss_that_keeps_the_entry(
            self, tmp_path, monkeypatch):
        """A read that fails with a *transient* I/O error (concurrent
        ``os.replace`` mid-read, momentary EPERM) must not destroy the
        entry — it is almost certainly valid and the next read gets it."""
        import builtins

        cache = ResultCache(root=tmp_path)
        key = cache.task_key(TaskSpec(job, (7,)))
        cache.put(key, 49)
        entry = cache._path(key)
        real_open = builtins.open

        def flaky_open(file, *args, **kwargs):
            if str(file) == str(entry):
                raise PermissionError(13, "transient EPERM", str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", flaky_open)
        hit, _ = cache.get(key)
        assert not hit
        monkeypatch.undo()
        assert cache.transient_errors == 1
        assert cache.corrupt == 0
        assert entry.exists()  # NOT unlinked
        hit, value = cache.get(key)  # next reader is fine
        assert hit and value == 49

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.task_key(TaskSpec(job, (1,)))
        cache.put(key, 1)
        # simulate a put() that died between mkstemp and os.replace
        orphan = cache._path(key).parent / "orphanXYZ.tmp"
        orphan.write_bytes(b"half-written")
        assert cache.clear() == 1
        assert not orphan.exists()
        assert cache.total_bytes() == 0


# ----------------------------------------------------------------------
class TestEviction:
    def _fill(self, cache, n, start=0):
        for i in range(start, start + n):
            cache.put(cache.task_key(TaskSpec(job, (i,))), b"x" * 100)

    def test_aged_tmp_orphans_swept_fresh_ones_kept(self, tmp_path):
        import os
        import time as _time

        cache = ResultCache(root=tmp_path)
        self._fill(cache, 1)
        parent = cache._dir() / cache.generation()
        old = parent / "dead.tmp"
        old.write_bytes(b"crashed writer debris")
        past = _time.time() - 3600
        os.utime(old, (past, past))
        fresh = parent / "live.tmp"
        fresh.write_bytes(b"in-progress put")
        out = cache.evict(tmp_grace_s=300.0)
        assert out["tmp_removed"] == 1
        assert not old.exists()
        assert fresh.exists()  # inside the grace window: a live writer
        assert cache.entry_count() == 1  # entries untouched

    def test_stale_generations_swept_wholesale(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        (src_root / "mod.py").write_text("X = 1\n")
        cache = ResultCache(root=tmp_path / "c", source_roots=[src_root])
        self._fill(cache, 3)
        gen1 = cache.generation()
        (src_root / "mod.py").write_text("X = 22\n")
        assert cache.generation() != gen1  # stat scan saw the edit
        self._fill(cache, 3, start=10)
        assert cache.entry_count() == 6
        out = cache.evict()
        assert out["stale_generations"] == 1
        assert out["entries_removed"] == 3
        assert cache.entry_count() == 3
        assert not (cache._dir() / gen1).exists()  # dirs pruned too

    def test_disk_bound_holds_across_generation_churn(self, tmp_path):
        """Three generations of source churn with a byte bound: usage
        must stay bounded — stale generations can never hit again, so a
        long-lived server must not let them pile up."""
        src_root = tmp_path / "src"
        src_root.mkdir()
        bound = 3000
        for gen in range(3):
            (src_root / "mod.py").write_text(f"X = {gen}\n" * (gen + 1))
            cache = ResultCache(root=tmp_path / "c", source_roots=[src_root])
            self._fill(cache, 12, start=gen * 100)
            cache.evict(max_bytes=bound)
            assert cache.total_bytes() <= bound
        # current-generation entries survive to serve hits
        assert cache.entry_count() > 0
        key = cache.task_key(TaskSpec(job, (2 * 100 + 11,)))
        hit, _ = cache.get(key)
        assert hit

    def test_max_entries_bound(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        self._fill(cache, 8)
        out = cache.evict(max_entries=3)
        assert out["entries_removed"] == 5
        assert cache.entry_count() == 3
        assert cache.evicted == 5


# ----------------------------------------------------------------------
class TestRunTasksCaching:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        tasks = lambda: [TaskSpec(job, (i,), {"scale": 3}) for i in range(6)]  # noqa: E731
        cold = run_tasks(tasks(), jobs=1, cache=cache)
        assert cache.puts == 6
        warm_cache = ResultCache(root=tmp_path)
        warm = run_tasks(tasks(), jobs=1, cache=warm_cache)
        assert warm_cache.hits == 6
        assert [r.value for r in warm] == [r.value for r in cold]
        assert all(r.cached for r in warm)

    def test_source_change_invalidates(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        (src_root / "mod.py").write_text("X = 1\n")
        invalidate_fingerprint_memo()
        cache = ResultCache(root=tmp_path / "cache", source_roots=[src_root])
        run_tasks([TaskSpec(job, (5,))], jobs=1, cache=cache)
        assert cache.puts == 1

        (src_root / "mod.py").write_text("X = 2\n")
        invalidate_fingerprint_memo()
        fresh = ResultCache(root=tmp_path / "cache", source_roots=[src_root])
        run_tasks([TaskSpec(job, (5,))], jobs=1, cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        invalidate_fingerprint_memo()

    def test_unkeyable_tasks_run_every_time(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        make = lambda: [TaskSpec(lambda: 7)]  # noqa: E731
        first = run_tasks(make(), jobs=1, cache=cache)
        second = run_tasks(make(), jobs=1, cache=cache)
        assert first[0].value == second[0].value == 7
        assert cache.hits == 0 and cache.puts == 0

    def test_failed_tasks_never_cached(self, tmp_path):
        from tests.test_exec_pool import boom

        cache = ResultCache(root=tmp_path)
        results = run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=cache)
        assert not results[0].ok
        assert cache.puts == 0
        assert cache.entry_count() == 0

    def test_errors_rerun_after_failure(self, tmp_path):
        from tests.test_exec_pool import boom

        cache = ResultCache(root=tmp_path)
        run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=cache)
        again = ResultCache(root=tmp_path)
        results = run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=again)
        assert not results[0].ok  # re-executed, same verdict, not served
        assert again.hits == 0


# ----------------------------------------------------------------------
class TestCachedValueFidelity:
    def test_pickle_roundtrip_preserves_equality(self, tmp_path):
        """What goes in is what comes out — byte-identical re-render."""
        cache = ResultCache(root=tmp_path)
        value = {"table": [1.5, float("inf")], "arr": (1, 2, 3)}
        key = cache.task_key(TaskSpec(job, (9,)))
        cache.put(key, value)
        _, out = cache.get(key)
        assert out == value
        assert pickle.dumps(out) == pickle.dumps(value)
