"""Content fingerprints and the on-disk result cache.

The cache's one safety property: it may only return a value for *the
same computation* — same callable, same arguments, same source tree.
So the fingerprint tests focus on (a) stability across calls, (b)
sensitivity to every component, and (c) refusing to key anything whose
identity is not derivable from content (a wrong key is strictly worse
than no cache).
"""

import functools
import pickle

import numpy as np
import pytest

from repro.exec import (
    ResultCache,
    TaskSpec,
    UnstableFingerprint,
    run_tasks,
    source_fingerprint,
    stable_fingerprint,
    stable_repr,
)
from repro.exec.cache import invalidate_fingerprint_memo
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL


def job(x, scale=1):
    return x * scale


# ----------------------------------------------------------------------
class TestStableRepr:
    def test_primitives(self):
        assert stable_repr(3) == "3"
        assert stable_repr("hi") == "'hi'"
        assert stable_repr(None) == "None"
        assert stable_repr(True) == "True"

    def test_floats_are_exact(self):
        # hex form: no formatting round-off can alias two close floats
        assert stable_repr(0.1) == (0.1).hex()
        assert stable_repr(float("nan")) == "float:nan"

    def test_container_determinism(self):
        assert stable_repr({"b": 1, "a": 2}) == stable_repr({"a": 2, "b": 1})
        assert stable_repr({3, 1, 2}) == stable_repr({2, 3, 1})
        assert stable_repr([1, 2]) != stable_repr((1, 2))

    def test_ndarray_content_keyed(self):
        a = np.arange(4.0)
        b = np.arange(4.0)
        c = np.arange(4.0) + 1
        assert stable_repr(a) == stable_repr(b)
        assert stable_repr(a) != stable_repr(c)

    def test_dataclass_by_fields(self):
        assert stable_repr(UHCAF_2LEVEL) == stable_repr(UHCAF_2LEVEL)
        assert stable_repr(UHCAF_2LEVEL) != stable_repr(UHCAF_1LEVEL)

    def test_partial_by_target_and_args(self):
        p1 = functools.partial(job, 3, scale=2)
        p2 = functools.partial(job, 3, scale=2)
        p3 = functools.partial(job, 4, scale=2)
        assert stable_repr(p1) == stable_repr(p2)
        assert stable_repr(p1) != stable_repr(p3)

    def test_identity_reprs_refused(self):
        with pytest.raises(UnstableFingerprint):
            stable_repr(object())
        with pytest.raises(UnstableFingerprint):
            stable_repr(lambda: None)


class TestStableFingerprint:
    def test_stable_across_calls(self):
        a = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        b = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        assert a == b

    def test_sensitive_to_every_component(self):
        base = stable_fingerprint(TaskSpec(job, (3,), {"scale": 2}))
        assert stable_fingerprint(TaskSpec(job, (4,), {"scale": 2})) != base
        assert stable_fingerprint(TaskSpec(job, (3,), {"scale": 3})) != base

    def test_explicit_cache_key_override(self):
        a = stable_fingerprint(TaskSpec(job, (1,), cache_key="same"))
        b = stable_fingerprint(TaskSpec(job, (2,), cache_key="same"))
        assert a == b


# ----------------------------------------------------------------------
class TestSourceFingerprint:
    def test_tracks_file_content(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1\n")
        invalidate_fingerprint_memo()
        before = source_fingerprint([tmp_path])
        src.write_text("X = 2\n")
        invalidate_fingerprint_memo()
        after = source_fingerprint([tmp_path])
        assert before != after

    def test_memoized_within_process(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1\n")
        invalidate_fingerprint_memo()
        before = source_fingerprint([tmp_path])
        src.write_text("X = 2\n")  # no invalidation: memo still serves
        assert source_fingerprint([tmp_path]) == before
        invalidate_fingerprint_memo()


# ----------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        task = TaskSpec(job, (21,), {"scale": 2})
        key = cache.task_key(task)
        assert key is not None
        hit, _ = cache.get(key)
        assert not hit
        assert cache.put(key, 42)
        hit, value = cache.get(key)
        assert hit and value == 42
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.task_key(TaskSpec(job, (1,)))
        cache.put(key, "fine")
        # clobber the entry on disk
        [path] = list((tmp_path / cache.namespace).rglob("*.pkl"))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.entry_count() == 0  # dropped, not left to rot

    def test_unkeyable_task_gets_no_key(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.task_key(TaskSpec(lambda: 1)) is None
        assert cache.unkeyed == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(3):
            cache.put(cache.task_key(TaskSpec(job, (i,))), i)
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_namespaces_are_disjoint(self, tmp_path):
        a = ResultCache(root=tmp_path, namespace="a")
        b = ResultCache(root=tmp_path, namespace="b")
        key = a.task_key(TaskSpec(job, (1,)))
        a.put(key, "from-a")
        hit, _ = b.get(key)
        assert not hit


# ----------------------------------------------------------------------
class TestRunTasksCaching:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        tasks = lambda: [TaskSpec(job, (i,), {"scale": 3}) for i in range(6)]  # noqa: E731
        cold = run_tasks(tasks(), jobs=1, cache=cache)
        assert cache.puts == 6
        warm_cache = ResultCache(root=tmp_path)
        warm = run_tasks(tasks(), jobs=1, cache=warm_cache)
        assert warm_cache.hits == 6
        assert [r.value for r in warm] == [r.value for r in cold]
        assert all(r.cached for r in warm)

    def test_source_change_invalidates(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        (src_root / "mod.py").write_text("X = 1\n")
        invalidate_fingerprint_memo()
        cache = ResultCache(root=tmp_path / "cache", source_roots=[src_root])
        run_tasks([TaskSpec(job, (5,))], jobs=1, cache=cache)
        assert cache.puts == 1

        (src_root / "mod.py").write_text("X = 2\n")
        invalidate_fingerprint_memo()
        fresh = ResultCache(root=tmp_path / "cache", source_roots=[src_root])
        run_tasks([TaskSpec(job, (5,))], jobs=1, cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        invalidate_fingerprint_memo()

    def test_unkeyable_tasks_run_every_time(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        make = lambda: [TaskSpec(lambda: 7)]  # noqa: E731
        first = run_tasks(make(), jobs=1, cache=cache)
        second = run_tasks(make(), jobs=1, cache=cache)
        assert first[0].value == second[0].value == 7
        assert cache.hits == 0 and cache.puts == 0

    def test_failed_tasks_never_cached(self, tmp_path):
        from tests.test_exec_pool import boom

        cache = ResultCache(root=tmp_path)
        results = run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=cache)
        assert not results[0].ok
        assert cache.puts == 0
        assert cache.entry_count() == 0

    def test_errors_rerun_after_failure(self, tmp_path):
        from tests.test_exec_pool import boom

        cache = ResultCache(root=tmp_path)
        run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=cache)
        again = ResultCache(root=tmp_path)
        results = run_tasks([TaskSpec(boom, (1,))], jobs=1, cache=again)
        assert not results[0].ok  # re-executed, same verdict, not served
        assert again.hits == 0


# ----------------------------------------------------------------------
class TestCachedValueFidelity:
    def test_pickle_roundtrip_preserves_equality(self, tmp_path):
        """What goes in is what comes out — byte-identical re-render."""
        cache = ResultCache(root=tmp_path)
        value = {"table": [1.5, float("inf")], "arr": (1, 2, 3)}
        key = cache.task_key(TaskSpec(job, (9,)))
        cache.put(key, value)
        _, out = cache.get(key)
        assert out == value
        assert pickle.dumps(out) == pickle.dumps(value)
