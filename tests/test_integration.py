"""Integration tests: whole programs mixing the runtime's features, run
on every stack configuration — the cross-module safety net."""

import numpy as np
import pytest

from repro.runtime.config import (
    CAF20_GFORTRAN,
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    NAMED_CONFIGS,
    OPENMPI_GCC,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)
from tests.conftest import run_small

ALL_CONFIGS = list(NAMED_CONFIGS.values())


class TestEveryStack:
    """The same nontrivial program must produce identical *results* on
    every runtime configuration — only simulated time may differ."""

    @staticmethod
    def program(ctx):
        me = ctx.this_image()
        n = ctx.num_images()
        a = yield from ctx.allocate("a", (4,))
        ctx.local(a)[:] = me
        yield from ctx.sync_all()
        yield from ctx.put(a, me % n + 1, float(me), index=0)
        yield from ctx.sync_all()
        received = float(ctx.local(a)[0])
        total = yield from ctx.co_sum(me)
        big = yield from ctx.co_max(np.array([me, -me]))
        team = yield from ctx.form_team(1 if me <= n // 2 else 2)
        yield from ctx.change_team(team)
        team_sum = yield from ctx.co_sum(ctx.this_image())
        gathered = yield from ctx.co_allgather(ctx.this_image() * 2)
        yield from ctx.end_team()
        bcast = yield from ctx.co_broadcast(
            "hello" if me == 2 else None, source_image=2)
        return (received, int(total), big.tolist(), int(team_sum),
                gathered, bcast)

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_results_identical_across_stacks(self, config):
        result = run_small(self.program, images=8, ipn=4, config=config)
        reference = run_small(self.program, images=8, ipn=4,
                              config=UHCAF_2LEVEL)
        assert result.results == reference.results

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_deterministic_rerun(self, config):
        a = run_small(self.program, images=8, ipn=4, config=config)
        b = run_small(self.program, images=8, ipn=4, config=config)
        assert a.results == b.results
        assert a.time == b.time
        assert a.traffic == b.traffic

    def test_hierarchy_aware_stack_is_fastest_caf(self):
        times = {
            cfg.name: run_small(self.program, images=16, ipn=8,
                                config=cfg).time
            for cfg in ALL_CONFIGS
        }
        # fastest of every GASNet-based CAF stack...
        caf = ("uhcaf-2level", "uhcaf-1level", "caf2.0-openuh",
               "caf2.0-gfortran", "gasnet-ib-dissemination")
        assert times["uhcaf-2level"] == min(times[name] for name in caf)
        # ...and an order of magnitude over the unaware GASNet stacks
        assert times["uhcaf-1level"] > 10 * times["uhcaf-2level"]
        # the MPI-conduit stack may edge it on put-heavy work (MPI's thin
        # two-sided path), but only marginally — the paper's
        # "competitive with MPI" claim
        assert times["uhcaf-2level"] < 1.5 * times["openmpi-gcc"]


class TestNestedTeams:
    def test_three_levels_of_teams_with_collectives(self):
        def main(ctx):
            me = ctx.this_image()
            sums = []
            l1 = yield from ctx.form_team(1 if me <= 8 else 2)
            yield from ctx.change_team(l1)
            sums.append((yield from ctx.co_sum(1)))
            l2 = yield from ctx.form_team(1 if ctx.this_image() <= 4 else 2)
            yield from ctx.change_team(l2)
            sums.append((yield from ctx.co_sum(1)))
            l3 = yield from ctx.form_team(1 if ctx.this_image() <= 2 else 2)
            yield from ctx.change_team(l3)
            sums.append((yield from ctx.co_sum(1)))
            ids = (ctx.team_id(), ctx.get_team("parent").team_number)
            yield from ctx.end_team()
            yield from ctx.end_team()
            yield from ctx.end_team()
            sums.append((yield from ctx.co_sum(1)))
            return (tuple(sums), ids)

        result = run_small(main, images=16, ipn=8)
        assert all(r[0] == (8, 4, 2, 16) for r in result.results)

    def test_sibling_teams_progress_independently(self):
        """One team barriers many times while the other computes — no
        cross-team interference, and no deadlock."""

        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me % 2 else 2)
            yield from ctx.change_team(team)
            if ctx.team_id() == 1:
                for _ in range(20):
                    yield from ctx.sync_all()
            else:
                yield from ctx.compute(seconds=1e-4)
                yield from ctx.sync_all()
            yield from ctx.end_team()
            return True

        assert all(run_small(main, images=8, ipn=4).results)

    def test_team_scoped_coarray_and_collectives(self):
        def main(ctx):
            me = ctx.this_image()
            team = yield from ctx.form_team(1 if me <= 2 else 2)
            yield from ctx.change_team(team)
            local = yield from ctx.allocate("scratch", (2,))
            ctx.local(local)[:] = ctx.this_image() * 10
            yield from ctx.sync_all()
            # put to teammate using team-relative index
            peer = ctx.this_image() % ctx.num_images() + 1
            yield from ctx.put(local, peer, float(ctx.this_image()), index=1)
            yield from ctx.sync_all()
            value = float(ctx.local(local)[1])
            yield from ctx.end_team()
            return value

        result = run_small(main, images=4, ipn=2)
        assert result.results == [2.0, 1.0, 2.0, 1.0]


class TestMixedSynchronization:
    def test_events_locks_atomics_interplay(self):
        """A tiny job queue: image 1 posts work items guarded by a lock,
        workers claim via fetch_add and signal completion via events."""

        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            next_item = yield from ctx.atomic_var("next")
            done = yield from ctx.event_var("done")
            claimed = 0
            while True:
                item = yield from ctx.atomic_fetch_add(next_item, 1, 1)
                if item >= 10:
                    break
                claimed += 1
                yield from ctx.compute(seconds=1e-6)
            yield from ctx.event_post(done, 1)
            if me == 1:
                yield from ctx.event_wait(done, until_count=n)
            yield from ctx.sync_all()
            total = yield from ctx.co_sum(claimed)
            return (claimed, int(total))

        result = run_small(main, images=4, ipn=2)
        assert all(r[1] == 10 for r in result.results)

    def test_halo_exchange_pattern(self):
        """sync images-based nearest-neighbour exchange converges to the
        analytic fixed point."""

        def main(ctx):
            me = ctx.this_image()
            n = ctx.num_images()
            cell = yield from ctx.allocate("cell", (3,))  # [left, mine, right]
            ctx.local(cell)[1] = float(me)
            yield from ctx.sync_all()
            for _ in range(50):
                mine = float(ctx.local(cell)[1])
                if me > 1:
                    yield from ctx.put(cell, me - 1, mine, index=2)
                if me < n:
                    yield from ctx.put(cell, me + 1, mine, index=0)
                peers = [i for i in (me - 1, me + 1) if 1 <= i <= n]
                yield from ctx.sync_images(peers)
                left = float(ctx.local(cell)[0]) if me > 1 else mine
                right = float(ctx.local(cell)[2]) if me < n else mine
                ctx.local(cell)[1] = (left + mine + right) / 3.0
                yield from ctx.sync_images(peers)
            return float(ctx.local(cell)[1])

        result = run_small(main, images=6, ipn=3)
        mean = sum(range(1, 7)) / 6
        assert all(abs(v - mean) < 0.2 for v in result.results)

    def test_producer_consumer_events_no_barrier(self):
        def main(ctx):
            me = ctx.this_image()
            box = yield from ctx.allocate("box", (1,))
            ready = yield from ctx.event_var("ready")
            taken = yield from ctx.event_var("taken")
            if me == 1:
                for i in range(5):
                    if i > 0:
                        yield from ctx.event_wait(taken)
                    yield from ctx.put(box, 2, float(i), index=0)
                    yield from ctx.event_post(ready, 2)
                return None
            if me == 2:
                got = []
                for i in range(5):
                    yield from ctx.event_wait(ready)
                    got.append(float(ctx.local(box)[0]))
                    yield from ctx.event_post(taken, 1)
                return got
            return None

        result = run_small(main, images=2)
        assert result.results[1] == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestScale:
    def test_full_paper_cluster_mixed_workload(self):
        """352 images on 44 nodes: teams + collectives + RMA, correct and
        tractable (tens of thousands of events)."""

        def main(ctx):
            me = ctx.this_image()
            total = yield from ctx.co_sum(1)
            team = yield from ctx.form_team((me - 1) // 8 + 1)
            yield from ctx.change_team(team)
            team_sum = yield from ctx.co_sum(1)
            yield from ctx.sync_all()
            yield from ctx.end_team()
            return (int(total), int(team_sum))

        result = run_small(main, images=352, ipn=8)
        assert all(r == (352, 8) for r in result.results)

    def test_many_iterations_no_state_leak(self):
        """Sequence counters, mailboxes, and sync flags must stay
        consistent over hundreds of collective calls."""

        def main(ctx):
            acc = 0
            for i in range(100):
                acc += (yield from ctx.co_sum(1))
                yield from ctx.sync_all()
            return acc

        result = run_small(main, images=6, ipn=3)
        assert all(r == 600 for r in result.results)
