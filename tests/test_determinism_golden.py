"""Golden event-label traces: the fast path must not change the schedule.

The kernel fast path (closure ``schedule``, 4-tuple records, inlined
run loop, type-keyed command dispatch, insertion-ordered watchers) is
only admissible because it is *byte-identical* to the reference
behaviour on the default path.  These tests pin that down: a 2×4 TDLB
barrier run and a co_sum run each replay a golden ``(time, label)``
trace — same events, same order, same timestamps — and the trace is
invariant under the concurrency monitor (which must observe, never
perturb).  The jittered ``tiebreak_seed`` path stays functional and
still converges to the same semantic results.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.machine import build_machine, paper_cluster
from repro.runtime.program import run_spmd
from repro.sim import Engine
from repro.verify import HBMonitor

NUM_IMAGES = 8
IMAGES_PER_NODE = 4  # 2 nodes x 4 images


def _barrier_main(ctx, iters):
    for _ in range(iters):
        yield from ctx.sync_all()
    return ctx.this_image()


def _co_sum_main(ctx):
    total = yield from ctx.co_sum(ctx.this_image())
    return total


def _traced_run(main, args=(), monitor=None, tiebreak_seed=None):
    """Run ``main`` SPMD on the 2x4 machine, recording every labeled event."""
    trace: list = []
    kwargs = {}
    if tiebreak_seed is not None:
        kwargs["tiebreak_seed"] = tiebreak_seed
    engine = Engine(trace=lambda t, label: trace.append((t, label)), **kwargs)
    machine = build_machine(
        engine, paper_cluster(2), NUM_IMAGES, images_per_node=IMAGES_PER_NODE
    )
    result = run_spmd(main, machine=machine, args=args, monitor=monitor)
    return trace, result


def _digest(trace) -> str:
    h = hashlib.sha256()
    for t, label in trace:
        h.update(f"{t!r} {label}\n".encode())
    return h.hexdigest()


# Golden constants for the default (insertion-order) path.  If a change
# moves these, it changed the simulated schedule: that is a correctness
# event, not a perf event, and needs its own justification.
GOLDEN_BARRIER_DIGEST = (
    "177bcc8723976cc352324ed13e49fb9e3099234b97b74338bff684fceb9fb53b"
)
GOLDEN_BARRIER_EVENTS = 134
GOLDEN_COSUM_DIGEST = (
    "f98e30339ca90fc6a4e3a77bf2e31ae158289e04e7e482ffd4da24982116ce24"
)
GOLDEN_COSUM_EVENTS = 54


class TestGoldenBarrierTrace:
    def test_matches_golden_digest(self):
        trace, result = _traced_run(_barrier_main, args=(3,))
        assert _digest(trace) == GOLDEN_BARRIER_DIGEST
        assert len(trace) == GOLDEN_BARRIER_EVENTS
        assert result.results == list(range(1, NUM_IMAGES + 1))

    def test_monitor_does_not_perturb_schedule(self):
        bare, _ = _traced_run(_barrier_main, args=(3,))
        observed, _ = _traced_run(_barrier_main, args=(3,), monitor=HBMonitor())
        assert observed == bare

    def test_repeat_runs_are_byte_identical(self):
        first, r1 = _traced_run(_barrier_main, args=(3,))
        second, r2 = _traced_run(_barrier_main, args=(3,))
        assert first == second
        assert r1.time == r2.time

    def test_jittered_path_still_works(self):
        # Schedule fuzzing permutes same-instant events; the semantic
        # results and completion must survive any such permutation.
        jittered, result = _traced_run(_barrier_main, args=(3,), tiebreak_seed=7)
        assert result.results == list(range(1, NUM_IMAGES + 1))
        assert len(jittered) > 0


class TestGoldenCoSumTrace:
    def test_matches_golden_digest(self):
        trace, result = _traced_run(_co_sum_main)
        assert _digest(trace) == GOLDEN_COSUM_DIGEST
        assert len(trace) == GOLDEN_COSUM_EVENTS
        expected = sum(range(1, NUM_IMAGES + 1))
        assert result.results == [expected] * NUM_IMAGES

    def test_monitor_does_not_perturb_schedule(self):
        bare, _ = _traced_run(_co_sum_main)
        observed, _ = _traced_run(_co_sum_main, monitor=HBMonitor())
        assert observed == bare

    @pytest.mark.parametrize("seed", [1, 42])
    def test_jittered_path_preserves_semantics(self, seed):
        _, result = _traced_run(_co_sum_main, tiebreak_seed=seed)
        assert result.results == [sum(range(1, NUM_IMAGES + 1))] * NUM_IMAGES
