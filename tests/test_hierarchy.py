"""Tests for the hierarchy metadata (intranode sets, leader election),
including property-based checks of the structural invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Topology, block_placement, cyclic_placement, paper_cluster
from repro.teams.hierarchy import LEADER_STRATEGIES, HierarchyInfo


def build(num_images, ipn, members=None, strategy="lowest", formation_seq=0,
          placement="block"):
    nodes = max(-(-num_images // ipn), 1)
    if placement == "block":
        placements = block_placement(num_images, ipn)
    else:
        placements = cyclic_placement(num_images, nodes)
    topo = Topology(paper_cluster(nodes), placements)
    if members is None:
        members = list(range(num_images))
    return HierarchyInfo.build(topo, members, strategy=strategy,
                               formation_seq=formation_seq)


class TestStructure:
    def test_flat_when_one_image_per_node(self):
        h = build(4, ipn=1)
        assert h.is_flat
        assert h.leaders == [1, 2, 3, 4]

    def test_not_flat_with_colocated_images(self):
        assert not build(8, ipn=4).is_flat

    def test_node_sets_partition_members(self):
        h = build(16, ipn=8)
        all_members = sorted(i for s in h.node_sets.values() for i in s)
        assert all_members == list(range(1, 17))

    def test_leader_per_node(self):
        h = build(16, ipn=8)
        assert len(h.leaders) == h.num_nodes_used == 2

    def test_lowest_strategy_picks_first_index(self):
        h = build(8, ipn=4, strategy="lowest")
        assert h.leaders == [1, 5]

    def test_highest_strategy_picks_last_index(self):
        h = build(8, ipn=4, strategy="highest")
        assert h.leaders == [4, 8]

    def test_rotating_strategy_moves_with_formation_seq(self):
        h0 = build(8, ipn=4, strategy="rotating", formation_seq=0)
        h1 = build(8, ipn=4, strategy="rotating", formation_seq=1)
        assert h0.leaders == [1, 5]
        assert h1.leaders == [2, 6]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            build(4, ipn=2, strategy="coin-flip")

    def test_empty_member_list_rejected_with_clear_message(self):
        # Regression: used to surface later as a bare "max() arg is an
        # empty sequence" from max_images_per_node.
        with pytest.raises(ValueError, match="at least one member"):
            build(4, ipn=2, members=[])

    def test_slaves_of_excludes_leader(self):
        h = build(8, ipn=4)
        assert h.slaves_of(1) == [2, 3, 4]

    def test_intranode_peers_includes_self(self):
        h = build(8, ipn=4)
        assert h.intranode_peers(3) == [1, 2, 3, 4]

    def test_leader_rank_is_position_in_leaders(self):
        h = build(24, ipn=8)
        assert [h.leader_rank[l] for l in h.leaders] == [0, 1, 2]

    def test_subset_team_hierarchy(self):
        """A team of a strict subset of images still maps correctly."""
        # members: global procs 1, 3, 4, 6 of an 8-image block layout
        h = build(8, ipn=4, members=[1, 3, 4, 6])
        # team indices 1,2 are procs 1,3 → node 0; 3,4 are procs 4,6 → node 1
        assert h.node_sets == {0: [1, 2], 1: [3, 4]}
        assert h.leaders == [1, 3]

    def test_cyclic_placement_spreads_team(self):
        h = build(8, ipn=2, placement="cyclic")
        assert h.num_nodes_used == 4

    def test_socket_sets_split_node(self):
        h = build(8, ipn=8)  # one full node: cores 0-7, sockets of 4
        sockets = h.socket_sets(0)
        assert sockets == {0: [1, 2, 3, 4], 1: [5, 6, 7, 8]}

    def test_max_images_per_node(self):
        assert build(12, ipn=8).max_images_per_node == 8


@st.composite
def team_shapes(draw):
    ipn = draw(st.integers(min_value=1, max_value=8))
    nodes = draw(st.integers(min_value=1, max_value=6))
    total = ipn * nodes
    num_members = draw(st.integers(min_value=1, max_value=total))
    members = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=num_members, max_size=num_members, unique=True,
        )
    )
    strategy = draw(st.sampled_from(LEADER_STRATEGIES))
    seq = draw(st.integers(min_value=0, max_value=5))
    return total, ipn, members, strategy, seq


class TestProperties:
    @given(team_shapes())
    @settings(max_examples=150, deadline=None)
    def test_invariants(self, shape):
        total, ipn, members, strategy, seq = shape
        h = build(total, ipn, members=members, strategy=strategy,
                  formation_seq=seq)
        n = len(members)
        indices = set(range(1, n + 1))
        # node sets partition the indices
        seen = [i for s in h.node_sets.values() for i in s]
        assert sorted(seen) == sorted(indices)
        # every member has a leader on its own node
        for idx in indices:
            leader = h.leader_of[idx]
            assert h.node_of[leader] == h.node_of[idx]
        # leaders: exactly one per used node, each its own leader
        assert len(h.leaders) == len(h.node_sets)
        for leader in h.leaders:
            assert h.is_leader(leader)
        # leader_rank is a bijection onto 0..len-1
        assert sorted(h.leader_rank.values()) == list(range(len(h.leaders)))
        # slaves + leader = intranode set
        for leader in h.leaders:
            assert sorted(h.slaves_of(leader) + [leader]) == (
                h.node_sets[h.node_of[leader]]
            )

    @given(team_shapes())
    @settings(max_examples=60, deadline=None)
    def test_flat_iff_max_one_per_node(self, shape):
        total, ipn, members, strategy, seq = shape
        h = build(total, ipn, members=members, strategy=strategy,
                  formation_seq=seq)
        assert h.is_flat == (h.max_images_per_node == 1)
