"""Transpose-based distributed 1-D FFT (the HPCC FFT kernel).

With the Cooley-Tukey split of a length N = N1·N2 signal laid out as an
N1×N2 matrix (row n1 = samples n1·N2 … n1·N2+N2−1):

    X[k2·N1 + k1] = Σ_{n2} e^(−2πi n2 k2/N2) · W(k1, n2),
    W(k1, n2)     = e^(−2πi k1 n2/N) · Σ_{n1} x[n1, n2] e^(−2πi n1 k1/N1)

the inner sum runs down columns, so the distributed algorithm is
transpose → row FFT(N1) → twiddle → transpose → row FFT(N2): two
all-to-alls bracket purely local math.  Local FFTs use ``numpy.fft``;
compute is charged at 5·N·log₂N flops as the benchmark convention.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .transpose import distributed_transpose

__all__ = ["distributed_fft", "reassemble_fft"]


def distributed_fft(ctx, local_rows: np.ndarray, n1: int, n2: int) -> Iterator:
    """FFT of the signal whose N1×N2 view's rows I hold.

    ``local_rows``: my block of the N1×N2 view (complex).  Returns my
    block of the N1×N2 matrix ``W`` with ``W[k1, k2] = X[k2·N1 + k1]``
    (use :func:`reassemble_fft` to linearize a gathered result).
    """
    n_img = ctx.num_images()
    me = ctx.this_image()
    n = n1 * n2
    rows2 = n2 // n_img

    # 1. transpose → I hold rows n2 of the N2×N1 view
    tview = yield from distributed_transpose(
        ctx, np.ascontiguousarray(local_rows, dtype=complex), n1
    )
    # 2. row FFTs over n1
    tview = np.fft.fft(tview, axis=1)
    yield ctx.compute_cost(5 * rows2 * n1 * np.log2(max(n1, 2)))
    # 3. twiddle (n2, k1) *= exp(-2πi k1 n2 / N)
    lo2 = (me - 1) * rows2
    n2_idx = np.arange(lo2, lo2 + rows2)[:, None]
    k1_idx = np.arange(n1)[None, :]
    tview = tview * np.exp(-2j * np.pi * k1_idx * n2_idx / n)
    yield ctx.compute_cost(6 * rows2 * n1)
    # 4. transpose back → rows k1 of the N1×N2 view
    w = yield from distributed_transpose(ctx, tview, n2)
    # 5. row FFTs over n2
    out = np.fft.fft(w, axis=1)
    yield ctx.compute_cost(5 * (n1 // n_img) * n2 * np.log2(max(n2, 2)))
    return out


def reassemble_fft(w_global: np.ndarray) -> np.ndarray:
    """Linearize the gathered N1×N2 result: X[k2·N1 + k1] = W[k1, k2]."""
    n1, n2 = w_global.shape
    return w_global.T.reshape(n1 * n2)
