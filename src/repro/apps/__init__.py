"""Application kernels built on the public runtime API.

Beyond HPL (which has its own package, :mod:`repro.hpl`), these are the
workloads the reproduction uses to exercise the runtime the way real
codes do — each verifiable against a NumPy reference:

* :mod:`~repro.apps.cg` — distributed conjugate gradient (latency-bound
  allreduces + halo exchange);
* :mod:`~repro.apps.transpose` — all-to-all matrix transpose (the
  communication core of distributed FFTs / HPCC PTRANS);
* :mod:`~repro.apps.fft` — the transpose-based distributed 1-D FFT;
* :mod:`~repro.apps.stencil` — Jacobi heat diffusion with pairwise
  synchronization and team-partitioned domains.
"""

from .cg import cg_solve
from .fft import distributed_fft, reassemble_fft
from .stencil import jacobi_solve
from .transpose import distributed_transpose

__all__ = [
    "cg_solve",
    "distributed_fft",
    "reassemble_fft",
    "jacobi_solve",
    "distributed_transpose",
]
