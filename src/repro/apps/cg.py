"""Distributed conjugate gradient for the 1-D Poisson operator.

The model latency-bound solver: every iteration costs one halo exchange
(pairwise ``sync images``) and three global dot products (``co_sum``),
so wall time at scale is dominated by allreduce latency — the workload
class the paper's two-level reduction targets.

The operator is the SPD tridiagonal ``[-1, 2, -1]`` matrix; rows are
block-distributed.  CG on an n×n SPD system converges in at most n
iterations in exact arithmetic, which the tests rely on.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["cg_solve", "poisson_matrix"]


def poisson_matrix(n: int) -> np.ndarray:
    """Dense reference of the [-1, 2, -1] operator (for verification)."""
    return 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)


def cg_solve(ctx, b_global: np.ndarray, max_iters: int = 0,
             tol: float = 1e-20, coarray_name: str = "cg_halo") -> Iterator:
    """Solve ``A x = b`` with CG; returns ``(x_local, iters, residual)``.

    SPMD collective: every image of the current team must call it with
    the same ``b_global`` (each uses only its own row block).  The
    returned ``x_local`` is this image's block of the solution;
    ``residual`` is the final global 2-norm of ``r``.
    """
    n = len(b_global)
    me = ctx.this_image()
    n_img = ctx.num_images()
    if n % n_img != 0:
        raise ValueError(f"images ({n_img}) must divide unknowns ({n})")
    rows = n // n_img
    lo = (me - 1) * rows
    if max_iters <= 0:
        max_iters = n + 10

    b = np.asarray(b_global[lo:lo + rows], dtype=float).copy()
    x = np.zeros(rows)
    halo = yield from ctx.allocate(coarray_name, (2,))

    def exchange(vec):
        if me > 1:
            yield from ctx.put(halo, me - 1, vec[0], index=1)
        if me < n_img:
            yield from ctx.put(halo, me + 1, vec[-1], index=0)
        peers = [i for i in (me - 1, me + 1) if 1 <= i <= n_img]
        if peers:
            yield from ctx.sync_images(peers)
        left = ctx.local(halo)[0] if me > 1 else 0.0
        right = ctx.local(halo)[1] if me < n_img else 0.0
        return left, right

    def matvec(vec):
        left, right = yield from exchange(vec)
        y = 2.0 * vec
        y[1:] -= vec[:-1]
        y[:-1] -= vec[1:]
        y[0] -= left
        y[-1] -= right
        yield ctx.compute_cost(5 * rows)
        return y

    r = b - (yield from matvec(x))
    p = r.copy()
    rs = yield from ctx.co_sum(float(r @ r))
    iters = 0
    for iters in range(1, max_iters + 1):
        ap = yield from matvec(p)
        pap = yield from ctx.co_sum(float(p @ ap))
        alpha = rs / pap
        x += alpha * p
        r -= alpha * ap
        rs_new = yield from ctx.co_sum(float(r @ r))
        if rs_new < tol:
            rs = rs_new
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
        yield ctx.compute_cost(6 * rows)
    return x, iters, float(np.sqrt(max(rs, 0.0)))
