"""All-to-all distributed matrix transpose (HPCC PTRANS's core move).

A matrix distributed by row blocks becomes its transpose, also
distributed by row blocks: image *i*'s column slab of every other
image's rows must reach image *i* — the fully-connected exchange
``co_alltoall`` exists for.  The aggregation crossover this exposes
(small slabs → two-level wins on message count; large slabs → flat wins
on bytes-moved-once) is demonstrated in
``examples/distributed_transpose.py``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["distributed_transpose"]


def distributed_transpose(ctx, local_rows: np.ndarray,
                          total_rows: int) -> Iterator:
    """Transpose a row-distributed matrix.

    ``local_rows`` is my contiguous block of a ``total_rows × C`` matrix
    (blocks in team-index order, equal heights); returns my block of the
    ``C × total_rows`` transpose (heights ``C / num_images``).  Both C
    and ``total_rows`` must be divisible by the team size.
    """
    n_img = ctx.num_images()
    rows, cols = local_rows.shape
    if rows * n_img != total_rows:
        raise ValueError(
            f"local block has {rows} rows; expected {total_rows}/{n_img}"
        )
    if cols % n_img != 0:
        raise ValueError(f"columns ({cols}) must divide by team size ({n_img})")
    slab = cols // n_img
    payloads = {
        dest: local_rows[:, (dest - 1) * slab: dest * slab].copy()
        for dest in range(1, n_img + 1)
    }
    received = yield from ctx.co_alltoall(payloads)
    return np.hstack([received[src].T for src in range(1, n_img + 1)])
