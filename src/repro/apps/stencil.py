"""Jacobi heat diffusion on a strip-decomposed 2-D domain.

The canonical halo-exchange workload: each image owns a horizontal
strip (plus two halo rows in a coarray so neighbours can write them),
steps are pure nearest-neighbour ``put`` + ``sync images``, with a
periodic ``co_max`` convergence check.  Usable on any team, so a domain
can be split into independently solving regions (the paper's
loosely-coupled subproblem decomposition).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

__all__ = ["jacobi_solve"]


def jacobi_solve(
    ctx,
    rows_per_image: int,
    cols: int,
    steps: int,
    alpha: float = 0.1,
    check_every: int = 10,
    init=None,
    coarray_name: str = "jacobi_field",
) -> Iterator:
    """Run ``steps`` Jacobi iterations; returns ``(strip, residual)``.

    ``strip`` is my ``rows_per_image × cols`` interior (halo rows
    stripped); ``residual`` is the last globally reduced max update (inf
    if no check ran).  ``init(ctx, field_view)`` may seed initial/
    boundary conditions; the default is a hot left edge.
    """
    if steps < 1 or check_every < 1:
        raise ValueError("steps and check_every must be >= 1")
    me = ctx.this_image()
    n_img = ctx.num_images()
    field = yield from ctx.allocate(coarray_name, (rows_per_image + 2, cols))
    strip = ctx.local(field)
    if init is not None:
        init(ctx, strip)
    else:
        strip[:, 0] = 100.0
        strip[1:-1, 1:] = float(me)

    residual = float("inf")
    for step in range(steps):
        if me > 1:
            yield from ctx.put(field, me - 1, strip[1],
                               index=rows_per_image + 1)
        if me < n_img:
            yield from ctx.put(field, me + 1, strip[rows_per_image], index=0)
        peers = [i for i in (me - 1, me + 1) if 1 <= i <= n_img]
        if peers:
            yield from ctx.sync_images(peers)

        interior = strip[1:-1, 1:-1]
        new = interior + alpha * (
            strip[:-2, 1:-1] + strip[2:, 1:-1]
            + strip[1:-1, :-2] + strip[1:-1, 2:] - 4 * interior
        )
        delta = float(np.abs(new - interior).max())
        interior[...] = new
        yield ctx.compute_cost(5 * interior.size)

        if (step + 1) % check_every == 0:
            residual = yield from ctx.co_max(delta)
    return strip[1:-1].copy(), residual
