"""Wait-for analysis of :class:`~repro.sim.errors.DeadlockError`.

The engine's deadlock report names the stuck processes and the primitive
each one waits on.  This module turns the structured ``details`` records
into an actual diagnosis: for every waiting image it infers *which images
were expected to notify it* (from the cell's ``meta`` — team, index,
round, variant — plus the team's
:class:`~repro.teams.hierarchy.HierarchyInfo`), then

* lists images that **exited without notifying** a waiter — the classic
  SPMD violation (one image skipped a collective);
* extracts **potential wait-for cycles** among the blocked images — the
  classic crossed-synchronization deadlock (A waits for B while B waits
  for A).

Use :func:`explain_deadlock` for the one-call pretty printer::

    try:
        run_spmd(main, ...)
    except DeadlockError as err:
        print(explain_deadlock(err))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from ..collectives.base import binomial_peers
from ..sim.errors import DeadlockError

__all__ = ["WaiterRecord", "DeadlockAnalysis", "analyze_deadlock", "explain_deadlock"]

#: dissemination variants whose participant set is the team's leader list
_LEADER_VARIANTS = ("tdlb-leaders", "tdlb3-leaders")


def _image(proc: Optional[int]) -> str:
    """Human name of a 0-based global proc."""
    return f"image{proc + 1}" if isinstance(proc, int) else "<anonymous>"


def _global_image(team: Any, index: int) -> int:
    """1-based global image number of ``index`` (1-based) within ``team``."""
    return team.members[index - 1] + 1


@dataclass
class WaiterRecord:
    """One blocked image and what (we infer) it was waiting for."""

    #: 1-based global image number, or None for anonymous processes
    image: Optional[int]
    process: str
    kind: str
    target_name: str
    #: current value of the waited-on cell (None for events/resources)
    value: Any
    #: human-readable location context (team/owner/node/leader), may be ""
    context: str
    #: 1-based global images expected to notify this waiter (None = unknown)
    expects: Optional[List[int]]


@dataclass
class DeadlockAnalysis:
    """Structured diagnosis of one deadlock."""

    waiters: List[WaiterRecord]
    #: 1-based global images that are blocked
    blocked: List[int]
    #: expected notifiers that are not blocked — they exited early
    missing: List[int]
    #: potential wait-for cycles among blocked images (each a closed walk)
    cycles: List[List[int]]
    #: 1-based global images the caller reported as fail-stopped by fault
    #: injection (see :mod:`repro.faults`)
    failed: List[int] = field(default_factory=list)
    #: blocked images whose expected notifiers include a failed image —
    #: their hang is attributed to the injected failure, not a logic bug
    fault_attributed: List[int] = field(default_factory=list)

    def render(self) -> str:
        failed_set = set(self.failed)
        lines = [
            f"deadlock wait-for analysis: {len(self.blocked)} image(s) blocked, "
            f"{len(self.missing)} image(s) exited without notifying a waiter"
        ]
        lines.append("blocked:")
        for w in self.waiters:
            who = f"image{w.image}" if w.image is not None else w.process
            desc = f"  {who} waits on {w.kind} {w.target_name!r}"
            if w.context:
                desc += f" [{w.context}]"
            if w.value is not None:
                desc += f" value={w.value}"
            if w.expects is None:
                desc += "; expected notifiers: unknown"
            elif w.expects:
                desc += "; expected notifiers: " + ", ".join(
                    f"image{i}" + (" (FAILED)" if i in failed_set else "")
                    for i in w.expects
                )
            else:
                desc += "; expected notifiers: none (self-satisfying wait)"
            lines.append(desc)
        if self.missing:
            lines.append(
                "exited before notifying: "
                + ", ".join(f"image{i}" for i in self.missing)
            )
        for cycle in self.cycles:
            walk = " -> ".join(f"image{i}" for i in cycle + cycle[:1])
            lines.append(f"potential wait-for cycle: {walk}")
        if self.failed:
            lines.append(
                "injected fail-stops: "
                + ", ".join(f"image{i}" for i in self.failed)
            )
            if self.fault_attributed:
                lines.append(
                    "residual hang attributed to the injected failure(s): "
                    + ", ".join(f"image{i}" for i in self.fault_attributed)
                    + " wait(s) on a failed notifier"
                )
        if not self.missing and not self.cycles:
            lines.append("no cycle found among blocked images")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Expected-notifier inference per cell kind
# ----------------------------------------------------------------------
def _diss_writers(meta: dict) -> Optional[List[int]]:
    team = meta["team"]
    index = meta["index"]
    round_ = meta["round"]
    variant = meta["variant"]
    h = team.hierarchy
    n = team.size
    if variant in _LEADER_VARIANTS:
        participants = list(h.leaders)
    elif variant == "tourn-arrive":
        # diss_flag(parent_index, child_rank): the notifier is the child.
        return [_global_image(team, round_ + 1)]
    elif variant == "tourn-release":
        parent, _children = binomial_peers(index - 1, n)
        return [] if parent is None else [_global_image(team, parent + 1)]
    elif variant.startswith("tdlb3"):
        # Socket-tier counters are shared by several roles; any intranode
        # peer may be the notifier.
        peers = h.intranode_peers(index)
        return sorted(_global_image(team, i) for i in peers if i != index)
    else:
        participants = list(range(1, n + 1))
    if index not in participants:
        return None
    rank = participants.index(index)
    dist = 1 << round_
    writer = participants[(rank - dist) % len(participants)]
    return [_global_image(team, writer)]


def _expected_writers(meta: Optional[dict],
                      value: Any = None) -> Optional[List[int]]:
    """1-based global images expected to write the cell, or None if the
    cell carries no usable metadata.  ``value`` is the cell's current
    value when the caller has it — a lock word *is* its holder, so the
    expected notifier of a stuck acquire is whoever holds the lock."""
    if not meta:
        return None
    kind = meta.get("kind")
    if kind == "syncimg":
        return [meta["notifier"] + 1]
    if kind == "diss":
        return _diss_writers(meta)
    if kind == "lock":
        # lock word: 0 = free, else the holder's 1-based global image.
        # A waiter blocked on a free word is about to retry (transient);
        # report no notifier rather than a wrong one.
        if isinstance(value, int) and value > 0:
            return [int(value)]
        return None
    team = meta.get("team")
    if team is None:
        return None
    index = meta.get("index")
    h = team.hierarchy
    if kind == "event":
        # Any teammate may post; a starved wait can only name them all.
        return sorted(_global_image(team, i)
                      for i in range(1, team.size + 1) if i != index)
    if kind == "cocounter":
        slaves = h.slaves_of(index)
        writers = slaves if slaves else [i for i in range(1, team.size + 1)
                                         if i != index]
        return sorted(_global_image(team, i) for i in writers)
    if kind == "release":
        # Written by the TDLB node leader or the linear barrier's leader
        # (team index 1) — report both candidates.
        writers = {h.leader_of[index], 1} - {index}
        return sorted(_global_image(team, i) for i in writers)
    if kind == "mail":
        return sorted(_global_image(team, i) for i in range(1, team.size + 1)
                      if i != index)
    return None


def _cell_context(meta: Optional[dict]) -> str:
    if not meta:
        return ""
    kind = meta.get("kind", "?")
    if kind == "syncimg":
        return (f"pairwise sync {_image(meta['notifier'])}"
                f"->{_image(meta['waiter'])}")
    if kind == "lock":
        return f"lock {meta['var']!r}, home {_image(meta['home'])}"
    team = meta.get("team")
    if team is None:
        return kind
    index = meta.get("index")
    h = team.hierarchy
    owner = _global_image(team, index)
    leader = _global_image(team, h.leader_of[index])
    return (f"{kind}, team#{team.team_number} size {team.size}, "
            f"owner image{owner}, node {h.node_of[index]}, "
            f"leader image{leader}")


# ----------------------------------------------------------------------
def _find_cycles(edges: Dict[int, Set[int]]) -> List[List[int]]:
    """Strongly connected components of size > 1 (or a self-loop),
    each rotated to start at its smallest image — Tarjan, iterative."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    sccs: List[List[int]] = []

    def strongconnect(root: int) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in edges:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges.get(node, ()):
                    sccs.append(sorted(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sccs


def analyze_deadlock(err: DeadlockError,
                     failed: Optional[Iterable[int]] = None) -> DeadlockAnalysis:
    """Build a :class:`DeadlockAnalysis` from a deadlock's structured
    details (raised by any engine run with :class:`~repro.sim.Process`
    waiters — no monitor required).

    ``failed`` optionally lists 1-based global images that were
    fail-stopped by fault injection; any waiter whose expected notifiers
    include one of them is *attributed* to the failure rather than to an
    algorithmic bug (and the report says so).
    """
    waiters: List[WaiterRecord] = []
    for info in err.details:
        target = info.target
        kind = info.kind
        if kind == "event":
            # A failure-aware wait (repro.faults) blocks on a wrapper
            # event carrying the real awaited cell — unwrap it so the
            # analysis keeps its team/round/mailbox context.
            inner = getattr(target, "cell", None)
            if inner is not None:
                target = inner
                kind = "cell"
        meta = getattr(target, "meta", None)
        value = getattr(target, "value", None) if kind == "cell" else None
        waiters.append(WaiterRecord(
            image=info.actor + 1 if isinstance(info.actor, int) else None,
            process=info.process,
            kind=kind,
            target_name=getattr(target, "name", "") or "<anonymous>",
            value=value,
            context=_cell_context(meta) if kind == "cell" else "",
            expects=(_expected_writers(meta, value)
                     if kind == "cell" else None),
        ))

    blocked = sorted({w.image for w in waiters if w.image is not None})
    blocked_set = set(blocked)
    expected_union: Set[int] = set()
    edges: Dict[int, Set[int]] = {i: set() for i in blocked}
    for w in waiters:
        if w.image is None or w.expects is None:
            continue
        expected_union.update(w.expects)
        edges[w.image].update(i for i in w.expects if i in blocked_set)
    missing = sorted(expected_union - blocked_set)
    cycles = _find_cycles(edges)
    failed_list = sorted(set(failed)) if failed else []
    failed_set = set(failed_list)
    # failed images cannot be "missing notifiers" in the bug sense — they
    # are dead by design
    missing = [i for i in missing if i not in failed_set]
    fault_attributed = sorted({
        w.image for w in waiters
        if w.image is not None and w.expects
        and failed_set.intersection(w.expects)
    })
    return DeadlockAnalysis(
        waiters=waiters, blocked=blocked, missing=missing, cycles=cycles,
        failed=failed_list, fault_attributed=fault_attributed,
    )


def explain_deadlock(err: DeadlockError,
                     failed: Optional[Iterable[int]] = None) -> str:
    """Pretty-print the wait-for diagnosis of a deadlock; ``failed``
    attributes residual hangs to injected fail-stops (see
    :func:`analyze_deadlock`)."""
    return analyze_deadlock(err, failed=failed).render()
