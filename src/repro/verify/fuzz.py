"""Schedule fuzzing: run one SPMD program under many legal interleavings.

The simulation kernel is deterministic: events at the same
``(time, priority)`` fire in insertion order.  That determinism is great
for reproducing experiments and terrible for finding synchronization
bugs — a missing ``sync_all`` can hide behind the one schedule the seed
happens to produce.  :func:`fuzz_schedules` re-runs the program with the
engine's seeded tie-break policy (see
:class:`~repro.sim.engine.Engine`), which permutes *only* same-instant
events — every permutation is a causally legal interleaving — and
asserts the **semantic result** is interleaving-independent.

Semantic comparison is structural and tolerance-aware: floating-point
reductions legitimately differ across interleavings because the combine
order changes (float addition is not associative), so float leaves are
compared with a relative tolerance while ints, strings, and payload
structure must match exactly.  Simulated *time* is allowed to vary — the
schedule perturbation can reorder contention — and is reported per seed
instead of asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.program import run_spmd
from ..sim.errors import DeadlockError
from .deadlock import explain_deadlock
from .vclock import HBMonitor

__all__ = ["SeedOutcome", "FuzzReport", "FuzzError", "fuzz_schedules",
           "canonicalize", "semantic_equal"]


# ----------------------------------------------------------------------
# Semantic comparison
# ----------------------------------------------------------------------
def canonicalize(value: Any) -> Any:
    """Reduce a result to a structure of tuples/scalars that two runs can
    be compared over: arrays become (shape, dtype kind, values) tuples,
    dict iteration order is fixed by sorted keys."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.dtype.kind,
                tuple(value.ravel().tolist()))
    if isinstance(value, dict):
        return ("dict", tuple((k, canonicalize(v))
                              for k, v in sorted(value.items(), key=repr)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonicalize(v) for v in value))
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def semantic_equal(a: Any, b: Any, rtol: float = 1e-9, atol: float = 0.0) -> bool:
    """Structural equality with float tolerance at the leaves."""
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return (len(a) == len(b)
                and all(semantic_equal(x, y, rtol, atol) for x, y in zip(a, b)))
    return a == b


# ----------------------------------------------------------------------
# Report types
# ----------------------------------------------------------------------
@dataclass
class SeedOutcome:
    """What happened under one tie-break seed."""

    seed: Optional[int]
    #: canonicalized per-image results (None when the run failed)
    results: Optional[Any]
    time: float = 0.0
    #: True when results semantically match the unfuzzed baseline
    matches: bool = True
    #: deadlock/assertion text when the run failed
    error: Optional[str] = None
    #: WAW race descriptions from the HB monitor, when one was installed
    races: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and self.matches and not self.races


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_schedules` sweep."""

    baseline: SeedOutcome
    outcomes: List[SeedOutcome]

    @property
    def ok(self) -> bool:
        return self.baseline.ok and all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[SeedOutcome]:
        return [o for o in [self.baseline, *self.outcomes] if not o.ok]

    def render(self) -> str:
        total = len(self.outcomes)
        if self.ok:
            times = sorted({self.baseline.time, *(o.time for o in self.outcomes)})
            return (f"fuzz: {total} seed(s) ok, results interleaving-"
                    f"independent; simulated time span "
                    f"[{times[0]:.6g}s, {times[-1]:.6g}s]")
        lines = [f"fuzz: {len(self.failures)}/{total + 1} run(s) FAILED"]
        for o in self.failures:
            tag = "baseline" if o.seed is None else f"seed {o.seed}"
            if o.error is not None:
                lines.append(f"  [{tag}] {o.error}")
            if o.races:
                lines.extend(f"  [{tag}] {r}" for r in o.races)
            if o.error is None and not o.matches:
                lines.append(f"  [{tag}] results diverge from the unfuzzed "
                             f"baseline")
        return "\n".join(lines)


class FuzzError(AssertionError):
    """Raised by :func:`fuzz_schedules` (``check=True``) on any failure."""

    def __init__(self, report: FuzzReport):
        self.report = report
        super().__init__(report.render())


# ----------------------------------------------------------------------
def _default_extract(res: Any) -> Any:
    return res.results


def _fuzz_one_run(
    main: Callable,
    seed: Optional[int],
    run_kwargs: dict,
    monitor_races: bool,
    extract: Optional[Callable[[Any], Any]],
) -> SeedOutcome:
    """One seeded run — module-level so a worker process can import it."""
    monitor = HBMonitor() if monitor_races else None
    try:
        res = run_spmd(main, tiebreak_seed=seed, monitor=monitor,
                       **run_kwargs)
    except DeadlockError as err:
        return SeedOutcome(seed=seed, results=None,
                           error="deadlock\n" + explain_deadlock(err))
    except AssertionError as err:
        return SeedOutcome(seed=seed, results=None,
                           error=f"assertion failed: {err}")
    get = extract if extract is not None else _default_extract
    races = [r.describe() for r in monitor.races] if monitor else []
    return SeedOutcome(seed=seed, results=canonicalize(get(res)),
                       time=res.time, races=races)


def fuzz_schedules(
    main: Callable,
    *,
    seeds: Union[int, Iterable[int]] = 10,
    num_images: int,
    images_per_node: Optional[int] = None,
    spec: Any = None,
    config: Any = None,
    args: Tuple = (),
    extract: Optional[Callable[[Any], Any]] = None,
    rtol: float = 1e-9,
    monitor_races: bool = True,
    check: bool = True,
    jobs=None,
) -> FuzzReport:
    """Run ``main`` under the default schedule and under ``seeds`` fuzzed
    schedules; assert the semantic results agree.

    ``seeds`` is either an iterable of tie-break seeds or a count
    (→ seeds ``1..n``).  ``extract(result)`` maps an
    :class:`~repro.runtime.program.SpmdResult` to the semantic value under
    comparison (default: ``result.results``, the per-image return
    values).  Float leaves compare with relative tolerance ``rtol``.
    With ``monitor_races`` a fresh :class:`HBMonitor` rides along on
    every run and any write-after-write race fails the sweep.  A
    deadlock under *any* seed is a failure and its wait-for analysis is
    embedded in the report.

    ``jobs`` fans the seeded runs across a worker pool (int, ``"auto"``,
    or None = sequential); outcome order and the report are identical to
    the sequential sweep.  Programs or extractors that cannot be
    pickled (closures) transparently run inline in the parent.

    Returns the :class:`FuzzReport`; raises :class:`FuzzError` on any
    failure unless ``check=False``.
    """
    from ..exec import TaskSpec, run_tasks

    seed_list = list(range(1, seeds + 1)) if isinstance(seeds, int) else list(seeds)
    run_kwargs: dict = {"num_images": num_images, "args": args}
    if images_per_node is not None:
        run_kwargs["images_per_node"] = images_per_node
    if spec is not None:
        run_kwargs["spec"] = spec
    if config is not None:
        run_kwargs["config"] = config

    tasks = [
        TaskSpec(_fuzz_one_run, (main, seed, run_kwargs, monitor_races, extract),
                 label=f"fuzz seed={seed}")
        for seed in [None, *seed_list]
    ]
    raw = run_tasks(tasks, jobs=jobs)
    runs = [
        tres.value if tres.ok
        else SeedOutcome(seed=seed, results=None,
                         error=f"harness: {tres.error}")
        for seed, tres in zip([None, *seed_list], raw)
    ]

    baseline, fuzzed = runs[0], runs[1:]
    outcomes: List[SeedOutcome] = []
    for outcome in fuzzed:
        if (outcome.error is None and baseline.error is None
                and not semantic_equal(outcome.results, baseline.results,
                                       rtol=rtol)):
            outcome.matches = False
        outcomes.append(outcome)

    report = FuzzReport(baseline=baseline, outcomes=outcomes)
    if check and not report.ok:
        raise FuzzError(report)
    return report
