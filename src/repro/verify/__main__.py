"""CLI entry point: ``python -m repro.verify``.

Runs the conformance matrix (see :mod:`repro.verify.conformance`) and
exits non-zero if any case fails.  ``--quick`` selects the CI smoke
subset; ``--kind/--alg/--shape`` filter; ``--list`` prints the matrix
without running it.

``--faults`` switches to the fault conformance matrix
(:mod:`repro.verify.faultconf`): the same collectives and shapes under
injected fail-stop / message-drop schedules, asserting graceful
degradation and determinism instead of fuzz-seed independence
(``--fault-schedule`` filters the schedules; ``--seeds`` is ignored).

``-j/--jobs`` fans the cases across worker processes (``-j auto`` =
one per core); pass/fail output is identical to a sequential run.
Results are cached under ``.repro-cache/`` keyed by case content and
source-tree fingerprint, so a re-run with unchanged sources skips the
already-verified cells (``--no-cache`` disables, ``--cache-dir`` moves
the store; see docs/parallel.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..exec import DEFAULT_CACHE_DIR, ResultCache
from .conformance import KINDS, SHAPES, build_matrix, run_matrix
from .faultconf import SCHEDULE_NAMES, build_fault_matrix, run_fault_matrix


def _run_remote(args, cases) -> int:
    """Delegate the (already filtered) matrix to a ``repro.serve`` job
    server; the pass/fail lines and summary match a local run."""
    from ..serve.client import ServerError, run_verify_remote

    spec = {"kind": "verify", "quick": args.quick, "seeds": args.seeds,
            "kinds": args.kind, "algs": args.alg, "shapes": args.shape}
    print(f"running {len(cases)} conformance case(s), "
          f"{args.seeds} seed(s) each...")
    start = time.perf_counter()
    try:
        passed, total, records = run_verify_remote(args.server, spec,
                                                   tenant=args.tenant)
    except (ServerError, OSError) as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    failed = []
    for case, record in zip(cases, records):
        value = record.get("value") or {}
        ok = bool(record.get("ok")) and bool(value.get("ok"))
        if args.verbose or not ok:
            status = "ok" if ok else "FAIL"
            seeds = value.get("seeds")
            suffix = f" ({seeds} seed(s))" if seeds is not None else ""
            print(f"  {case.label:<58} {status}{suffix}")
            if not ok:
                detail = record.get("error") or value.get("detail") or "failed"
                for line in str(detail).splitlines():
                    print(f"    {line}")
        if not ok:
            failed.append(case)
    print(f"{passed}/{total} case(s) passed in {elapsed:.1f}s")
    if failed:
        print("failed cases:")
        for case in failed:
            print(f"  {case.label}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="collectives conformance matrix + schedule fuzzing",
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="fuzz seeds per case (default: 20; large "
                             "shapes cap this)")
    parser.add_argument("--quick", action="store_true",
                        help="fast shapes and one payload per kind only")
    parser.add_argument("--kind", action="append", choices=sorted(KINDS),
                        help="restrict to one collective kind (repeatable)")
    parser.add_argument("--alg", action="append",
                        help="restrict to one algorithm name (repeatable)")
    parser.add_argument("--shape", action="append", choices=sorted(SHAPES),
                        help="restrict to one machine shape (repeatable)")
    parser.add_argument("--faults", action="store_true",
                        help="run the fault-injection conformance matrix "
                             "(repro.verify.faultconf) instead of the "
                             "fuzzing matrix")
    parser.add_argument("--fault-schedule", action="append",
                        choices=SCHEDULE_NAMES, dest="fault_schedule",
                        help="with --faults: restrict to one fault "
                             "schedule (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="print the selected cases and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print each case as it runs")
    parser.add_argument("-j", "--jobs", default="1",
                        help="worker processes: an integer or 'auto' "
                             "(one per core); default 1 = sequential")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="kill any single case after this many "
                             "wall-clock seconds (default: none)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-run cases, ignore cached results")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="result-cache root "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="delegate cases to a repro.serve job server "
                             "(e.g. http://127.0.0.1:8750); pass/fail "
                             "output is identical to a local run")
    parser.add_argument("--tenant", default=None,
                        help="tenant name reported to --server "
                             "(default: the local username)")
    args = parser.parse_args(argv)

    if args.faults:
        cases = build_fault_matrix(quick=args.quick, kinds=args.kind,
                                   algs=args.alg, shapes=args.shape,
                                   schedules=args.fault_schedule)
    else:
        cases = build_matrix(quick=args.quick, kinds=args.kind,
                             algs=args.alg, shapes=args.shape)
    if not cases:
        print("no cases match the given filters", file=sys.stderr)
        return 2
    if args.list:
        for case in cases:
            print(case.label)
        print(f"{len(cases)} case(s)")
        return 0

    if args.server:
        if args.faults:
            print("--server does not support --faults (run the fault "
                  "matrix locally)", file=sys.stderr)
            return 2
        return _run_remote(args, cases)

    start = time.perf_counter()

    def progress(result) -> None:
        if args.verbose or not result.ok:
            status = "ok" if result.ok else "FAIL"
            seeds = getattr(result, "seeds", None)
            suffix = f" ({seeds} seed(s))" if seeds is not None else ""
            print(f"  {result.case.label:<58} {status}{suffix}")
            if not result.ok:
                for line in result.detail.splitlines():
                    print(f"    {line}")

    stats: dict = {}
    if args.faults:
        cache = (None if args.no_cache
                 else ResultCache(root=args.cache_dir,
                                  namespace="verify-faults"))
        print(f"running {len(cases)} fault conformance case(s) "
              f"(each twice, for determinism)...")
        results = run_fault_matrix(cases, progress=progress, jobs=args.jobs,
                                   cache=cache,
                                   task_timeout=args.task_timeout,
                                   stats_out=stats)
    else:
        cache = (None if args.no_cache
                 else ResultCache(root=args.cache_dir, namespace="verify"))
        print(f"running {len(cases)} conformance case(s), "
              f"{args.seeds} seed(s) each...")
        results = run_matrix(cases, seeds=args.seeds, progress=progress,
                             jobs=args.jobs, cache=cache,
                             task_timeout=args.task_timeout, stats_out=stats)
    elapsed = time.perf_counter() - start
    failed = [r for r in results if not r.ok]
    print(f"{len(results) - len(failed)}/{len(results)} case(s) passed "
          f"in {elapsed:.1f}s")
    if cache is not None:
        print(f"cache: {cache.hits}/{len(cases)} case(s) served from "
              f"{args.cache_dir} ({stats.get('jobs', 1)} job(s))")
    if failed:
        print("failed cases:")
        for r in failed:
            print(f"  {r.case.label}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
