"""Vector-clock happens-before tracking for simulated SPMD runs.

The :class:`HBMonitor` plugs into the simulation kernel via
``engine.monitor`` (see :meth:`repro.runtime.program.run_spmd`'s
``monitor`` parameter) and maintains one vector clock per image.  The
edges it tracks are exactly the synchronization the runtime provides:

* **message send** — every :class:`~repro.runtime.conduit.Conduit`
  transfer ticks the sender's clock and snapshots it; the snapshot is the
  causal context of everything the delivery callback does at the target
  (a one-sided put's remote effect belongs to the *sender's* past).
* **spin-wait satisfaction** — when a process resumes from a
  ``WaitFor(cell, pred)``, the waiter's clock absorbs the cell's
  accumulated write clock: the flag write it spun on synchronizes the
  two images, which is precisely the ``sync_flags`` discipline the
  paper's barriers rely on.
* **event waits** — a ``Wait(event)`` absorbs the clock of whatever
  triggered the event (RMA completions, resource grants).
* **lock hand-off** — a blocked ``lock()`` resumes through a ``WaitFor``
  on the lock word (covered above); a *first-try* CAS acquisition never
  blocks, so the runtime reports it through :meth:`HBMonitor.on_acquire`
  and the acquirer's clock absorbs the previous holder's release there.
  ``event post``/``event wait`` need no extra hook: the post is a conduit
  delivery writing the count cell, and the wait is a ``WaitFor`` on it.

On top of the clocks the monitor performs one check: a **plain store**
(:meth:`Cell.set <repro.sim.primitives.Cell.set>` — e.g.
``atomic_define``) to a cell whose previous store is *not* in the causal
past of the new one is an unsynchronized write-after-write race — the
final value depends on the interleaving.  Commutative or atomic
read-modify-writes (``Cell.add``, ``Cell.update``) are merged into the
cell's clock but never flagged, matching their order-tolerant contracts.

The tracker is an over-approximation in one direction only: it may
*miss* races involving synchronization it cannot see (there is none in
this runtime — all cross-image traffic goes through the conduit), but a
reported race is always two stores with no happens-before path between
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["VectorClock", "RaceRecord", "HBMonitor"]


class VectorClock:
    """A sparse vector clock over actor ids (0-based image procs).

    Sparse because formed sub-teams involve a subset of images; absent
    components are zero.
    """

    __slots__ = ("_c",)

    def __init__(self, components: Optional[Dict[Any, int]] = None):
        self._c: Dict[Any, int] = dict(components) if components else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def tick(self, actor: Any) -> None:
        self._c[actor] = self._c.get(actor, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        for actor, count in other._c.items():
            if count > self._c.get(actor, 0):
                self._c[actor] = count

    def precedes_eq(self, other: "VectorClock") -> bool:
        """True when ``self`` ≤ ``other`` componentwise (happens-before
        or equal)."""
        return all(count <= other._c.get(actor, 0)
                   for actor, count in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.precedes_eq(other) and not other.precedes_eq(self)

    def components(self) -> Dict[Any, int]:
        return dict(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{a}:{n}" for a, n in sorted(self._c.items()))
        return f"VC({inner})"


@dataclass(frozen=True)
class RaceRecord:
    """One detected unsynchronized write-after-write."""

    #: name of the cell both stores hit
    cell: str
    #: the cell's ``meta`` dict, if its owner attached one
    meta: Optional[dict]
    #: actor (0-based proc) of the earlier store, ``None`` if unattributed
    first_writer: Optional[Any]
    #: actor of the later store
    second_writer: Optional[Any]
    #: simulated time of the later store
    time: float

    def describe(self) -> str:
        def img(actor: Any) -> str:
            return f"image{actor + 1}" if isinstance(actor, int) else "<unknown>"

        return (
            f"write-after-write race on cell {self.cell!r}: store by "
            f"{img(self.second_writer)} at t={self.time:.9f}s is unordered "
            f"with the previous store by {img(self.first_writer)}"
        )


@dataclass
class _CellState:
    """Per-cell tracking: accumulated write clock + last plain store."""

    clock: VectorClock = field(default_factory=VectorClock)
    last_store: Optional[VectorClock] = None
    last_store_writer: Optional[Any] = None


class HBMonitor:
    """Happens-before tracker and write-after-write race detector.

    Install with ``run_spmd(..., monitor=HBMonitor())``; inspect
    :attr:`races` afterwards (or pass ``strict=True`` to make the first
    race raise immediately, pinpointing the exact simulated instant).
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.races: List[RaceRecord] = []
        #: messages observed, by (src, dst) — cheap sanity statistics
        self.messages = 0
        #: non-blocking lock acquisitions reported via :meth:`on_acquire`
        self.acquires = 0
        self._clocks: Dict[Any, VectorClock] = {}
        self._cells: Dict[Any, _CellState] = {}
        self._events: Dict[Any, VectorClock] = {}
        # Causal context of the currently running delivery callback (a
        # stack, since a delivery may trigger nested deliveries), plus the
        # actor of the currently stepping process.
        self._cause_stack: List[Tuple[VectorClock, Any]] = []
        self._actor_stack: List[Any] = []
        self._engine = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, num_images: int) -> None:
        """Called by the launcher: pre-create one clock per image."""
        for proc in range(num_images):
            self._clocks.setdefault(proc, VectorClock())

    def clock_of(self, actor: Any) -> VectorClock:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = self._clocks[actor] = VectorClock()
        return clock

    @property
    def ok(self) -> bool:
        return not self.races

    # ------------------------------------------------------------------
    # Hooks called by the sim kernel (all tolerate anonymous actors)
    # ------------------------------------------------------------------
    def begin_step(self, actor: Any) -> None:
        self._actor_stack.append(actor)

    def end_step(self) -> None:
        if self._actor_stack:
            self._actor_stack.pop()

    def _current_cause(self) -> Tuple[Optional[VectorClock], Optional[Any]]:
        """The clock+writer a write should be attributed to right now:
        the innermost delivery context if one is active, else the
        currently stepping process's actor clock."""
        if self._cause_stack:
            return self._cause_stack[-1]
        if self._actor_stack and self._actor_stack[-1] is not None:
            actor = self._actor_stack[-1]
            return self.clock_of(actor), actor
        return None, None

    def on_transfer(
        self,
        src_image: int,
        dst_image: int,
        on_delivered: Optional[Callable[[], None]],
    ) -> Optional[Callable[[], None]]:
        """Record a conduit message; returns the (possibly wrapped)
        delivery callback."""
        self.messages += 1
        clock = self.clock_of(src_image)
        clock.tick(src_image)
        if on_delivered is None:
            return None
        snapshot = clock.copy()

        def delivered() -> None:
            self._cause_stack.append((snapshot, src_image))
            try:
                on_delivered()
            finally:
                self._cause_stack.pop()

        return delivered

    def on_cell_write(self, cell: Any, op: str) -> None:
        cause, writer = self._current_cause()
        if cause is None:
            return
        state = self._cells.get(cell)
        if state is None:
            state = self._cells[cell] = _CellState()
        if op == "set":
            prev = state.last_store
            if prev is not None and not prev.precedes_eq(cause):
                record = RaceRecord(
                    cell=getattr(cell, "name", "") or "<anonymous>",
                    meta=getattr(cell, "meta", None),
                    first_writer=state.last_store_writer,
                    second_writer=writer,
                    time=self._now(cell),
                )
                self.races.append(record)
                if self.strict:
                    raise RaceError(record)
            state.last_store = cause.copy()
            state.last_store_writer = writer
        state.clock.merge(cause)

    def on_cell_observed(self, cell: Any, actor: Any) -> None:
        if actor is None:
            return
        state = self._cells.get(cell)
        if state is not None:
            self.clock_of(actor).merge(state.clock)

    def on_acquire(self, cell: Any, actor: Any) -> None:
        """A lock acquisition that did not block (first-try CAS success):
        the acquirer synchronizes with every past write to the lock word
        — in particular the previous holder's release."""
        self.acquires += 1
        self.on_cell_observed(cell, actor)

    def on_event_trigger(self, event: Any) -> None:
        cause, _writer = self._current_cause()
        if cause is None:
            return
        stored = self._events.get(event)
        if stored is None:
            self._events[event] = cause.copy()
        else:
            stored.merge(cause)

    def on_event_observed(self, event: Any, actor: Any) -> None:
        if actor is None:
            return
        stored = self._events.get(event)
        if stored is not None:
            self.clock_of(actor).merge(stored)

    # ------------------------------------------------------------------
    @staticmethod
    def _now(cell: Any) -> float:
        engine = getattr(cell, "_engine", None)
        return engine.now if engine is not None else 0.0

    def describe_races(self) -> str:
        if not self.races:
            return "no write-after-write races detected"
        lines = [f"{len(self.races)} write-after-write race(s):"]
        lines += [f"  - {r.describe()}" for r in self.races]
        return "\n".join(lines)


class RaceError(RuntimeError):
    """Raised in strict mode at the instant a race is detected."""

    def __init__(self, record: RaceRecord):
        self.record = record
        super().__init__(record.describe())


__all__.append("RaceError")
