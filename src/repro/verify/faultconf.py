"""Fault conformance matrix: every registered collective × machine shape
× fault schedule, with a determinism double-run.

The contract under test is the runtime's graceful-degradation promise
(see :mod:`repro.faults` and docs/faults.md): under any fault schedule,
every image either

* **fail-stops** (its result is the :data:`~repro.faults.FAILED`
  sentinel) because the schedule killed it, or
* **completes** its rounds with reference-correct results (schedules
  that kill nobody — including the message-drop schedule, whose
  retransmit model delays but never loses data), or
* **observes** ``STAT_FAILED_IMAGE`` via ``stat=`` at a synchronization
  after the failure instant — and *every* survivor does, because the
  entry check makes detection a property of the next collective call,
  not of the algorithm's communication pattern.

No cell may hang: a :class:`~repro.sim.errors.DeadlockError` fails the
case with a wait-for analysis that attributes the hang to the injected
failure (:func:`repro.verify.deadlock.explain_deadlock` with
``failed=``), so a genuine liveness bug is distinguishable from fault
fallout at a glance.

Each case also runs **twice** and must produce identical canonical
outcomes and final simulated time — the determinism half of the fault
model's guarantee.

Schedules (the ISSUE's minimum set):

``none``
    Null schedule — exercises the ``stat=`` plumbing on the byte-identical
    fault-free path.
``slave-fails``
    Image 2 dies mid-run: on hierarchical shapes a non-leader slave; its
    node leader must notice while waiting for intranode arrival.
``leader-fails``
    Image 1 dies mid-run: the lowest index is the node leader under the
    default election *and* the root of every rooted algorithm — the
    worst participant to lose.
``message-drop``
    No deaths; 20% seeded drop with bounded retransmits on every
    inter-node message.  Everything must still complete with correct
    results, just later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from ..faults import (
    FAILED,
    STAT_STOPPED_IMAGE,
    STAT_UNLOCKED_FAILED_IMAGE,
    FaultSchedule,
    ImageFailure,
    Stat,
)
from ..runtime.config import UHCAF_2LEVEL
from ..runtime.program import run_spmd
from ..sim.errors import DeadlockError, ProcessFailure
from .conformance import KINDS, SHAPES, Shape, _CONFIG_FIELD
from .deadlock import explain_deadlock
from .fuzz import canonicalize, semantic_equal

__all__ = ["SCHEDULE_NAMES", "FaultCase", "FaultCaseResult",
           "make_schedule", "build_fault_matrix", "run_fault_case",
           "run_fault_matrix"]

#: simulated instant of the injected fail-stops — early enough that every
#: shape is still mid-rounds, late enough that the run is well underway
FAIL_TIME = 25e-6
#: rounds each image attempts under a killing schedule before the harness
#: declares the failure unobserved (each round costs simulated time, so
#: the cap is never reached: the first post-failure round trips the
#: entry check)
MAX_ROUNDS = 2000
#: rounds of the fixed-length (non-killing) probes
STEADY_ROUNDS = 3

SCHEDULE_NAMES = ("none", "slave-fails", "leader-fails", "message-drop")


def make_schedule(name: str) -> FaultSchedule:
    """The named fault plan of the conformance matrix."""
    if name == "none":
        return FaultSchedule()
    if name == "slave-fails":
        return FaultSchedule(failures=(ImageFailure(image=2, time=FAIL_TIME),))
    if name == "leader-fails":
        return FaultSchedule(failures=(ImageFailure(image=1, time=FAIL_TIME),))
    if name == "message-drop":
        return FaultSchedule(drop_rate=0.2, max_retransmits=3,
                             retransmit_timeout=3e-6, seed=7)
    raise ValueError(f"unknown fault schedule {name!r}; have {SCHEDULE_NAMES}")


# ----------------------------------------------------------------------
# The probe: stat-aware collective rounds
# ----------------------------------------------------------------------
def _round_value(kind: str, me: int, n: int, r: int) -> Any:
    """Image ``me``'s contribution in round ``r`` (round-stamped so a
    stale round's data can never satisfy a later round's check)."""
    if kind == "alltoall":
        return {j: me * 1000 + j * 10 + r for j in range(1, n + 1)}
    return me * 1000 + r


def _reference(kind: str, me: int, n: int, r: int) -> Any:
    """What image ``me`` must hold after a *completed* round ``r``."""
    if kind == "barrier":
        return "sync"
    if kind == "reduce":  # integer sum: exact
        return sum(_round_value(kind, i, n, r) for i in range(1, n + 1))
    if kind == "broadcast":
        return _round_value(kind, min(2, n), n, r)
    if kind == "allgather":
        return [_round_value(kind, i, n, r) for i in range(1, n + 1)]
    if kind == "alltoall":
        return {j: j * 1000 + me * 10 + r for j in range(1, n + 1)}
    if kind == "event":
        return "event"
    if kind == "lock":
        return "locked"
    if kind == "critical":
        return "critical"
    raise ValueError(f"unknown kind {kind!r}")


def _probe(ctx, kind: str, rounds: int) -> Iterator:
    """Loop stat-aware rounds of one collective or image-control kind.

    Returns the list of per-round outcomes: the round's result while the
    team is whole, then the terminal ``("stat", failed_indices)`` entry
    once a failure is observed.  A surviving image therefore ends with
    the stat marker iff a failure happened, and the harness can assert
    that *uniformly* across survivors.

    Image-control kinds have two wrinkles the collective kinds do not:

    * ``STAT_UNLOCKED_FAILED_IMAGE`` means the probe *acquired* the lock
      over a fail-stopped holder — it must release before reporting, or
      blocked contenders would hang on a word nobody frees;
    * ``STAT_STOPPED_IMAGE`` means a peer terminated *normally* before
      we touched it — in this matrix that only happens as fallout of an
      injected failure observed earlier by that peer, so the probe
      reports the failure itself (``failed_images()``), keeping the
      terminal marker uniform across survivors.
    """
    me = ctx.this_image()
    n = ctx.num_images()
    home = min(2, n)
    ev = lk = None
    if kind in ("event", "lock"):
        st0 = Stat()
        if kind == "event":
            ev = yield from ctx.event_var("fc_ev", stat=st0)
        else:
            lk = yield from ctx.lock_var("fc_lk", stat=st0)
        if not st0.ok:
            return [("stat", tuple(st0.failed_indices))]
    outcomes: List[Any] = []
    for r in range(rounds):
        st = Stat()
        value = _round_value(kind, me, n, r)
        if kind == "barrier":
            yield from ctx.sync_all(stat=st)
            result = "sync"
        elif kind == "reduce":
            result = yield from ctx.co_reduce(value, op="sum", stat=st)
        elif kind == "broadcast":
            result = yield from ctx.co_broadcast(
                value, source_image=min(2, n), stat=st
            )
        elif kind == "allgather":
            result = yield from ctx.co_allgather(value, stat=st)
        elif kind == "alltoall":
            result = yield from ctx.co_alltoall(value, stat=st)
        elif kind == "event":
            # ring: post right, consume my left's post
            yield from ctx.event_post(ev, me % n + 1, stat=st)
            if st.ok:
                yield from ctx.event_wait(ev, stat=st)
            result = "event"
        elif kind in ("lock", "critical"):
            # team-wide detection first: images interacting only through
            # an alive lock home would otherwise never observe a death
            yield from ctx.sync_all(stat=st)
            if st.ok:
                if kind == "lock":
                    yield from ctx.lock(lk, home, stat=st)
                else:
                    yield from ctx.critical_begin("fc_cr", stat=st)
                if st.code == STAT_UNLOCKED_FAILED_IMAGE:
                    # we hold the dead holder's lock: free it first
                    if kind == "lock":
                        yield from ctx.unlock(lk, home)
                    else:
                        yield from ctx.critical_end("fc_cr")
                    outcomes.append(("stat", tuple(st.failed_indices)))
                    return outcomes
                if st.ok:
                    yield from ctx.compute(seconds=0.5e-6)
                    st2 = Stat()
                    if kind == "lock":
                        yield from ctx.unlock(lk, home, stat=st2)
                    else:
                        yield from ctx.critical_end("fc_cr", stat=st2)
                    if st2.code == STAT_STOPPED_IMAGE:
                        # reporting-only condition: the word must still be
                        # freed or blocked contenders hang forever
                        if kind == "lock":
                            yield from ctx.unlock(lk, home)
                        else:
                            yield from ctx.critical_end("fc_cr")
                    if not st2.ok:
                        st = st2
            result = "locked" if kind == "lock" else "critical"
        else:
            raise ValueError(f"unknown kind {kind!r}")
        if not st.ok:
            if st.code == STAT_STOPPED_IMAGE:
                # normal-termination fallout of an earlier failure
                failed = tuple(ctx.failed_images())
                assert failed, "STAT_STOPPED_IMAGE with no injected failure"
                outcomes.append(("stat", failed))
                return outcomes
            # cross-check the intrinsics agree with the stat= report
            assert ctx.failed_images(), "stat set but failed_images() empty"
            outcomes.append(("stat", tuple(st.failed_indices)))
            return outcomes
        outcomes.append(result)
    if kind in ("lock", "critical"):
        # hold every image until all rounds are done: without this, the
        # home image could terminate normally while latecomers still
        # contend, turning a clean run into spurious STAT_STOPPED_IMAGE
        st = Stat()
        yield from ctx.sync_all(stat=st)
        if not st.ok:
            outcomes.append(("stat", tuple(st.failed_indices)))
    return outcomes


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultCase:
    kind: str
    alg: str
    shape: str
    schedule: str

    @property
    def label(self) -> str:
        return f"{self.kind}/{self.alg} @{self.shape} !{self.schedule}"


@dataclass
class FaultCaseResult:
    case: FaultCase
    ok: bool
    detail: str = ""


def build_fault_matrix(
    quick: bool = False,
    kinds: Optional[List[str]] = None,
    algs: Optional[List[str]] = None,
    shapes: Optional[List[str]] = None,
    schedules: Optional[List[str]] = None,
) -> List[FaultCase]:
    """Enumerate collective × shape × schedule cells, optionally
    filtered.  ``quick`` keeps the fast shapes and, per kind, only the
    paper's two-level algorithm plus the flat baseline (the CI smoke
    set); the full matrix covers every registered algorithm."""
    cases = []
    for kind, table in KINDS.items():
        if kinds and kind not in kinds:
            continue
        names = list(table)
        if quick:
            if kind in _CONFIG_FIELD:
                names = [names[0], getattr(UHCAF_2LEVEL, _CONFIG_FIELD[kind])]
                names = list(dict.fromkeys(names))  # dedupe, keep order
            else:
                names = names[:1]  # image-control: single implementation
        for alg in names:
            if algs and alg not in algs:
                continue
            for shape in SHAPES.values():
                if quick and not shape.quick:
                    continue
                if shapes and shape.name not in shapes:
                    continue
                for sched in SCHEDULE_NAMES:
                    if schedules and sched not in schedules:
                        continue
                    cases.append(FaultCase(kind, alg, shape.name, sched))
    return cases


def _run_once(case: FaultCase, shape: Shape, schedule: FaultSchedule):
    overrides = ({_CONFIG_FIELD[case.kind]: case.alg}
                 if case.kind in _CONFIG_FIELD else {})
    config = UHCAF_2LEVEL.with_(**overrides)
    rounds = MAX_ROUNDS if schedule.failures else STEADY_ROUNDS
    return run_spmd(
        _probe,
        num_images=shape.num_images,
        images_per_node=shape.images_per_node,
        spec=shape.spec,
        config=config,
        args=(case.kind, rounds),
        faults=schedule,
    )


def _check_outcomes(case: FaultCase, shape: Shape, schedule: FaultSchedule,
                    result) -> List[str]:
    """The conformance predicate: fail-stopped, completed correctly, or
    observed STAT_FAILED_IMAGE — per image, with no fourth possibility."""
    problems: List[str] = []
    n = shape.num_images
    killed = {f.image for f in schedule.failures}
    expected_failed = tuple(sorted(killed))
    for img, out in enumerate(result.results, start=1):
        if img in killed:
            if out != FAILED:
                problems.append(
                    f"image{img} was scheduled to fail at {FAIL_TIME:g}s but "
                    f"returned {out!r}"
                )
            continue
        if not isinstance(out, list) or not out:
            problems.append(f"image{img} returned no outcomes: {out!r}")
            continue
        if killed:
            last = out[-1]
            if not (isinstance(last, tuple) and last[0] == "stat"):
                problems.append(
                    f"image{img} never observed STAT_FAILED_IMAGE "
                    f"(last outcome: {last!r})"
                )
            elif last[1] != expected_failed:
                problems.append(
                    f"image{img} reported failed indices {last[1]} "
                    f"(expected {expected_failed})"
                )
            completed = out[:-1]
        else:
            completed = out
            if len(completed) != STEADY_ROUNDS:
                problems.append(
                    f"image{img} completed {len(completed)} round(s), "
                    f"expected {STEADY_ROUNDS}"
                )
        # every round completed before the failure must be reference-correct
        for r, got in enumerate(completed):
            want = _reference(case.kind, img, n, r)
            if not semantic_equal(canonicalize(got), canonicalize(want)):
                problems.append(
                    f"image{img} round {r}: got {got!r}, expected {want!r} "
                    f"— silent wrong result"
                )
                break
    return problems


def run_fault_case(case: FaultCase) -> FaultCaseResult:
    """Run one cell twice (determinism check included); never raises."""
    shape = SHAPES[case.shape]
    schedule = make_schedule(case.schedule)
    failed_images = sorted(f.image for f in schedule.failures)
    try:
        first = _run_once(case, shape, schedule)
        second = _run_once(case, shape, schedule)
    except DeadlockError as err:
        return FaultCaseResult(case, ok=False, detail=(
            "hang (graceful degradation failed):\n"
            + explain_deadlock(err, failed=failed_images)
        ))
    except ProcessFailure as err:
        return FaultCaseResult(case, ok=False,
                               detail=f"image crashed: {err}")
    except AssertionError as err:
        return FaultCaseResult(case, ok=False,
                               detail=f"probe assertion failed: {err}")
    problems = _check_outcomes(case, shape, schedule, first)
    if (canonicalize(first.results) != canonicalize(second.results)
            or first.time != second.time):
        problems.append(
            f"non-deterministic: two identical runs diverged "
            f"(times {first.time:.9g}s vs {second.time:.9g}s)"
        )
    return FaultCaseResult(case, ok=not problems, detail="\n".join(problems))


def run_fault_matrix(
    cases: List[FaultCase],
    progress=None,
    jobs=None,
    cache=None,
    task_timeout: Optional[float] = None,
    stats_out: Optional[dict] = None,
) -> List[FaultCaseResult]:
    """Run ``cases``, optionally fanned across a worker pool and served
    from a :class:`repro.exec.ResultCache` — same contract as
    :func:`repro.verify.conformance.run_matrix`."""
    from ..exec import TaskSpec, run_tasks

    tasks = [TaskSpec(run_fault_case, (case,), label=case.label)
             for case in cases]
    results: List[FaultCaseResult] = []

    def on_result(tres) -> None:
        case = cases[tres.index]
        if tres.ok:
            result = tres.value
        else:
            result = FaultCaseResult(case=case, ok=False,
                                     detail=f"harness: {tres.error}")
        results.append(result)
        if progress is not None:
            progress(result)

    run_tasks(tasks, jobs=jobs, cache=cache, task_timeout=task_timeout,
              progress=on_result, stats_out=stats_out)
    return results
