"""Conformance matrix: every registered collective × machine shapes ×
payloads × fuzzed schedules, checked against a sequential reference.

Each **case** picks one algorithm from one registry in
:mod:`repro.collectives.registry`, installs it into a
:class:`~repro.runtime.config.RuntimeConfig`, and runs a small semantic
probe program on a machine shape:

* ``barrier`` — each image puts a round-stamped token into its right
  neighbour's coarray, crosses ``sync_all``, and checks the left
  neighbour's token is visible (the separation property a barrier must
  provide); a second ``sync_all`` closes the anti-dependence before the
  next round.
* ``reduce`` — ``co_reduce`` of an int scalar and a float array, both
  allreduce and rooted forms, against a sequentially combined reference
  (float compare is tolerance-based: combine order varies legally).
* ``broadcast`` / ``allgather`` / ``alltoall`` — payloads derived from
  the image index, compared exactly against the obvious reference.

Every case runs unfuzzed once and under N tie-break seeds
(:func:`~repro.verify.fuzz.fuzz_schedules`) with a
:class:`~repro.verify.vclock.HBMonitor` riding along, so a pass means:
correct result, interleaving-independent, race-free, deadlock-free.

Shapes cover the paper's 11-node × 8-image evaluation platform plus the
degenerate and adversarial cases: a single node, two nodes, an all-leader
flat placement, a 4-socket NUMA node, and non-power-of-two image counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..collectives import registry
from ..collectives.reduce import REDUCE_OPS
from ..machine.spec import MachineSpec, NetworkSpec, NodeSpec, paper_cluster
from ..runtime.config import UHCAF_2LEVEL
from .fuzz import FuzzReport, canonicalize, fuzz_schedules, semantic_equal

__all__ = ["Shape", "SHAPES", "Case", "CaseResult", "build_matrix",
           "run_case", "run_matrix", "KINDS", "PAYLOADS"]

#: float tolerance for reduction results (combine order is schedule-dependent)
FLOAT_RTOL = 1e-9
#: element count of the float-array payload
ARRAY_LEN = 16


# ----------------------------------------------------------------------
# Machine shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shape:
    """One machine/placement configuration of the matrix."""

    name: str
    num_images: int
    images_per_node: int
    spec: MachineSpec
    #: cap on fuzz seeds (expensive shapes); None = no cap
    seed_cap: Optional[int] = None
    #: include in the --quick matrix (CI smoke / pytest)
    quick: bool = True


_SHAPE_LIST = [
    # one fully populated node: everything intra-node, no leader phase work
    Shape("1node", 8, 8, paper_cluster(1)),
    # the canonical small hierarchy: two nodes, two leaders
    Shape("2x4", 8, 4, paper_cluster(2)),
    # non-power-of-two cases: odd counts break naive log2 trees
    Shape("3img", 3, 2, paper_cluster(2)),
    Shape("7img", 7, 4, paper_cluster(2), quick=False),
    Shape("24img", 24, 8, paper_cluster(3), seed_cap=5, quick=False),
    # one image per node — every image is a leader (flat hierarchy)
    Shape("flat4", 4, 1, paper_cluster(4)),
    # 4-socket NUMA node: exercises the socket tier of tdlb-numa
    Shape("numa", 8, 8,
          MachineSpec(1, NodeSpec(cores=8, sockets=4), NetworkSpec())),
    # the paper's evaluation platform (capped seeds: 88 images is costly)
    Shape("paper11x8", 88, 8, paper_cluster(11), seed_cap=2, quick=False),
]
SHAPES: Dict[str, Shape] = {s.name: s for s in _SHAPE_LIST}

KINDS: Dict[str, dict] = {
    "barrier": registry.BARRIERS,
    "reduce": registry.REDUCTIONS,
    "broadcast": registry.BROADCASTS,
    "allgather": registry.ALLGATHERS,
    "alltoall": registry.ALLTOALLS,
    # Image-control primitives have one runtime implementation each (no
    # registry): the "algorithm" name documents the mechanism under test.
    "event": {"leader-mediated": None},
    "lock": {"cas-wait": None},
    "critical": {"lock-based": None},
}

#: config field each kind's algorithm name plugs into (image-control
#: kinds have no config knob — their single implementation always runs)
_CONFIG_FIELD = {"barrier": "barrier", "reduce": "reduce",
                 "broadcast": "broadcast", "allgather": "allgather",
                 "alltoall": "alltoall"}

#: payload axes per kind (barrier and alltoall have a single natural one)
PAYLOADS: Dict[str, Tuple[str, ...]] = {
    "barrier": ("token",),
    "reduce": ("int", "farray"),
    "broadcast": ("int", "farray"),
    "allgather": ("int", "farray"),
    "alltoall": ("int",),
    "event": ("counts",),
    "lock": ("counter",),
    "critical": ("counter",),
}


def _contribution(payload: str, index: int) -> Any:
    """Image ``index``'s deterministic contribution for ``payload``."""
    if payload == "int":
        return index * 3 + 1
    if payload == "farray":
        # Non-uniform floats so combine-order changes are observable
        # (and correctly absorbed by the tolerance compare).
        return (np.arange(ARRAY_LEN, dtype=np.float64) + 1.0) / (index + 0.5)
    raise ValueError(f"unknown payload {payload!r}")


# ----------------------------------------------------------------------
# Probe programs (SPMD mains run by every image)
# ----------------------------------------------------------------------
def _barrier_program(ctx, rounds: int) -> Iterator:
    me = ctx.this_image()
    n = ctx.num_images()
    box = yield from ctx.allocate("verify_bar", (1,), dtype=np.int64)
    mismatches: List[int] = []
    for r in range(1, rounds + 1):
        right = me % n + 1
        if right != me:
            yield from ctx.put(box, right, np.int64(me * 1000 + r), index=0)
        else:
            ctx.local(box)[0] = me * 1000 + r
        yield from ctx.sync_all()
        left = (me - 2) % n + 1
        # 0 when the pre-barrier put is visible post-barrier
        mismatches.append(int(ctx.local(box)[0]) - (left * 1000 + r))
        yield from ctx.sync_all()
    return mismatches


def _reduce_program(ctx, payload: str, op: str) -> Iterator:
    value = _contribution(payload, ctx.this_image())
    full = yield from ctx.co_reduce(value, op=op)
    rooted = yield from ctx.co_reduce(value, op=op, result_image=1)
    return full, rooted


def _broadcast_program(ctx, payload: str, source: int) -> Iterator:
    value = _contribution(payload, ctx.this_image())
    got = yield from ctx.co_broadcast(value, source_image=source)
    return got


def _allgather_program(ctx, payload: str) -> Iterator:
    value = _contribution(payload, ctx.this_image())
    got = yield from ctx.co_allgather(value)
    return got


def _alltoall_program(ctx) -> Iterator:
    me = ctx.this_image()
    n = ctx.num_images()
    payloads = {j: me * 100 + j for j in range(1, n + 1)}
    got = yield from ctx.co_alltoall(payloads)
    return got


def _event_program(ctx, rounds: int) -> Iterator:
    """Ring of posts: every image posts ``rounds`` times to its right
    neighbour, waits for its own ``rounds`` posts in one consuming wait
    (the query after it must read 0), then one more post/wait round after
    a barrier — cross-round isolation of the counts."""
    me = ctx.this_image()
    n = ctx.num_images()
    ev = yield from ctx.event_var("verify_ev")
    right = me % n + 1
    for _ in range(rounds):
        yield from ctx.event_post(ev, right)
    yield from ctx.event_wait(ev, until_count=rounds)
    q1 = ctx.event_query(ev)
    yield from ctx.sync_all()
    yield from ctx.event_post(ev, right)
    yield from ctx.event_wait(ev)
    q2 = ctx.event_query(ev)
    return [q1, q2]


def _lock_counter_rounds(ctx, home: int, enter, leave, rounds: int):
    """Shared body of the lock/critical probes: a lock-protected
    read-modify-write on a counter coarray living on ``home``.  Lost
    updates (broken mutual exclusion) or missing happens-before edges
    (flagged by the riding HBMonitor) fail the case."""
    box = yield from ctx.allocate("verify_ic_ctr", (1,), dtype=np.int64)
    for _ in range(rounds):
        yield from enter()
        cur = yield from ctx.get(box, home)
        yield from ctx.compute(seconds=0.5e-6)  # widen the race window
        yield from ctx.put(box, home, np.int64(int(cur[0]) + 1), index=0)
        yield from leave()
    yield from ctx.sync_all()
    final = yield from ctx.get(box, home)
    return int(final[0])


def _lock_program(ctx, rounds: int) -> Iterator:
    n = ctx.num_images()
    home = min(2, n)
    lk = yield from ctx.lock_var("verify_lk")
    total = yield from _lock_counter_rounds(
        ctx, home,
        lambda: ctx.lock(lk, home),
        lambda: ctx.unlock(lk, home),
        rounds,
    )
    return total


def _critical_program(ctx, rounds: int) -> Iterator:
    total = yield from _lock_counter_rounds(
        ctx, 1,
        lambda: ctx.critical_begin("verify_cr"),
        lambda: ctx.critical_end("verify_cr"),
        rounds,
    )
    return total


def _build_probe(kind: str, payload: str, n: int):
    """(program, args, expected per-image results) for one case."""
    if kind == "barrier":
        rounds = 2
        return _barrier_program, (rounds,), [[0] * rounds] * n
    if kind == "reduce":
        op = "sum" if payload == "farray" else "max"
        ufunc = REDUCE_OPS[op]
        ref = _contribution(payload, 1)
        for i in range(2, n + 1):
            ref = ufunc(ref, _contribution(payload, i))
        expected = [(ref, ref if i == 1 else None) for i in range(1, n + 1)]
        return _reduce_program, (payload, op), expected
    if kind == "broadcast":
        source = min(2, n)
        ref = _contribution(payload, source)
        return _broadcast_program, (payload, source), [ref] * n
    if kind == "allgather":
        ref = [_contribution(payload, i) for i in range(1, n + 1)]
        return _allgather_program, (payload,), [ref] * n
    if kind == "alltoall":
        expected = [{j: j * 100 + i for j in range(1, n + 1)}
                    for i in range(1, n + 1)]
        return _alltoall_program, (), expected
    if kind == "event":
        rounds = 3
        return _event_program, (rounds,), [[0, 0]] * n
    if kind == "lock":
        rounds = 2
        return _lock_program, (rounds,), [rounds * n] * n
    if kind == "critical":
        rounds = 2
        return _critical_program, (rounds,), [rounds * n] * n
    raise ValueError(f"unknown kind {kind!r}")


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Case:
    kind: str
    alg: str
    shape: str
    payload: str

    @property
    def label(self) -> str:
        return f"{self.kind}/{self.alg} @{self.shape} [{self.payload}]"


@dataclass
class CaseResult:
    case: Case
    ok: bool
    seeds: int
    detail: str = ""
    report: Optional[FuzzReport] = None


def build_matrix(
    quick: bool = False,
    kinds: Optional[List[str]] = None,
    algs: Optional[List[str]] = None,
    shapes: Optional[List[str]] = None,
) -> List[Case]:
    """Enumerate the matrix, optionally filtered.  ``quick`` keeps only
    the fast shapes and one payload per kind (the CI smoke set)."""
    cases = []
    for kind, table in KINDS.items():
        if kinds and kind not in kinds:
            continue
        payloads = PAYLOADS[kind]
        if quick:
            payloads = payloads[-1:]
        for alg in table:
            if algs and alg not in algs:
                continue
            for shape in SHAPES.values():
                if quick and not shape.quick:
                    continue
                if shapes and shape.name not in shapes:
                    continue
                for payload in payloads:
                    cases.append(Case(kind, alg, shape.name, payload))
    return cases


def run_case(case: Case, seeds: int = 3) -> CaseResult:
    """Run one case: reference check + schedule fuzz + race/deadlock
    monitoring.  Never raises — failures land in the result."""
    shape = SHAPES[case.shape]
    nseeds = min(seeds, shape.seed_cap) if shape.seed_cap else seeds
    overrides = ({_CONFIG_FIELD[case.kind]: case.alg}
                 if case.kind in _CONFIG_FIELD else {})
    config = UHCAF_2LEVEL.with_(**overrides)
    program, prog_args, expected = _build_probe(
        case.kind, case.payload, shape.num_images
    )
    report = fuzz_schedules(
        program,
        seeds=nseeds,
        num_images=shape.num_images,
        images_per_node=shape.images_per_node,
        spec=shape.spec,
        config=config,
        args=prog_args,
        rtol=FLOAT_RTOL,
        check=False,
    )
    problems = []
    if not report.ok:
        problems.append(report.render())
    if report.baseline.error is None and not semantic_equal(
        report.baseline.results, canonicalize(expected), rtol=FLOAT_RTOL
    ):
        problems.append("baseline results do not match the sequential reference")
    return CaseResult(
        case=case,
        ok=not problems,
        seeds=nseeds,
        detail="\n".join(problems),
        report=report,
    )


def run_matrix(
    cases: List[Case],
    seeds: int = 3,
    progress=None,
    jobs=None,
    cache=None,
    task_timeout: Optional[float] = None,
    stats_out: Optional[dict] = None,
) -> List[CaseResult]:
    """Run ``cases``; ``progress(result)`` is called after each one.

    ``jobs`` fans the cases across a :class:`repro.exec.WorkerPool`
    (int, ``"auto"``, or None = sequential/``REPRO_JOBS``); results and
    progress calls keep submission order regardless, so parallel output
    is identical to sequential.  ``cache`` (a
    :class:`repro.exec.ResultCache`) skips cases whose content key —
    case spec, seed count, and source-tree fingerprint — already has a
    stored result.  ``task_timeout`` bounds one case's wall-clock in a
    worker; a crashed or timed-out case comes back as a failed
    :class:`CaseResult` instead of aborting the matrix.  ``stats_out``
    receives pool utilization and cache counters.
    """
    from ..exec import TaskSpec, run_tasks

    tasks = [TaskSpec(run_case, (case,), {"seeds": seeds}, label=case.label)
             for case in cases]
    results: List[CaseResult] = []

    def on_result(tres) -> None:
        case = cases[tres.index]
        if tres.ok:
            result = tres.value
        else:
            result = CaseResult(case=case, ok=False, seeds=seeds,
                                detail=f"harness: {tres.error}")
        results.append(result)
        if progress is not None:
            progress(result)

    run_tasks(tasks, jobs=jobs, cache=cache, task_timeout=task_timeout,
              progress=on_result, stats_out=stats_out)
    return results
