"""Schedule-fuzzing and concurrency-verification harness.

Three layers, usable independently:

* :mod:`repro.verify.fuzz` — run one SPMD program under many legal
  same-instant event orders (the engine's seeded tie-break policy) and
  assert the semantic result is interleaving-independent.
* :mod:`repro.verify.vclock` — a vector-clock happens-before monitor
  that rides along on any run (``run_spmd(..., monitor=HBMonitor())``)
  and flags unsynchronized write-after-write races; plus
  :mod:`repro.verify.deadlock`, which turns a
  :class:`~repro.sim.errors.DeadlockError` into a wait-for diagnosis
  (missing notifiers, cycles) with team/leader context.
* :mod:`repro.verify.conformance` — a matrix runner sweeping every
  algorithm in :mod:`repro.collectives.registry` across machine shapes,
  payloads, and fuzz seeds against sequential references.
* :mod:`repro.verify.faultconf` — the fault conformance matrix: the
  same collectives × shapes under injected fail-stop and message-fault
  schedules (:mod:`repro.faults`), asserting graceful degradation
  (every image fail-stops, completes correctly, or observes
  ``STAT_FAILED_IMAGE``) plus run-to-run determinism.

Command line::

    python -m repro.verify --seeds 20            # full matrix
    python -m repro.verify --quick --seeds 3     # CI smoke
    python -m repro.verify --kind barrier --shape numa -v
    python -m repro.verify --faults --quick      # fault-injection smoke
"""

from .conformance import (
    SHAPES,
    Case,
    CaseResult,
    build_matrix,
    run_case,
    run_matrix,
)
from .deadlock import DeadlockAnalysis, analyze_deadlock, explain_deadlock
from .faultconf import (
    SCHEDULE_NAMES,
    FaultCase,
    FaultCaseResult,
    build_fault_matrix,
    make_schedule,
    run_fault_case,
    run_fault_matrix,
)
from .fuzz import (
    FuzzError,
    FuzzReport,
    SeedOutcome,
    canonicalize,
    fuzz_schedules,
    semantic_equal,
)
from .vclock import HBMonitor, RaceError, RaceRecord, VectorClock

__all__ = [
    "SHAPES",
    "Case",
    "CaseResult",
    "build_matrix",
    "run_case",
    "run_matrix",
    "DeadlockAnalysis",
    "analyze_deadlock",
    "explain_deadlock",
    "SCHEDULE_NAMES",
    "FaultCase",
    "FaultCaseResult",
    "build_fault_matrix",
    "make_schedule",
    "run_fault_case",
    "run_fault_matrix",
    "FuzzError",
    "FuzzReport",
    "SeedOutcome",
    "canonicalize",
    "fuzz_schedules",
    "semantic_equal",
    "HBMonitor",
    "RaceError",
    "RaceRecord",
    "VectorClock",
]
