"""Parallel run orchestration for the reproduction's harnesses.

The paper's evaluation is a grid of independent simulated runs —
collectives × machine shapes × payloads × schedules.  This package
turns "run the grid" into one deterministic, cache-aware, parallel
primitive:

* :class:`TaskSpec` / :class:`TaskResult` — picklable task descriptors
  with results always delivered in submission order
  (:mod:`repro.exec.task`);
* :class:`WorkerPool` / :func:`run_tasks` — a persistent
  ``multiprocessing`` worker pool with chunked dispatch, per-task
  timeout, retry-once on worker crash, and a graceful inline fallback
  (:mod:`repro.exec.pool`);
* :class:`ResultCache` — an on-disk result cache under
  ``.repro-cache/`` keyed by task content + source-tree fingerprint, so
  unchanged grid cells are skipped on re-runs
  (:mod:`repro.exec.cache`).

The verify, bench, perf and calibration harnesses all route their grids
through :func:`run_tasks`; see ``docs/parallel.md`` for the
architecture, the cache key scheme, and the determinism guarantee.

Command line::

    python -m repro.exec            # cores, cache location, entry count
    python -m repro.exec --clear    # drop every cached result
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, source_fingerprint
from .pool import WorkerPool, auto_jobs, resolve_jobs, run_tasks
from .shared import SharedPoolExecutor
from .task import (
    TaskResult,
    TaskSpec,
    UnstableFingerprint,
    stable_fingerprint,
    stable_repr,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "source_fingerprint",
    "SharedPoolExecutor",
    "WorkerPool",
    "auto_jobs",
    "resolve_jobs",
    "run_tasks",
    "TaskResult",
    "TaskSpec",
    "UnstableFingerprint",
    "stable_fingerprint",
    "stable_repr",
]
