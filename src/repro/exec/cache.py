"""On-disk result cache keyed by task content + source fingerprints.

A cache entry answers: "this exact callable, with these exact arguments,
under this exact version of the simulator's source tree, produced this
value".  The key is a sha256 over

* the task fingerprint (:func:`repro.exec.task.stable_fingerprint` —
  callable reference plus a content-stable rendering of the arguments),
* the **source fingerprint** — a digest over every ``*.py`` file under
  the configured source roots (default: the installed ``repro``
  package), so editing any simulator/runtime/collective source
  invalidates every entry at once, and
* a format version, bumped when the entry layout changes.

Entries live under ``.repro-cache/<namespace>/<key[:2]>/<key>.pkl`` as
pickled blobs, written atomically (temp file + rename) so a crashed or
concurrent run never leaves a torn entry.  Unreadable or unpicklable
entries are treated as misses and dropped — the cache is strictly an
accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Tuple

from .task import PICKLE_PROTOCOL, TaskSpec, UnstableFingerprint, stable_fingerprint

__all__ = ["ResultCache", "source_fingerprint", "DEFAULT_CACHE_DIR"]

#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: bump to orphan every existing entry on a layout change
_FORMAT_VERSION = 1

#: memoized source fingerprints: roots tuple -> digest
_FP_MEMO: dict = {}


def _default_roots() -> Tuple[str, ...]:
    import repro
    return (str(Path(repro.__file__).resolve().parent),)


def source_fingerprint(roots: Optional[Sequence[os.PathLike]] = None) -> str:
    """Digest of every ``*.py`` file under ``roots`` (path + content).

    Memoized per root set for the life of the process: the harness
    hashes ~10^2 files once, not once per task.
    """
    key = tuple(str(Path(r).resolve()) for r in roots) if roots else _default_roots()
    cached = _FP_MEMO.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for root in key:
        base = Path(root)
        files: Iterable[Path] = (
            sorted(base.rglob("*.py")) if base.is_dir()
            else ([base] if base.exists() else [])
        )
        for path in files:
            rel = path.relative_to(base) if base.is_dir() else path.name
            digest.update(str(rel).encode())
            digest.update(path.read_bytes())
    value = digest.hexdigest()
    _FP_MEMO[key] = value
    return value


def invalidate_fingerprint_memo() -> None:
    """Forget memoized source fingerprints (tests edit source files)."""
    _FP_MEMO.clear()


class ResultCache:
    """Content-addressed store of task results under ``root``."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        namespace: str = "exec",
        source_roots: Optional[Sequence[os.PathLike]] = None,
    ):
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.namespace = namespace
        self.source_roots = source_roots
        # counters for reporting ("cache: 99/110 hit")
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: tasks that could not be keyed (unstable arguments) — executed
        #: normally, never cached
        self.unkeyed = 0

    # ------------------------------------------------------------------
    def _dir(self) -> Path:
        return self.root / self.namespace

    def _path(self, key: str) -> Path:
        return self._dir() / key[:2] / f"{key}.pkl"

    def task_key(self, task: TaskSpec) -> Optional[str]:
        """Full cache key for ``task``; None when it cannot be keyed."""
        try:
            fp = stable_fingerprint(task)
        except UnstableFingerprint:
            self.unkeyed += 1
            return None
        material = f"v{_FORMAT_VERSION}|{fp}|{source_fingerprint(self.source_roots)}"
        return hashlib.sha256(material.encode()).hexdigest()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` — a corrupt entry counts as a miss and is
        removed."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value``; returns False (and stores nothing) when the
        value itself cannot be pickled."""
        try:
            blob = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        except Exception:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.puts += 1
        return True

    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        base = self._dir()
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.rglob("*.pkl"))

    def clear(self) -> int:
        """Delete this namespace's entries; returns how many went."""
        removed = 0
        base = self._dir()
        if base.is_dir():
            for path in base.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        looked = self.hits + self.misses
        return {
            "root": str(self.root),
            "namespace": self.namespace,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "unkeyed": self.unkeyed,
            "hit_rate": self.hits / looked if looked else 0.0,
        }
