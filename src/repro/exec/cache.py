"""On-disk result cache keyed by task content + source fingerprints.

A cache entry answers: "this exact callable, with these exact arguments,
under this exact version of the simulator's source tree, produced this
value".  The key is a sha256 over

* the task fingerprint (:func:`repro.exec.task.stable_fingerprint` —
  callable reference plus a content-stable rendering of the arguments),
* the **source fingerprint** — a digest over every ``*.py`` file under
  the configured source roots (default: the installed ``repro``
  package), so editing any simulator/runtime/collective source
  invalidates every entry at once, and
* a format version, bumped when the entry layout changes.

Entries live under ``.repro-cache/<namespace>/<generation>/<key[:2]>/
<key>.pkl`` as pickled blobs, written atomically (temp file + rename) so
a crashed or concurrent run never leaves a torn entry.  The
**generation** directory is the first 12 hex digits of the source
fingerprint: every source change starts a fresh generation, and the
entries of superseded generations — which can never hit again, their
fingerprint is baked into every key — become eviction fodder that
:meth:`ResultCache.evict` sweeps wholesale before it has to consider
evicting anything current.

Unreadable or unpicklable entries are treated as misses; *corrupt*
entries (the bytes are there but do not unpickle) are additionally
dropped, while transient I/O errors (a concurrent ``os.replace``
mid-read, a momentary EPERM) leave the entry alone — it is most likely
perfectly valid and the next reader will get it.  The cache is strictly
an accelerator, never a source of truth.

The source fingerprint is memoized per root set, guarded by a cheap
stat scan (file list + mtimes + sizes): a long-lived process — the
``repro.serve`` job server in particular — re-hashes the tree only when
some ``*.py`` file actually changed, instead of serving keys computed
from stale source forever.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from .task import PICKLE_PROTOCOL, TaskSpec, UnstableFingerprint, stable_fingerprint

__all__ = ["ResultCache", "source_fingerprint", "DEFAULT_CACHE_DIR"]

#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: bump to orphan every existing entry on a layout change (2: entries
#: moved under per-source-generation directories)
_FORMAT_VERSION = 2

#: hex digits of the source fingerprint used as the generation dir name
_GENERATION_LEN = 12

#: memoized source fingerprints: roots tuple -> (stat signature, digest)
_FP_MEMO: dict = {}


def _default_roots() -> Tuple[str, ...]:
    import repro
    return (str(Path(repro.__file__).resolve().parent),)


def _source_files(roots: Tuple[str, ...]) -> List[Path]:
    files: List[Path] = []
    for root in roots:
        base = Path(root)
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
        elif base.exists():
            files.append(base)
    return files


def _stat_signature(files: Sequence[Path]) -> Tuple:
    """Cheap change detector: (path, mtime_ns, size) per source file.

    ~10^2 ``stat`` calls, well under a millisecond — affordable on every
    fingerprint lookup, unlike re-hashing every file's content.  Any
    edit, addition, or deletion of a ``*.py`` file changes the
    signature; an edit that preserves mtime *and* size (``os.utime``
    games) is invisible by design — that is the price of the cheap scan,
    and tests that rewrite source call :func:`invalidate_fingerprint_memo`.
    """
    sig = []
    for path in files:
        try:
            st = path.stat()
            sig.append((str(path), st.st_mtime_ns, st.st_size))
        except OSError:
            sig.append((str(path), -1, -1))
    return tuple(sig)


def source_fingerprint(roots: Optional[Sequence[os.PathLike]] = None) -> str:
    """Digest of every ``*.py`` file under ``roots`` (path + content).

    Memoized per root set, revalidated by a stat scan on every call: the
    harness hashes ~10^2 files once, then re-hashes only when the file
    set, an mtime, or a size changes — so a long-lived server picks up
    source edits without restarting, while the steady-state cost stays
    at one ``stat`` per file.
    """
    key = tuple(str(Path(r).resolve()) for r in roots) if roots else _default_roots()
    files = _source_files(key)
    sig = _stat_signature(files)
    cached = _FP_MEMO.get(key)
    if cached is not None and cached[0] == sig:
        return cached[1]
    digest = hashlib.sha256()
    for root in key:
        base = Path(root)
        if base.is_dir():
            batch = sorted(base.rglob("*.py"))
        else:
            batch = [base] if base.exists() else []
        for path in batch:
            rel = path.relative_to(base) if base.is_dir() else path.name
            digest.update(str(rel).encode())
            digest.update(path.read_bytes())
    value = digest.hexdigest()
    _FP_MEMO[key] = (sig, value)
    return value


def invalidate_fingerprint_memo() -> None:
    """Forget memoized source fingerprints.

    The stat-scan guard makes this unnecessary for ordinary edits (they
    change an mtime or a size); it remains for tests that rewrite a file
    while faking its stat back to the original.
    """
    _FP_MEMO.clear()


def _is_generation_dir(name: str) -> bool:
    return (len(name) == _GENERATION_LEN
            and all(c in "0123456789abcdef" for c in name))


class ResultCache:
    """Content-addressed store of task results under ``root``."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        namespace: str = "exec",
        source_roots: Optional[Sequence[os.PathLike]] = None,
    ):
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.namespace = namespace
        self.source_roots = source_roots
        # counters for reporting ("cache: 99/110 hit")
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: tasks that could not be keyed (unstable arguments) — executed
        #: normally, never cached
        self.unkeyed = 0
        #: reads that failed on a transient I/O error (entry left alone)
        self.transient_errors = 0
        #: entries dropped because their bytes did not unpickle
        self.corrupt = 0
        #: entries removed by :meth:`evict`
        self.evicted = 0

    # ------------------------------------------------------------------
    def _dir(self) -> Path:
        return self.root / self.namespace

    def generation(self) -> str:
        """Directory name of the current source generation."""
        return source_fingerprint(self.source_roots)[:_GENERATION_LEN]

    def _path(self, key: str) -> Path:
        return self._dir() / self.generation() / key[:2] / f"{key}.pkl"

    def task_key(self, task: TaskSpec) -> Optional[str]:
        """Full cache key for ``task``; None when it cannot be keyed."""
        try:
            fp = stable_fingerprint(task)
        except UnstableFingerprint:
            self.unkeyed += 1
            return None
        material = f"v{_FORMAT_VERSION}|{fp}|{source_fingerprint(self.source_roots)}"
        return hashlib.sha256(material.encode()).hexdigest()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``.

        A missing entry and a transient I/O failure (concurrent
        ``os.replace`` mid-read, momentary EPERM) are plain misses — the
        entry, if any, stays on disk because it is most likely valid.
        Only an entry whose bytes are present but do not unpickle is
        *corrupt*, counted as a miss, and removed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except OSError:
            self.transient_errors += 1
            self.misses += 1
            return False, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.corrupt += 1
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value``; returns False (and stores nothing) when the
        value itself cannot be pickled."""
        try:
            blob = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        except Exception:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.puts += 1
        return True

    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        base = self._dir()
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.rglob("*.pkl"))

    def total_bytes(self) -> int:
        """Disk footprint of this namespace: entries *and* temp files."""
        base = self._dir()
        if not base.is_dir():
            return 0
        total = 0
        for path in base.rglob("*"):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete this namespace's entries; returns how many went.

        Also sweeps ``*.tmp`` files orphaned by a ``put()`` that died
        between ``mkstemp`` and ``os.replace`` — they are invisible to
        ``entry_count`` but consume disk forever otherwise.
        """
        removed = 0
        base = self._dir()
        if base.is_dir():
            for path in base.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in base.rglob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    # ------------------------------------------------------------------
    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        tmp_grace_s: float = 300.0,
    ) -> dict:
        """Bound this namespace's disk usage; returns what was removed.

        Three passes, cheapest-garbage-first:

        1. ``*.tmp`` orphans older than ``tmp_grace_s`` (a live ``put``
           holds its temp file for milliseconds; anything old is the
           debris of a crashed writer);
        2. **stale generations** — entries written under a previous
           source fingerprint can never hit again (the fingerprint is in
           every key), so their whole directory goes;
        3. oldest-mtime entries of the current generation, until
           ``max_bytes`` / ``max_entries`` hold (either may be None).

        Removal is ``unlink``-based and safe against concurrent readers:
        a reader that already opened an entry keeps its file handle
        (POSIX semantics), and one that loses the race to ``open`` sees
        an ordinary miss.
        """
        out = {"tmp_removed": 0, "stale_generations": 0,
               "entries_removed": 0, "bytes_freed": 0}
        base = self._dir()
        if not base.is_dir():
            return out
        now = time.time()
        for tmp in base.rglob("*.tmp"):
            try:
                st = tmp.stat()
                if now - st.st_mtime >= tmp_grace_s:
                    tmp.unlink()
                    out["tmp_removed"] += 1
                    out["bytes_freed"] += st.st_size
            except OSError:
                pass
        current = self.generation()
        for gen_dir in [p for p in base.rglob("*")
                        if p.is_dir() and _is_generation_dir(p.name)]:
            if gen_dir.name == current:
                continue
            for path in gen_dir.rglob("*"):
                try:
                    if path.is_file():
                        size = path.stat().st_size
                        path.unlink()
                        out["bytes_freed"] += size
                        if path.suffix == ".pkl":
                            out["entries_removed"] += 1
                except OSError:
                    pass
            self._prune_empty_dirs(gen_dir)
            out["stale_generations"] += 1
        if max_bytes is not None or max_entries is not None:
            entries = []
            total = 0
            for path in base.rglob("*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime_ns, st.st_size, path))
                total += st.st_size
            count = len(entries)
            for _, size, path in sorted(entries, key=lambda e: e[0]):
                over_bytes = max_bytes is not None and total > max_bytes
                over_count = max_entries is not None and count > max_entries
                if not over_bytes and not over_count:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                count -= 1
                out["entries_removed"] += 1
                out["bytes_freed"] += size
        self.evicted += out["entries_removed"]
        return out

    @staticmethod
    def _prune_empty_dirs(top: Path) -> None:
        for dirpath, _dirnames, _filenames in os.walk(top, topdown=False):
            try:
                os.rmdir(dirpath)  # refuses (ENOTEMPTY) unless empty
            except OSError:
                pass

    def stats(self) -> dict:
        looked = self.hits + self.misses
        return {
            "root": str(self.root),
            "namespace": self.namespace,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "unkeyed": self.unkeyed,
            "transient_errors": self.transient_errors,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "hit_rate": self.hits / looked if looked else 0.0,
        }
