"""Picklable task descriptors and stable content fingerprints.

A :class:`TaskSpec` is the unit of work the execution layer moves
around: a plain ``(fn, args, kwargs)`` triple plus a display label.
Everything in it must survive a pickle round-trip to run in a worker
process; tasks that do not (closures, lambdas, live simulator objects)
are detected up front and executed inline in the parent instead, so
callers never have to care.

:func:`stable_fingerprint` turns a task (or any supported value) into a
hex digest that is stable across processes and interpreter runs — the
content half of the result cache's key.  It deliberately refuses to
fingerprint objects whose ``repr`` is identity-based (``<object at
0x...>``): a guessed key could alias two different inputs, and a cache
that can return the wrong answer is worse than no cache.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import math
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "TaskSpec",
    "TaskResult",
    "UnstableFingerprint",
    "stable_repr",
    "stable_fingerprint",
]

#: pickle protocol used everywhere in the exec layer (explicit so cached
#: blobs do not change meaning when the interpreter default moves)
PICKLE_PROTOCOL = 4


@dataclass
class TaskSpec:
    """One independent unit of work: ``fn(*args, **kwargs)``."""

    fn: Callable
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: human-readable tag for progress lines and error messages
    label: str = ""
    #: override the cache-key material (callers with a cheaper or more
    #: precise notion of identity than the generic fingerprint)
    cache_key: Optional[str] = None

    def run_inline(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def payload(self) -> bytes:
        """The bytes shipped to a worker; raises if not picklable."""
        return pickle.dumps((self.fn, self.args, self.kwargs),
                            protocol=PICKLE_PROTOCOL)

    def describe(self) -> str:
        if self.label:
            return self.label
        fn = self.fn
        name = getattr(fn, "__qualname__", None) or repr(fn)
        return f"{name}(...)"


@dataclass
class TaskResult:
    """Outcome of one task, in submission order.

    Exactly one of ``value``/``error`` is meaningful: ``error`` is
    ``None`` on success and a one-line description (exception type and
    message, or timeout/crash diagnosis) on failure.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    #: served from the result cache without executing
    cached: bool = False
    #: executed in the parent process (jobs<=1, unpicklable, or fallback)
    inline: bool = False
    #: execution attempts (2 = retried once after a crash/timeout)
    attempts: int = 0
    #: wall-clock seconds of the successful attempt (0 for cache hits)
    wall_s: float = 0.0
    #: worker slot that produced the value (None for inline/cached)
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Stable fingerprints
# ----------------------------------------------------------------------
class UnstableFingerprint(TypeError):
    """The value has no content-stable representation (identity repr)."""


def _function_ref(fn: Callable) -> str:
    mod = getattr(fn, "__module__", None)
    qual = getattr(fn, "__qualname__", None)
    if not mod or not qual or "<locals>" in qual or "<lambda>" in qual:
        raise UnstableFingerprint(
            f"cannot fingerprint non-module-level callable {fn!r}")
    return f"fn:{mod}.{qual}"


def stable_repr(value: Any) -> str:
    """A process-independent textual form of ``value``.

    Covers the vocabulary task arguments are made of — primitives,
    containers, dataclasses, numpy arrays, module-level callables and
    ``functools.partial`` — and raises :class:`UnstableFingerprint` for
    anything whose identity cannot be derived from content.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return repr(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "float:nan"
        return value.hex()
    # numpy scalars/arrays without a hard import dependency
    tobytes = getattr(value, "tobytes", None)
    dtype = getattr(value, "dtype", None)
    if tobytes is not None and dtype is not None:
        shape = getattr(value, "shape", ())
        digest = hashlib.sha256(value.tobytes()).hexdigest()
        return f"ndarray:{shape}:{dtype}:{digest}"
    if isinstance(value, (list, tuple)):
        tag = "list" if isinstance(value, list) else "tuple"
        return f"{tag}[" + ",".join(stable_repr(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "set{" + ",".join(sorted(stable_repr(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted((stable_repr(k), stable_repr(v))
                       for k, v in value.items())
        return "dict{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    if isinstance(value, functools.partial):
        return (f"partial({_function_ref(value.func)},"
                f"{stable_repr(value.args)},{stable_repr(value.keywords)})")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = ",".join(
            f"{f.name}={stable_repr(getattr(value, f.name))}"
            for f in dataclasses.fields(value))
        return f"{cls.__module__}.{cls.__qualname__}({fields})"
    if callable(value):
        return _function_ref(value)
    text = repr(value)
    if " at 0x" in text or "object at" in text:
        raise UnstableFingerprint(
            f"identity-based repr for {type(value).__qualname__}; "
            f"cannot build a content key")
    return f"{type(value).__module__}.{type(value).__qualname__}:{text}"


def stable_fingerprint(task: TaskSpec) -> str:
    """Content digest of a task's callable + arguments (hex sha256)."""
    if task.cache_key is not None:
        material = f"override:{task.cache_key}"
    else:
        # stable_repr handles both plain module-level callables (same
        # material as _function_ref) and functools.partial cells.
        material = (f"{stable_repr(task.fn)}|{stable_repr(task.args)}"
                    f"|{stable_repr(task.kwargs)}")
    return hashlib.sha256(material.encode()).hexdigest()
