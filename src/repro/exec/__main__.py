"""``python -m repro.exec`` — inspect, clear, or bound the result cache."""

from __future__ import annotations

import argparse
import sys

from .cache import DEFAULT_CACHE_DIR, ResultCache, source_fingerprint
from .pool import auto_jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="parallel-execution layer: worker info and result cache",
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"cache root (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--clear", action="store_true",
                        help="delete every cached result and exit")
    parser.add_argument("--evict", action="store_true",
                        help="sweep stale source generations and orphaned "
                             "temp files; with --max-mb, also bound the "
                             "store by evicting oldest entries")
    parser.add_argument("--max-mb", type=float, default=None,
                        help="with --evict: bound total size to this many "
                             "megabytes")
    parser.add_argument("--namespace", default="",
                        help="restrict --clear/--evict to one namespace "
                             "(default: all)")
    args = parser.parse_args(argv)

    cache = ResultCache(root=args.cache_dir, namespace=args.namespace)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {args.cache_dir}")
        return 0
    if args.evict:
        max_bytes = (int(args.max_mb * 1024 * 1024)
                     if args.max_mb is not None else None)
        out = cache.evict(max_bytes=max_bytes)
        print(f"evicted {out['entries_removed']} entr(ies), "
              f"{out['stale_generations']} stale generation(s), "
              f"{out['tmp_removed']} orphaned temp file(s) "
              f"({out['bytes_freed']} bytes freed)")
        return 0

    print(f"workers with -j auto : {auto_jobs()}")
    print(f"cache root           : {args.cache_dir}")
    print(f"cached results       : {cache.entry_count()}")
    print(f"cache bytes          : {cache.total_bytes()}")
    print(f"source fingerprint   : {source_fingerprint()[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
