"""``python -m repro.exec`` — inspect or clear the run-result cache."""

from __future__ import annotations

import argparse
import sys

from .cache import DEFAULT_CACHE_DIR, ResultCache, source_fingerprint
from .pool import auto_jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="parallel-execution layer: worker info and result cache",
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"cache root (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--clear", action="store_true",
                        help="delete every cached result and exit")
    args = parser.parse_args(argv)

    cache = ResultCache(root=args.cache_dir, namespace="")
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {args.cache_dir}")
        return 0

    print(f"workers with -j auto : {auto_jobs()}")
    print(f"cache root           : {args.cache_dir}")
    print(f"cached results       : {cache.entry_count()}")
    print(f"source fingerprint   : {source_fingerprint()[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
