"""Persistent worker-pool fan-out with deterministic result ordering.

The simulation grids this repo runs (conformance matrix cells, fuzz
seeds, benchmark sweep cells, calibration probes) are embarrassingly
parallel: every task is an independent, deterministic, CPU-bound
function call.  :class:`WorkerPool` fans them across a set of
long-lived ``multiprocessing`` workers and guarantees:

* **Determinism** — results come back indexed by submission order, so
  the caller-visible output of a parallel run is identical to the
  sequential run, regardless of completion order.
* **Warm reuse** — workers are spawned once (``fork`` where available,
  so the parent's imported modules come for free) and stream **chunks**
  of tasks off a shared queue, amortizing IPC and scheduling overhead
  across many sub-10ms simulation runs.  Each chunk is encoded with a
  *single* ``pickle.dumps`` covering all of its tasks (shared memo
  table, one frame per queue message) instead of one dumps per task;
  ``stats()`` reports the encode time and an estimate of what the
  batching saved.
* **Robustness** — a per-task timeout kills and replaces a stuck
  worker; a crashed worker (hard exit, OOM kill) is detected, its
  in-flight task retried once on a fresh worker, and its undispatched
  chunk remainder requeued.  Results travel over a lock-guarded pipe
  written *synchronously* in the worker (no queue feeder thread), so a
  hard-exiting task cannot truncate a frame and desync the shared
  stream; if the stream is broken anyway (a worker terminated mid-send)
  the silent-stall detector rebuilds pipes and workers once and
  redispatches the orphaned chunks.  A task that times out on every pooled
  attempt gets one final **untimed inline attempt** in the parent — a
  hang specific to the worker environment (fork-state corruption, a
  wedged queue feeder) completes there instead of failing the cell,
  while a genuinely divergent task still hangs visibly rather than
  being silently dropped.  A task that raises an ordinary exception is
  *not* retried (it is deterministic); the error text lands in its
  :class:`~repro.exec.task.TaskResult`.
* **Graceful degradation** — with ``jobs<=1``, with unpicklable tasks,
  or when process spawning is unavailable (restricted sandboxes), work
  runs inline in the parent with identical semantics.
* **Cold-path economics** — on an *auto* jobs request (``-j auto``,
  ``REPRO_JOBS=auto``, ``jobs<=0``), :func:`run_tasks` refuses to spawn
  a pool that cannot win: one available core (workers would time-slice
  it — BENCH_HARNESS.json measured pooled 0.87x sequential on the 1-CPU
  CI runner) or fewer pending cells than the spawn-amortization
  threshold both run inline instead.  An explicit ``-j N`` is honored
  as stated — the caller measured their machine; ordering and results
  are identical either way.

:func:`run_tasks` is the one-call façade used by the verify/bench/
calibration harnesses; it layers the content-keyed
:class:`~repro.exec.cache.ResultCache` in front of the pool so
unchanged grid cells are skipped entirely on re-runs.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from .cache import ResultCache
from .task import PICKLE_PROTOCOL, TaskResult, TaskSpec

__all__ = ["WorkerPool", "run_tasks", "resolve_jobs", "auto_jobs",
           "effective_cpu_count", "SPAWN_AMORTIZATION_MIN"]

#: environment variable consulted when a harness passes ``jobs=None``
JOBS_ENV = "REPRO_JOBS"

#: upper bound on worker count (grids rarely have >10^2 cells in flight)
MAX_JOBS = 64

#: parent poll tick while waiting on worker messages (seconds)
_TICK = 0.05

#: quiet period after which an idle pool with pending work is assumed to
#: have lost a chunk (a worker hard-exited before its queue feeder
#: flushed the pick/start messages) and requeues the orphans
_STALL_S = 1.0

#: minimum pending cells for :func:`run_tasks` to spawn a pool at all:
#: worker spawn + pickling costs ~0.5 s, and a sub-10ms simulation cell
#: pays that back only across a grid — a couple of cells finish inline
#: before the first worker is even up
SPAWN_AMORTIZATION_MIN = 4


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the allowance: under a
    CPU affinity mask or a container cgroup quota the process may own
    far fewer cores.  Prefer ``os.sched_getaffinity`` (Linux) and fall
    back to ``os.cpu_count()`` elsewhere.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def auto_jobs() -> int:
    """Worker count for ``-j auto``: one per *available* core, at least 1.

    On a single-CPU host this returns 1, which makes ``-j auto`` run
    inline: BENCH_HARNESS.json measured pooled speedup 0.873 on the
    1-CPU CI runner — worker spawn + IPC overhead with no parallelism to
    pay for it — so the pool must only engage when a second core exists.
    """
    return max(1, min(effective_cpu_count(), MAX_JOBS))


def resolve_jobs(jobs) -> int:
    """Normalize a jobs request (int, numeric string, ``"auto"``, None).

    ``None`` defers to the ``REPRO_JOBS`` environment variable (so
    long-standing drivers opt into parallelism without an API change)
    and defaults to 1 — sequential — when that is unset.  ``"auto"``,
    0, and negative values mean one worker per core.
    """
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return auto_jobs()
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"jobs must be an integer or 'auto', got {jobs!r}")
    if jobs <= 0:
        return auto_jobs()
    return min(int(jobs), MAX_JOBS)


def _is_auto_request(jobs) -> bool:
    """True when the jobs request delegates the worker count to us
    (``"auto"``, 0/negative, or unset with ``REPRO_JOBS=auto``) rather
    than naming an explicit count."""
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return True
        try:
            jobs = int(jobs)
        except ValueError:
            return False
    return jobs <= 0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(slot: int, gen: int, task_q, result_send,
                 result_lock) -> None:
    """Worker loop: stream chunks, report per-task starts and results.

    A chunk arrives as **one** pickle blob covering all of its tasks
    (one ``loads`` here mirrors the single ``dumps`` on the parent's
    dispatch path); a blob that fails to decode is reported as
    ``badchunk`` so the parent can re-frame its tasks instead of the
    whole pool wedging.  Every result is pre-pickled here so an
    unpicklable return value becomes an ordinary per-task error instead
    of poisoning the channel.

    Results travel over a raw ``Pipe`` guarded by a shared lock rather
    than an ``mp.Queue``: a queue's feeder *thread* writes frames
    asynchronously, so a task that hard-exits the process (``os._exit``,
    OOM kill) can truncate a frame mid-write and desync the shared
    stream for every surviving worker.  A locked in-line ``send``
    completes before the task function ever runs — a crash between
    messages leaves the stream clean.

    ``gen`` is this worker incarnation's spawn generation; it rides in
    every message so the parent can tell a live worker's reports from
    the final, already-in-the-pipe reports of a dead predecessor on the
    same slot (crediting a stale ``pick``/``start`` to the idle
    replacement would park the pool forever — the stall detector only
    fires when every worker looks idle).
    """
    # Harnesses inside a worker (e.g. fuzz_schedules within run_case)
    # must not spawn nested pools off an inherited REPRO_JOBS.
    os.environ[JOBS_ENV] = "1"

    def put(msg) -> None:
        with result_lock:
            result_send.send(msg)

    while True:
        msg = task_q.get()
        if msg is None:
            break
        chunk_id, blob = msg
        put(("pick", slot, gen, chunk_id))
        try:
            items = pickle.loads(blob)
        except BaseException:  # noqa: BLE001 — reported, not hidden
            put(("badchunk", slot, gen, chunk_id))
            continue
        for index, (fn, args, kwargs) in items:
            put(("start", slot, gen, index))
            t0 = time.perf_counter()
            try:
                value = fn(*args, **kwargs)
                payload = pickle.dumps((True, value), protocol=PICKLE_PROTOCOL)
            except BaseException as exc:  # noqa: BLE001 — reported, not hidden
                payload = pickle.dumps(
                    (False, f"{type(exc).__name__}: {exc}"),
                    protocol=PICKLE_PROTOCOL,
                )
            put(("done", slot, gen, index, payload,
                 time.perf_counter() - t0))
        put(("free", slot, gen, chunk_id))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    proc: object
    #: spawn generation — messages from an earlier incarnation of this
    #: slot (already in the pipe when it died) carry an older gen and
    #: must not be credited to this one
    gen: int = 0
    #: chunk the worker announced picking up (None when idle)
    chunk: Optional[int] = None
    #: task currently executing, and when it started (monotonic)
    current: Optional[int] = None
    started: float = 0.0
    busy_s: float = 0.0
    tasks_done: int = 0


@dataclass
class _Chunk:
    #: indices not yet reported done (requeued if the holder dies); the
    #: task payloads themselves travel as one batch-encoded blob and are
    #: re-encoded from the live TaskSpecs on any retry
    remaining: Set[int]


class WorkerPool:
    """A persistent pool; ``map`` may be called many times.

    Use as a context manager (or call :meth:`close`) so workers are
    reaped.  With ``jobs<=1`` or when worker processes cannot be
    created, the pool is *inline*: ``map`` runs tasks in the parent and
    every guarantee except parallelism still holds.
    """

    def __init__(self, jobs=None, *, chunk_size: Optional[int] = None,
                 task_timeout: Optional[float] = None, retries: int = 1):
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.retries = retries
        self.respawns = 0
        self.last_wall_s = 0.0
        # --- dispatch-encode accounting (batch pickling) --------------
        #: seconds spent batch-encoding chunks for dispatch
        self.encode_s = 0.0
        #: pickle.dumps calls on the dispatch path (one per chunk)
        self.encode_batches = 0
        #: tasks covered by those batch encodes
        self.encode_tasks = 0
        #: measured per-task cost of the old frame-each-task-individually
        #: encoding (probed once, on the first multi-task chunk)
        self._encode_probe: Optional[float] = None
        self._chunk_ids = itertools.count()
        self._gens = itertools.count()
        self._workers: List[_WorkerState] = []
        self._task_q = None
        self._result_recv = None
        self._result_send = None
        self._result_lock = None
        self._mp = None
        self._broken = False
        if self.jobs > 1:
            self._start_workers()

    # -- lifecycle -----------------------------------------------------
    def _start_workers(self) -> None:
        try:
            import multiprocessing as mp
            method = "fork" if "fork" in mp.get_all_start_methods() else None
            self._mp = mp.get_context(method)
            self._task_q = self._mp.Queue()
            self._result_recv, self._result_send = self._mp.Pipe(duplex=False)
            self._result_lock = self._mp.Lock()
            for slot in range(self.jobs):
                self._workers.append(self._spawn(slot))
        except Exception:
            # restricted environments (no /dev/shm, no fork): run inline
            self._broken = True
            self._workers = []

    def _spawn(self, slot: int) -> _WorkerState:
        gen = next(self._gens)
        proc = self._mp.Process(
            target=_worker_main,
            args=(slot, gen, self._task_q, self._result_send,
                  self._result_lock),
            daemon=True, name=f"repro-exec-{slot}",
        )
        proc.start()
        return _WorkerState(proc=proc, gen=gen)

    def _rebuild(self) -> None:
        """Replace both queues and every worker with fresh ones.

        A worker hard-exiting *mid-write* can leave a truncated frame in
        the shared result pipe; every later message on that pipe is then
        unreadable and the pool looks permanently idle while work is
        pending.  Fresh pipes and fresh workers recover everything
        except the bytes that were in flight — the caller requeues the
        orphaned chunks.  On failure the pool is marked broken and the
        remaining work falls back inline.
        """
        old = self._workers
        for state in old:
            if state.proc.is_alive():
                state.proc.terminate()
                state.proc.join(timeout=1.0)
        for q in (self._task_q, self._result_recv, self._result_send):
            try:
                q.close()
            except Exception:
                pass
        self._workers = []
        try:
            self._task_q = self._mp.Queue()
            self._result_recv, self._result_send = self._mp.Pipe(duplex=False)
            self._result_lock = self._mp.Lock()
            for slot in range(self.jobs):
                self._workers.append(self._spawn(slot))
            for fresh, prev in zip(self._workers, old):
                fresh.busy_s = prev.busy_s
                fresh.tasks_done = prev.tasks_done
            self.respawns += self.jobs
        except Exception:
            self._broken = True
            self._workers = []

    @property
    def inline(self) -> bool:
        return self.jobs <= 1 or self._broken or not self._workers

    def close(self) -> None:
        if self._task_q is not None:
            for _ in self._workers:
                try:
                    self._task_q.put(None)
                except Exception:
                    break
            for state in self._workers:
                state.proc.join(timeout=2.0)
                if state.proc.is_alive():
                    state.proc.terminate()
                    state.proc.join(timeout=1.0)
            self._task_q.close()
            self._result_recv.close()
            self._result_send.close()
        self._workers = []
        self._task_q = None
        self._result_recv = self._result_send = self._result_lock = None
        self._broken = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        # What the per-task framing of the same dispatches would have
        # cost, minus what batch encoding actually cost: the saved
        # cold-path time, estimated from the probed per-task rate.
        saved = 0.0
        if self._encode_probe is not None:
            saved = max(0.0,
                        self._encode_probe * self.encode_tasks - self.encode_s)
        return {
            "jobs": self.jobs,
            "inline": self.inline,
            "respawns": self.respawns,
            "wall_s": self.last_wall_s,
            "encode_s": round(self.encode_s, 6),
            "encode_batches": self.encode_batches,
            "encode_tasks": self.encode_tasks,
            "encode_saved_est_s": round(saved, 6),
            "per_worker_busy_s": [round(w.busy_s, 6) for w in self._workers],
            "per_worker_tasks": [w.tasks_done for w in self._workers],
        }

    # -- execution -----------------------------------------------------
    def map(self, tasks: Sequence[TaskSpec],
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> List[TaskResult]:
        """Run every task; results indexed by submission order.

        ``on_result`` is invoked **in submission order** (completions
        are buffered), so progress output of a parallel run is
        byte-identical to the sequential one.
        """
        t0 = time.perf_counter()
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        reported = 0

        def settle(index: int, result: TaskResult) -> None:
            nonlocal reported
            results[index] = result
            if on_result is not None:
                while reported < len(results) and results[reported] is not None:
                    on_result(results[reported])
                    reported += 1

        def run_one_inline(index: int, task: TaskSpec) -> None:
            start = time.perf_counter()
            try:
                value = task.run_inline()
                settle(index, TaskResult(index=index, value=value, inline=True,
                                         attempts=1,
                                         wall_s=time.perf_counter() - start))
            except BaseException as exc:  # noqa: BLE001
                settle(index, TaskResult(
                    index=index, error=f"{type(exc).__name__}: {exc}",
                    inline=True, attempts=1,
                    wall_s=time.perf_counter() - start))

        if self.inline:
            for index, task in enumerate(tasks):
                run_one_inline(index, task)
            self.last_wall_s = time.perf_counter() - t0
            return results  # type: ignore[return-value]

        # Everything enters the pooled path; tasks that turn out not to
        # pickle are detected on their first batch encode and come back
        # here for an inline run.
        inline_indices = self._run_pooled(tasks, settle)
        for index in inline_indices:
            run_one_inline(index, tasks[index])
        self.last_wall_s = time.perf_counter() - t0
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_pooled(self, tasks, settle) -> List[int]:
        """Dispatch every task through the workers; returns the indices
        that could not be pickled (the caller runs those inline)."""
        if not tasks:
            return []
        pending: Set[int] = set(range(len(tasks)))
        unpicklable: List[int] = []
        #: timeout-exhausted tasks awaiting one last untimed inline attempt
        fallback: Set[int] = set()
        attempts: Dict[int, int] = {index: 0 for index in pending}
        dispatches: Dict[int, int] = {index: 0 for index in pending}
        chunks: Dict[int, _Chunk] = {}

        def encode_batch(indices: Sequence[int]) -> Optional[bytes]:
            """One ``pickle.dumps`` for the whole chunk (None on failure).

            The old path framed every task individually — len(chunk)
            dumps calls plus a list of blobs per queue message; batching
            shares the pickle memo table and the framing overhead across
            the chunk.  The first multi-task batch also times the
            per-task framing once, so ``stats()`` can report the encode
            time the batching saved.
            """
            items = [(i, (tasks[i].fn, tasks[i].args, tasks[i].kwargs))
                     for i in indices]
            t0 = time.perf_counter()
            try:
                blob = pickle.dumps(items, protocol=PICKLE_PROTOCOL)
            except Exception:
                return None
            self.encode_s += time.perf_counter() - t0
            self.encode_batches += 1
            self.encode_tasks += len(items)
            if self._encode_probe is None and len(items) > 1:
                t1 = time.perf_counter()
                for item in items:
                    pickle.dumps(item, protocol=PICKLE_PROTOCOL)
                self._encode_probe = (time.perf_counter() - t1) / len(items)
            return blob

        def enqueue(indices: Sequence[int]) -> None:
            good = list(indices)
            blob = encode_batch(good)
            if blob is None:
                # Some task in the batch does not pickle: probe each one,
                # re-batch the good subset, route the bad ones inline.
                ok: List[int] = []
                for i in good:
                    task = tasks[i]
                    try:
                        pickle.dumps((task.fn, task.args, task.kwargs),
                                     protocol=PICKLE_PROTOCOL)
                        ok.append(i)
                    except Exception:
                        pending.discard(i)
                        unpicklable.append(i)
                if not ok:
                    return
                good = ok
                blob = encode_batch(good)
                if blob is None:  # unreproducible pickling failure
                    for i in good:
                        pending.discard(i)
                        unpicklable.append(i)
                    return
            chunk_id = next(self._chunk_ids)
            chunks[chunk_id] = _Chunk(set(good))
            for i in good:
                dispatches[i] = dispatches.get(i, 0) + 1
            self._task_q.put((chunk_id, blob))

        def requeue_chunk(chunk_id: int) -> None:
            """A worker could not decode ``chunk_id``: re-frame its tasks
            (each retry re-encodes from the live specs) unless one keeps
            failing, which fails that task rather than looping."""
            chunk = chunks.pop(chunk_id, None)
            if chunk is None:
                return
            retry = [i for i in sorted(chunk.remaining)
                     if i in pending
                     and dispatches.get(i, 0) <= self.retries + 1]
            for index in sorted(chunk.remaining.difference(retry)):
                if index in pending:
                    finish(index, TaskResult(
                        index=index, attempts=attempts.get(index, 0),
                        error="chunk repeatedly failed to decode in the "
                              "worker"))
            if retry:
                enqueue(retry)

        size = self.chunk_size or max(
            1, min(32, math.ceil(len(tasks) / (self.jobs * 4))))
        order = sorted(pending)
        for lo in range(0, len(order), size):
            enqueue(order[lo:lo + size])

        def finish(index: int, result: TaskResult) -> None:
            if index in pending or index in fallback:
                pending.discard(index)
                fallback.discard(index)
                settle(index, result)

        def fail_or_retry(index: int, why: str,
                          inline_fallback: bool = False) -> None:
            """A crash/timeout consumed one attempt of ``index``."""
            if index not in pending:
                return
            if attempts[index] <= self.retries:
                enqueue([index])
            elif inline_fallback:
                # Every pooled attempt timed out.  Give the task one
                # untimed attempt in the parent after the pool drains:
                # if the hang was an artifact of the worker environment
                # the task completes; if it is real, the hang stays
                # visible instead of becoming a silently-failed cell.
                pending.discard(index)
                fallback.add(index)
            else:
                finish(index, TaskResult(index=index, error=why,
                                         attempts=attempts[index]))

        def reap(slot: int, why: str, inline_fallback: bool = False) -> None:
            """Kill+replace worker ``slot``; reschedule its work."""
            state = self._workers[slot]
            if state.proc.is_alive():
                state.proc.terminate()
                state.proc.join(timeout=2.0)
            current, chunk_id = state.current, state.chunk
            state.current = state.chunk = None
            leftovers: List[int] = []
            if chunk_id is not None and chunk_id in chunks:
                leftovers = [i for i in chunks.pop(chunk_id).remaining
                             if i in pending and i != current]
            if leftovers:
                enqueue(leftovers)
            if current is not None:
                fail_or_retry(current, why, inline_fallback)
            try:
                replacement = self._spawn(slot)
                replacement.busy_s = state.busy_s
                replacement.tasks_done = state.tasks_done
                self._workers[slot] = replacement
                self.respawns += 1
            except Exception:
                self._broken = True

        last_activity = time.monotonic()
        stalled_rounds = 0
        rebuilt = False
        while pending:
            drained = self._drain_messages(chunks, attempts, finish,
                                           requeue_chunk)
            now = time.monotonic()
            if drained:
                last_activity = now
                stalled_rounds = 0
            else:
                self._check_timeouts(reap)
                self._check_deaths(reap)
                # Stall recovery: a worker can hard-exit between taking a
                # chunk off the queue and flushing its pick/start
                # messages — the chunk simply vanishes.  When the pool
                # has been completely idle for a while with work still
                # pending *and the task queue is empty* (a non-empty
                # queue means the chunks are merely waiting for a slow
                # worker, not lost), requeue every unfinished chunk
                # (duplicate completions are idempotent: first result
                # wins).
                if (pending and now - last_activity > _STALL_S
                        and all(w.current is None and w.chunk is None
                                for w in self._workers)
                        and all(w.proc.is_alive() for w in self._workers)
                        and self._task_q_empty()):
                    stalled_rounds += 1
                    orphans: Set[int] = set()
                    for chunk_id in list(chunks):
                        orphans.update(i for i in chunks.pop(chunk_id).remaining
                                       if i in pending)
                    if stalled_rounds >= 2 and not rebuilt:
                        # Two silent stalls in a row with live, idle
                        # workers: the requeued chunks should have
                        # produced at least a "pick" within a stall
                        # period, so the shared pipes themselves are
                        # suspect (a worker hard-exiting mid-write
                        # desyncs the result stream).  Rebuild queues
                        # and workers once, and give the orphans a
                        # clean dispatch slate — their earlier
                        # dispatches went into a black hole, not a
                        # crashing task.
                        rebuilt = True
                        self._rebuild()
                        if not self._broken:
                            for i in orphans:
                                dispatches[i] = 0
                    retry = [i for i in sorted(orphans)
                             if dispatches.get(i, 0) <= self.retries + 1]
                    for index in sorted(orphans.difference(retry)):
                        finish(index, TaskResult(
                            index=index, attempts=attempts.get(index, 0),
                            error="worker crashed repeatedly before "
                                  "reporting a result"))
                    if retry:
                        enqueue(retry)
                    last_activity = time.monotonic()
            if self._broken or not any(
                    w.proc.is_alive() for w in self._workers):
                break

        # Timeout-exhausted tasks get their last untimed attempt here;
        # also, if the pool died mid-run (or could not be repaired),
        # whatever is left finishes inline.
        for index in sorted(pending | fallback):
            task = tasks[index]
            start = time.perf_counter()
            try:
                value = task.run_inline()
                finish(index, TaskResult(
                    index=index, value=value, inline=True,
                    attempts=attempts[index] + 1,
                    wall_s=time.perf_counter() - start))
            except BaseException as exc:  # noqa: BLE001
                finish(index, TaskResult(
                    index=index, error=f"{type(exc).__name__}: {exc}",
                    inline=True, attempts=attempts[index] + 1,
                    wall_s=time.perf_counter() - start))
        return sorted(unpicklable)

    def _task_q_empty(self) -> bool:
        """Best-effort emptiness probe of the shared task queue.

        ``multiprocessing.Queue.empty`` is advisory, which is exactly the
        strength we need: a False answer proves chunks are still waiting
        for a slow worker (so stall recovery must hold off), and a
        spuriously-True answer merely reverts to the old, more eager
        behavior.  Platforms without the underlying semaphore support
        report empty, again degrading to the historical code path.
        """
        try:
            return self._task_q.empty()
        except (NotImplementedError, OSError):
            return True

    def _drain_messages(self, chunks, attempts, finish, requeue_chunk) -> bool:
        """Process every queued worker message; True if any arrived."""
        drained = False
        while True:
            try:
                if not self._result_recv.poll(_TICK):
                    return drained
                msg = self._result_recv.recv()
            except (OSError, EOFError):
                return drained
            except Exception:
                # Garbage frame — a worker was terminated mid-send and
                # truncated the stream.  Stop draining; the silent-stall
                # detector rebuilds the pipes.
                return drained
            drained = True
            kind, slot, gen = msg[0], msg[1], msg[2]
            # A message whose generation predates the slot's current
            # incarnation was sent by a worker that has since died and
            # been replaced.  Its *results* are still valid (first
            # completion wins), but it must not mutate the replacement's
            # bookkeeping: a stale pick/start marking an idle replacement
            # busy would pin the stall detector open forever.
            fresh = self._workers[slot].gen == gen
            if kind == "pick":
                chunk_id = msg[3]
                if fresh:
                    self._workers[slot].chunk = chunk_id
            elif kind == "start":
                index = msg[3]
                if fresh:
                    state = self._workers[slot]
                    state.current = index
                    state.started = time.monotonic()
                    attempts[index] = attempts.get(index, 0) + 1
            elif kind == "done":
                index, payload, wall = msg[3], msg[4], msg[5]
                if fresh:
                    state = self._workers[slot]
                    state.current = None
                    state.busy_s += wall
                    state.tasks_done += 1
                    chunk = chunks.get(state.chunk)
                    if chunk is not None:
                        chunk.remaining.discard(index)
                ok, value = pickle.loads(payload)
                result = TaskResult(
                    index=index, attempts=attempts.get(index, 1),
                    wall_s=wall, worker=slot,
                    **({"value": value} if ok else {"error": value}))
                finish(index, result)
            elif kind == "free":
                chunk_id = msg[3]
                chunks.pop(chunk_id, None)
                if fresh and self._workers[slot].chunk == chunk_id:
                    self._workers[slot].chunk = None
            elif kind == "badchunk":
                chunk_id = msg[3]
                if fresh and self._workers[slot].chunk == chunk_id:
                    self._workers[slot].chunk = None
                requeue_chunk(chunk_id)
            # anything else: ignore (unknown kind from a future format)
            if not self._result_recv.poll(0):
                return drained

    def _check_timeouts(self, reap) -> None:
        if self.task_timeout is None:
            return
        now = time.monotonic()
        for slot, state in enumerate(self._workers):
            if (state.current is not None
                    and now - state.started > self.task_timeout):
                reap(slot, f"task timeout after {self.task_timeout:g}s "
                           f"(worker {slot} killed)",
                     inline_fallback=True)

    def _check_deaths(self, reap) -> None:
        for slot, state in enumerate(self._workers):
            if not state.proc.is_alive():
                code = state.proc.exitcode
                reap(slot, f"worker crashed (exit code {code})")


# ----------------------------------------------------------------------
# Façade
# ----------------------------------------------------------------------
def run_tasks(
    tasks: Sequence[TaskSpec],
    jobs=None,
    *,
    cache: Optional[ResultCache] = None,
    task_timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
    retries: int = 1,
    progress: Optional[Callable[[TaskResult], None]] = None,
    pool: Optional[WorkerPool] = None,
    stats_out: Optional[dict] = None,
) -> List[TaskResult]:
    """Run independent tasks through cache + pool; results in order.

    The cache, when given, is consulted first: hits are returned without
    executing anything, misses are executed (pooled or inline) and
    stored on success.  ``progress`` fires once per task in submission
    order.  ``stats_out`` (a dict) receives pool utilization and cache
    counters for harness reporting.  Pass ``pool`` to reuse a warm
    :class:`WorkerPool` across several calls.
    """
    t0 = time.perf_counter()
    results: List[Optional[TaskResult]] = [None] * len(tasks)
    reported = 0

    def flush(index: int, result: TaskResult) -> None:
        nonlocal reported
        results[index] = result
        if progress is not None:
            while reported < len(results) and results[reported] is not None:
                progress(results[reported])
                reported += 1

    keys: Dict[int, str] = {}
    misses: List[int] = []
    for index, task in enumerate(tasks):
        key = cache.task_key(task) if cache is not None else None
        if key is not None:
            keys[index] = key
            hit, value = cache.get(key)
            if hit:
                flush(index, TaskResult(index=index, value=value, cached=True))
                continue
        misses.append(index)

    # A fully-warm cache never pays pool startup: only spawn workers
    # when there is something to execute — and, on an auto request, only
    # when the fan-out can win.  One available core means workers
    # time-slice it; fewer misses than the amortization threshold never
    # pay back worker spawn.  An explicit -j N is honored as stated.
    # Either way the tasks run inline with identical ordering/results.
    own_pool: Optional[WorkerPool] = None
    if misses and pool is None:
        jobs_n = resolve_jobs(jobs)
        if jobs_n > 1 and _is_auto_request(jobs):
            if (effective_cpu_count() == 1
                    or len(misses) < SPAWN_AMORTIZATION_MIN):
                jobs_n = 1
            else:
                jobs_n = min(jobs_n, len(misses))
        pool = own_pool = WorkerPool(jobs_n, chunk_size=chunk_size,
                                     task_timeout=task_timeout,
                                     retries=retries)
    try:
        def landed(sub: TaskResult) -> None:
            index = misses[sub.index]
            result = TaskResult(
                index=index, value=sub.value, error=sub.error,
                cached=False, inline=sub.inline, attempts=sub.attempts,
                wall_s=sub.wall_s, worker=sub.worker)
            if cache is not None and result.ok and index in keys:
                cache.put(keys[index], result.value)
            flush(index, result)

        if misses:
            pool.map([tasks[i] for i in misses], on_result=landed)
        if stats_out is not None:
            stats_out.update(pool.stats() if pool is not None
                             else {"jobs": resolve_jobs(jobs), "inline": True,
                                   "respawns": 0, "wall_s": 0.0,
                                   "per_worker_busy_s": [],
                                   "per_worker_tasks": []})
            stats_out["wall_s"] = round(time.perf_counter() - t0, 6)
            stats_out["tasks"] = len(tasks)
            stats_out["executed"] = len(misses)
            if cache is not None:
                stats_out["cache"] = cache.stats()
    finally:
        if own_pool is not None:
            own_pool.close()
    return results  # type: ignore[return-value]
