"""Persistent worker-pool fan-out with deterministic result ordering.

The simulation grids this repo runs (conformance matrix cells, fuzz
seeds, benchmark sweep cells, calibration probes) are embarrassingly
parallel: every task is an independent, deterministic, CPU-bound
function call.  :class:`WorkerPool` fans them across a set of
long-lived ``multiprocessing`` workers and guarantees:

* **Determinism** — results come back indexed by submission order, so
  the caller-visible output of a parallel run is identical to the
  sequential run, regardless of completion order.
* **Warm reuse** — workers are spawned once (``fork`` where available,
  so the parent's imported modules come for free) and stream **chunks**
  of tasks off a shared queue, amortizing IPC and scheduling overhead
  across many sub-10ms simulation runs.
* **Robustness** — a per-task timeout kills and replaces a stuck
  worker; a crashed worker (hard exit, OOM kill) is detected, its
  in-flight task retried once on a fresh worker, and its undispatched
  chunk remainder requeued.  A task that times out on every pooled
  attempt gets one final **untimed inline attempt** in the parent — a
  hang specific to the worker environment (fork-state corruption, a
  wedged queue feeder) completes there instead of failing the cell,
  while a genuinely divergent task still hangs visibly rather than
  being silently dropped.  A task that raises an ordinary exception is
  *not* retried (it is deterministic); the error text lands in its
  :class:`~repro.exec.task.TaskResult`.
* **Graceful degradation** — with ``jobs<=1``, with unpicklable tasks,
  or when process spawning is unavailable (restricted sandboxes), work
  runs inline in the parent with identical semantics.
* **Cold-path economics** — on an *auto* jobs request (``-j auto``,
  ``REPRO_JOBS=auto``, ``jobs<=0``), :func:`run_tasks` refuses to spawn
  a pool that cannot win: one available core (workers would time-slice
  it — BENCH_HARNESS.json measured pooled 0.87x sequential on the 1-CPU
  CI runner) or fewer pending cells than the spawn-amortization
  threshold both run inline instead.  An explicit ``-j N`` is honored
  as stated — the caller measured their machine; ordering and results
  are identical either way.

:func:`run_tasks` is the one-call façade used by the verify/bench/
calibration harnesses; it layers the content-keyed
:class:`~repro.exec.cache.ResultCache` in front of the pool so
unchanged grid cells are skipped entirely on re-runs.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from .cache import ResultCache
from .task import PICKLE_PROTOCOL, TaskResult, TaskSpec

__all__ = ["WorkerPool", "run_tasks", "resolve_jobs", "auto_jobs",
           "effective_cpu_count", "SPAWN_AMORTIZATION_MIN"]

#: environment variable consulted when a harness passes ``jobs=None``
JOBS_ENV = "REPRO_JOBS"

#: upper bound on worker count (grids rarely have >10^2 cells in flight)
MAX_JOBS = 64

#: parent poll tick while waiting on worker messages (seconds)
_TICK = 0.05

#: quiet period after which an idle pool with pending work is assumed to
#: have lost a chunk (a worker hard-exited before its queue feeder
#: flushed the pick/start messages) and requeues the orphans
_STALL_S = 1.0

#: minimum pending cells for :func:`run_tasks` to spawn a pool at all:
#: worker spawn + pickling costs ~0.5 s, and a sub-10ms simulation cell
#: pays that back only across a grid — a couple of cells finish inline
#: before the first worker is even up
SPAWN_AMORTIZATION_MIN = 4


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the allowance: under a
    CPU affinity mask or a container cgroup quota the process may own
    far fewer cores.  Prefer ``os.sched_getaffinity`` (Linux) and fall
    back to ``os.cpu_count()`` elsewhere.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def auto_jobs() -> int:
    """Worker count for ``-j auto``: one per *available* core, at least 1.

    On a single-CPU host this returns 1, which makes ``-j auto`` run
    inline: BENCH_HARNESS.json measured pooled speedup 0.873 on the
    1-CPU CI runner — worker spawn + IPC overhead with no parallelism to
    pay for it — so the pool must only engage when a second core exists.
    """
    return max(1, min(effective_cpu_count(), MAX_JOBS))


def resolve_jobs(jobs) -> int:
    """Normalize a jobs request (int, numeric string, ``"auto"``, None).

    ``None`` defers to the ``REPRO_JOBS`` environment variable (so
    long-standing drivers opt into parallelism without an API change)
    and defaults to 1 — sequential — when that is unset.  ``"auto"``,
    0, and negative values mean one worker per core.
    """
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return auto_jobs()
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"jobs must be an integer or 'auto', got {jobs!r}")
    if jobs <= 0:
        return auto_jobs()
    return min(int(jobs), MAX_JOBS)


def _is_auto_request(jobs) -> bool:
    """True when the jobs request delegates the worker count to us
    (``"auto"``, 0/negative, or unset with ``REPRO_JOBS=auto``) rather
    than naming an explicit count."""
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return True
        try:
            jobs = int(jobs)
        except ValueError:
            return False
    return jobs <= 0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(slot: int, task_q, result_q) -> None:
    """Worker loop: stream chunks, report per-task starts and results.

    Every result is pre-pickled here so an unpicklable return value
    becomes an ordinary per-task error instead of poisoning the queue.
    """
    # Harnesses inside a worker (e.g. fuzz_schedules within run_case)
    # must not spawn nested pools off an inherited REPRO_JOBS.
    os.environ[JOBS_ENV] = "1"
    while True:
        msg = task_q.get()
        if msg is None:
            break
        chunk_id, items = msg
        result_q.put(("pick", slot, chunk_id))
        for index, blob in items:
            result_q.put(("start", slot, index))
            t0 = time.perf_counter()
            try:
                fn, args, kwargs = pickle.loads(blob)
                value = fn(*args, **kwargs)
                payload = pickle.dumps((True, value), protocol=PICKLE_PROTOCOL)
            except BaseException as exc:  # noqa: BLE001 — reported, not hidden
                payload = pickle.dumps(
                    (False, f"{type(exc).__name__}: {exc}"),
                    protocol=PICKLE_PROTOCOL,
                )
            result_q.put(("done", slot, index, payload,
                          time.perf_counter() - t0))
        result_q.put(("free", slot, chunk_id))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    proc: object
    #: chunk the worker announced picking up (None when idle)
    chunk: Optional[int] = None
    #: task currently executing, and when it started (monotonic)
    current: Optional[int] = None
    started: float = 0.0
    busy_s: float = 0.0
    tasks_done: int = 0


@dataclass
class _Chunk:
    blobs: Dict[int, bytes]
    #: indices not yet reported done (requeued if the holder dies)
    remaining: Set[int] = field(default_factory=set)

    def __post_init__(self):
        self.remaining = set(self.blobs)


class WorkerPool:
    """A persistent pool; ``map`` may be called many times.

    Use as a context manager (or call :meth:`close`) so workers are
    reaped.  With ``jobs<=1`` or when worker processes cannot be
    created, the pool is *inline*: ``map`` runs tasks in the parent and
    every guarantee except parallelism still holds.
    """

    def __init__(self, jobs=None, *, chunk_size: Optional[int] = None,
                 task_timeout: Optional[float] = None, retries: int = 1):
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.retries = retries
        self.respawns = 0
        self.last_wall_s = 0.0
        self._chunk_ids = itertools.count()
        self._workers: List[_WorkerState] = []
        self._task_q = None
        self._result_q = None
        self._mp = None
        self._broken = False
        if self.jobs > 1:
            self._start_workers()

    # -- lifecycle -----------------------------------------------------
    def _start_workers(self) -> None:
        try:
            import multiprocessing as mp
            method = "fork" if "fork" in mp.get_all_start_methods() else None
            self._mp = mp.get_context(method)
            self._task_q = self._mp.Queue()
            self._result_q = self._mp.Queue()
            for slot in range(self.jobs):
                self._workers.append(self._spawn(slot))
        except Exception:
            # restricted environments (no /dev/shm, no fork): run inline
            self._broken = True
            self._workers = []

    def _spawn(self, slot: int) -> _WorkerState:
        proc = self._mp.Process(
            target=_worker_main, args=(slot, self._task_q, self._result_q),
            daemon=True, name=f"repro-exec-{slot}",
        )
        proc.start()
        return _WorkerState(proc=proc)

    @property
    def inline(self) -> bool:
        return self.jobs <= 1 or self._broken or not self._workers

    def close(self) -> None:
        if self._task_q is not None:
            for _ in self._workers:
                try:
                    self._task_q.put(None)
                except Exception:
                    break
            for state in self._workers:
                state.proc.join(timeout=2.0)
                if state.proc.is_alive():
                    state.proc.terminate()
                    state.proc.join(timeout=1.0)
            self._task_q.close()
            self._result_q.close()
        self._workers = []
        self._task_q = self._result_q = None
        self._broken = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        return {
            "jobs": self.jobs,
            "inline": self.inline,
            "respawns": self.respawns,
            "wall_s": self.last_wall_s,
            "per_worker_busy_s": [round(w.busy_s, 6) for w in self._workers],
            "per_worker_tasks": [w.tasks_done for w in self._workers],
        }

    # -- execution -----------------------------------------------------
    def map(self, tasks: Sequence[TaskSpec],
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> List[TaskResult]:
        """Run every task; results indexed by submission order.

        ``on_result`` is invoked **in submission order** (completions
        are buffered), so progress output of a parallel run is
        byte-identical to the sequential one.
        """
        t0 = time.perf_counter()
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        reported = 0

        def settle(index: int, result: TaskResult) -> None:
            nonlocal reported
            results[index] = result
            if on_result is not None:
                while reported < len(results) and results[reported] is not None:
                    on_result(results[reported])
                    reported += 1

        def run_one_inline(index: int, task: TaskSpec) -> None:
            start = time.perf_counter()
            try:
                value = task.run_inline()
                settle(index, TaskResult(index=index, value=value, inline=True,
                                         attempts=1,
                                         wall_s=time.perf_counter() - start))
            except BaseException as exc:  # noqa: BLE001
                settle(index, TaskResult(
                    index=index, error=f"{type(exc).__name__}: {exc}",
                    inline=True, attempts=1,
                    wall_s=time.perf_counter() - start))

        if self.inline:
            for index, task in enumerate(tasks):
                run_one_inline(index, task)
            self.last_wall_s = time.perf_counter() - t0
            return results  # type: ignore[return-value]

        # Split into pool-able (picklable) and inline tasks.
        blobs: Dict[int, bytes] = {}
        inline_indices: List[int] = []
        for index, task in enumerate(tasks):
            try:
                blobs[index] = task.payload()
            except Exception:
                inline_indices.append(index)

        self._run_pooled(tasks, blobs, settle)
        for index in inline_indices:
            run_one_inline(index, tasks[index])
        self.last_wall_s = time.perf_counter() - t0
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_pooled(self, tasks, blobs: Dict[int, bytes], settle) -> None:
        if not blobs:
            return
        pending: Set[int] = set(blobs)
        #: timeout-exhausted tasks awaiting one last untimed inline attempt
        fallback: Set[int] = set()
        attempts: Dict[int, int] = {index: 0 for index in blobs}
        dispatches: Dict[int, int] = {index: 0 for index in blobs}
        chunks: Dict[int, _Chunk] = {}

        def enqueue(indices: Sequence[int]) -> None:
            chunk_id = next(self._chunk_ids)
            chunk = _Chunk({i: blobs[i] for i in indices})
            chunks[chunk_id] = chunk
            for i in indices:
                dispatches[i] = dispatches.get(i, 0) + 1
            self._task_q.put((chunk_id, [(i, blobs[i]) for i in indices]))

        size = self.chunk_size or max(
            1, min(32, math.ceil(len(blobs) / (self.jobs * 4))))
        order = sorted(blobs)
        for lo in range(0, len(order), size):
            enqueue(order[lo:lo + size])

        def finish(index: int, result: TaskResult) -> None:
            if index in pending or index in fallback:
                pending.discard(index)
                fallback.discard(index)
                settle(index, result)

        def fail_or_retry(index: int, why: str,
                          inline_fallback: bool = False) -> None:
            """A crash/timeout consumed one attempt of ``index``."""
            if index not in pending:
                return
            if attempts[index] <= self.retries:
                enqueue([index])
            elif inline_fallback:
                # Every pooled attempt timed out.  Give the task one
                # untimed attempt in the parent after the pool drains:
                # if the hang was an artifact of the worker environment
                # the task completes; if it is real, the hang stays
                # visible instead of becoming a silently-failed cell.
                pending.discard(index)
                fallback.add(index)
            else:
                finish(index, TaskResult(index=index, error=why,
                                         attempts=attempts[index]))

        def reap(slot: int, why: str, inline_fallback: bool = False) -> None:
            """Kill+replace worker ``slot``; reschedule its work."""
            state = self._workers[slot]
            if state.proc.is_alive():
                state.proc.terminate()
                state.proc.join(timeout=2.0)
            current, chunk_id = state.current, state.chunk
            state.current = state.chunk = None
            leftovers: List[int] = []
            if chunk_id is not None and chunk_id in chunks:
                leftovers = [i for i in chunks.pop(chunk_id).remaining
                             if i in pending and i != current]
            if leftovers:
                enqueue(leftovers)
            if current is not None:
                fail_or_retry(current, why, inline_fallback)
            try:
                replacement = self._spawn(slot)
                replacement.busy_s = state.busy_s
                replacement.tasks_done = state.tasks_done
                self._workers[slot] = replacement
                self.respawns += 1
            except Exception:
                self._broken = True

        last_activity = time.monotonic()
        while pending:
            drained = self._drain_messages(chunks, attempts, finish)
            now = time.monotonic()
            if drained:
                last_activity = now
            else:
                self._check_timeouts(reap)
                self._check_deaths(reap)
                # Stall recovery: a worker can hard-exit between taking a
                # chunk off the queue and flushing its pick/start
                # messages — the chunk simply vanishes.  When the pool
                # has been completely idle for a while with work still
                # pending *and the task queue is empty* (a non-empty
                # queue means the chunks are merely waiting for a slow
                # worker, not lost), requeue every unfinished chunk
                # (duplicate completions are idempotent: first result
                # wins).
                if (pending and now - last_activity > _STALL_S
                        and all(w.current is None and w.chunk is None
                                for w in self._workers)
                        and all(w.proc.is_alive() for w in self._workers)
                        and self._task_q_empty()):
                    orphans: Set[int] = set()
                    for chunk_id in list(chunks):
                        orphans.update(i for i in chunks.pop(chunk_id).remaining
                                       if i in pending)
                    retry = [i for i in sorted(orphans)
                             if dispatches.get(i, 0) <= self.retries + 1]
                    for index in sorted(orphans.difference(retry)):
                        finish(index, TaskResult(
                            index=index, attempts=attempts.get(index, 0),
                            error="worker crashed repeatedly before "
                                  "reporting a result"))
                    if retry:
                        enqueue(retry)
                    last_activity = time.monotonic()
            if self._broken or not any(
                    w.proc.is_alive() for w in self._workers):
                break

        # Timeout-exhausted tasks get their last untimed attempt here;
        # also, if the pool died mid-run (or could not be repaired),
        # whatever is left finishes inline.
        for index in sorted(pending | fallback):
            task = tasks[index]
            start = time.perf_counter()
            try:
                value = task.run_inline()
                finish(index, TaskResult(
                    index=index, value=value, inline=True,
                    attempts=attempts[index] + 1,
                    wall_s=time.perf_counter() - start))
            except BaseException as exc:  # noqa: BLE001
                finish(index, TaskResult(
                    index=index, error=f"{type(exc).__name__}: {exc}",
                    inline=True, attempts=attempts[index] + 1,
                    wall_s=time.perf_counter() - start))

    def _task_q_empty(self) -> bool:
        """Best-effort emptiness probe of the shared task queue.

        ``multiprocessing.Queue.empty`` is advisory, which is exactly the
        strength we need: a False answer proves chunks are still waiting
        for a slow worker (so stall recovery must hold off), and a
        spuriously-True answer merely reverts to the old, more eager
        behavior.  Platforms without the underlying semaphore support
        report empty, again degrading to the historical code path.
        """
        try:
            return self._task_q.empty()
        except (NotImplementedError, OSError):
            return True

    def _drain_messages(self, chunks, attempts, finish) -> bool:
        """Process every queued worker message; True if any arrived."""
        import queue as _queue

        drained = False
        while True:
            try:
                msg = self._result_q.get(timeout=_TICK)
            except (_queue.Empty, OSError, EOFError):
                return drained
            drained = True
            kind = msg[0]
            if kind == "pick":
                _, slot, chunk_id = msg
                self._workers[slot].chunk = chunk_id
            elif kind == "start":
                _, slot, index = msg
                state = self._workers[slot]
                state.current = index
                state.started = time.monotonic()
                attempts[index] = attempts.get(index, 0) + 1
            elif kind == "done":
                _, slot, index, payload, wall = msg
                state = self._workers[slot]
                state.current = None
                state.busy_s += wall
                state.tasks_done += 1
                chunk = chunks.get(state.chunk)
                if chunk is not None:
                    chunk.remaining.discard(index)
                ok, value = pickle.loads(payload)
                result = TaskResult(
                    index=index, attempts=attempts.get(index, 1),
                    wall_s=wall, worker=slot,
                    **({"value": value} if ok else {"error": value}))
                finish(index, result)
            elif kind == "free":
                _, slot, chunk_id = msg
                chunks.pop(chunk_id, None)
                if self._workers[slot].chunk == chunk_id:
                    self._workers[slot].chunk = None
            # anything else: ignore (message from an already-reaped slot)
            if self._result_q.empty():
                return drained

    def _check_timeouts(self, reap) -> None:
        if self.task_timeout is None:
            return
        now = time.monotonic()
        for slot, state in enumerate(self._workers):
            if (state.current is not None
                    and now - state.started > self.task_timeout):
                reap(slot, f"task timeout after {self.task_timeout:g}s "
                           f"(worker {slot} killed)",
                     inline_fallback=True)

    def _check_deaths(self, reap) -> None:
        for slot, state in enumerate(self._workers):
            if not state.proc.is_alive():
                code = state.proc.exitcode
                reap(slot, f"worker crashed (exit code {code})")


# ----------------------------------------------------------------------
# Façade
# ----------------------------------------------------------------------
def run_tasks(
    tasks: Sequence[TaskSpec],
    jobs=None,
    *,
    cache: Optional[ResultCache] = None,
    task_timeout: Optional[float] = None,
    chunk_size: Optional[int] = None,
    retries: int = 1,
    progress: Optional[Callable[[TaskResult], None]] = None,
    pool: Optional[WorkerPool] = None,
    stats_out: Optional[dict] = None,
) -> List[TaskResult]:
    """Run independent tasks through cache + pool; results in order.

    The cache, when given, is consulted first: hits are returned without
    executing anything, misses are executed (pooled or inline) and
    stored on success.  ``progress`` fires once per task in submission
    order.  ``stats_out`` (a dict) receives pool utilization and cache
    counters for harness reporting.  Pass ``pool`` to reuse a warm
    :class:`WorkerPool` across several calls.
    """
    t0 = time.perf_counter()
    results: List[Optional[TaskResult]] = [None] * len(tasks)
    reported = 0

    def flush(index: int, result: TaskResult) -> None:
        nonlocal reported
        results[index] = result
        if progress is not None:
            while reported < len(results) and results[reported] is not None:
                progress(results[reported])
                reported += 1

    keys: Dict[int, str] = {}
    misses: List[int] = []
    for index, task in enumerate(tasks):
        key = cache.task_key(task) if cache is not None else None
        if key is not None:
            keys[index] = key
            hit, value = cache.get(key)
            if hit:
                flush(index, TaskResult(index=index, value=value, cached=True))
                continue
        misses.append(index)

    # A fully-warm cache never pays pool startup: only spawn workers
    # when there is something to execute — and, on an auto request, only
    # when the fan-out can win.  One available core means workers
    # time-slice it; fewer misses than the amortization threshold never
    # pay back worker spawn.  An explicit -j N is honored as stated.
    # Either way the tasks run inline with identical ordering/results.
    own_pool: Optional[WorkerPool] = None
    if misses and pool is None:
        jobs_n = resolve_jobs(jobs)
        if jobs_n > 1 and _is_auto_request(jobs):
            if (effective_cpu_count() == 1
                    or len(misses) < SPAWN_AMORTIZATION_MIN):
                jobs_n = 1
            else:
                jobs_n = min(jobs_n, len(misses))
        pool = own_pool = WorkerPool(jobs_n, chunk_size=chunk_size,
                                     task_timeout=task_timeout,
                                     retries=retries)
    try:
        def landed(sub: TaskResult) -> None:
            index = misses[sub.index]
            result = TaskResult(
                index=index, value=sub.value, error=sub.error,
                cached=False, inline=sub.inline, attempts=sub.attempts,
                wall_s=sub.wall_s, worker=sub.worker)
            if cache is not None and result.ok and index in keys:
                cache.put(keys[index], result.value)
            flush(index, result)

        if misses:
            pool.map([tasks[i] for i in misses], on_result=landed)
        if stats_out is not None:
            stats_out.update(pool.stats() if pool is not None
                             else {"jobs": resolve_jobs(jobs), "inline": True,
                                   "respawns": 0, "wall_s": 0.0,
                                   "per_worker_busy_s": [],
                                   "per_worker_tasks": []})
            stats_out["wall_s"] = round(time.perf_counter() - t0, 6)
            stats_out["tasks"] = len(tasks)
            stats_out["executed"] = len(misses)
            if cache is not None:
                stats_out["cache"] = cache.stats()
    finally:
        if own_pool is not None:
            own_pool.close()
    return results  # type: ignore[return-value]
