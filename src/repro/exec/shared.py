"""Sharing one :class:`~repro.exec.pool.WorkerPool` across concurrent jobs.

:meth:`WorkerPool.map` is a synchronous, single-caller primitive: it
owns the result pipe until the whole batch drains.  A multi-tenant
server, by contrast, has many *jobs* in flight at once, each wanting to
push cells into the same warm pool as they are discovered and collect
results cell-by-cell.  :class:`SharedPoolExecutor` bridges the two
models:

* callers (any thread, or an asyncio loop via
  ``asyncio.wrap_future``) call :meth:`submit` and get a
  :class:`concurrent.futures.Future` per task;
* a single dispatcher thread drains the submission queue, coalescing
  everything that has arrived into one :meth:`WorkerPool.map` batch —
  so concurrent tenants' cells genuinely interleave across the same
  workers instead of serializing job-by-job;
* every future resolves with the task's :class:`TaskResult` (execution
  *errors* are data, not exceptions — the same contract as
  :func:`repro.exec.run_tasks`); a future only ever raises if the
  executor is shut down with work still queued.

The dispatcher inherits all of the pool's robustness (crash retry,
timeout reaping, inline fallback), and because batches are formed from
whatever is queued at the moment the pool goes idle, a lone straggler
cell never blocks a newly submitted job for longer than the current
batch.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import List, Optional, Tuple

from .pool import WorkerPool
from .task import TaskResult, TaskSpec

__all__ = ["SharedPoolExecutor"]


class SharedPoolExecutor:
    """Thread-safe ``submit``/``Future`` façade over one worker pool."""

    def __init__(self, jobs=None, *, chunk_size: Optional[int] = None,
                 task_timeout: Optional[float] = None, retries: int = 1):
        self._pool = WorkerPool(jobs, chunk_size=chunk_size,
                                task_timeout=task_timeout, retries=retries)
        self._queue: "queue.SimpleQueue[Optional[Tuple[TaskSpec, Future]]]" = (
            queue.SimpleQueue())
        self._closed = threading.Event()
        self._submitted = 0
        self._completed = 0
        self._batches = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="repro-exec-shared",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._pool.jobs

    def submit(self, task: TaskSpec) -> "Future[TaskResult]":
        """Queue ``task``; the future resolves with its TaskResult."""
        if self._closed.is_set():
            raise RuntimeError("SharedPoolExecutor is closed")
        future: "Future[TaskResult]" = Future()
        with self._lock:
            self._submitted += 1
        self._queue.put((task, future))
        return future

    def stats(self) -> dict:
        with self._lock:
            out = {
                "submitted": self._submitted,
                "completed": self._completed,
                "batches": self._batches,
            }
        out.update(self._pool.stats())
        return out

    def close(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher and reap the pool.

        Tasks still queued (never handed to the pool) get a
        ``RuntimeError`` on their future; the batch currently inside
        ``map`` is allowed to finish.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        self._pool.close()

    def __enter__(self) -> "SharedPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            batch: List[Tuple[TaskSpec, Future]] = [item]
            stop = False
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            # A future cancelled while queued (a tenant dropped its job)
            # must not burn a worker slot.
            live = [(task, fut) for task, fut in batch
                    if fut.set_running_or_notify_cancel()]
            if live:
                tasks = [task for task, _ in live]

                def settle(result: TaskResult) -> None:
                    _, fut = live[result.index]
                    with self._lock:
                        self._completed += 1
                    if not fut.done():
                        fut.set_result(result)

                try:
                    self._pool.map(tasks, on_result=settle)
                except BaseException as exc:  # noqa: BLE001 — pool blew up
                    for index, (_, fut) in enumerate(live):
                        if not fut.done():
                            fut.set_exception(
                                RuntimeError(f"shared pool failed: {exc}"))
                with self._lock:
                    self._batches += 1
            if stop:
                break
        # Drain anything still queued after shutdown.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            _, fut = item
            if fut.set_running_or_notify_cancel() and not fut.done():
                fut.set_exception(RuntimeError("executor closed before "
                                               "the task was dispatched"))
