"""Fail-stop fault injection and graceful degradation (``repro.faults``).

The paper's two-level runtime targets 44-node clusters where image
failures and flaky links are the operational norm.  This package gives
the reproduction the failure model Fortran 2018 standardized:

* :mod:`repro.faults.schedule` — a **deterministic fault schedule**:
  image fail-stops at fixed simulated times, plus seeded message
  drop/delay jitter on the interconnect.  Identical schedule + seed
  always produce byte-identical runs.
* :mod:`repro.faults.manager` — the runtime side: the
  :class:`FaultManager` arms kill events on the engine, answers the
  ``image_status()`` / ``failed_images()`` intrinsics, decides message
  fates at the conduit, and provides the **failure-aware wait** every
  synchronization primitive and collective blocks through, so survivors
  observe ``STAT_FAILED_IMAGE`` at their next synchronization instead
  of hanging.

Public surface::

    from repro.faults import (
        FaultSchedule, ImageFailure, FaultManager,
        Stat, STAT_OK, STAT_FAILED_IMAGE, FailedImageError, FAILED,
    )

    schedule = FaultSchedule(failures=(ImageFailure(image=3, time=50e-6),))
    result = run_spmd(main, num_images=8, faults=schedule)

See ``docs/faults.md`` for the fault model, determinism guarantee and
``stat=`` semantics.
"""

from .manager import (
    FAILED,
    STAT_FAILED_IMAGE,
    STAT_LOCKED,
    STAT_OK,
    STAT_STOPPED_IMAGE,
    STAT_UNLOCKED,
    STAT_UNLOCKED_FAILED_IMAGE,
    FailedImageError,
    FaultManager,
    ImageControlError,
    ImageLiveness,
    LockError,
    Stat,
    StoppedImageError,
    wait_or_fail,
)
from .schedule import FaultSchedule, ImageFailure, parse_schedule

__all__ = [
    "FAILED",
    "STAT_FAILED_IMAGE",
    "STAT_LOCKED",
    "STAT_OK",
    "STAT_STOPPED_IMAGE",
    "STAT_UNLOCKED",
    "STAT_UNLOCKED_FAILED_IMAGE",
    "FailedImageError",
    "FaultManager",
    "FaultSchedule",
    "ImageControlError",
    "ImageFailure",
    "ImageLiveness",
    "LockError",
    "Stat",
    "StoppedImageError",
    "parse_schedule",
    "wait_or_fail",
]
