"""Runtime side of fault injection: fail-stop execution, failure-aware
waits, and the ``stat=`` / ``failed images`` semantics of Fortran 2018.

The :class:`FaultManager` is owned by the
:class:`~repro.runtime.program.World` (one per run, or ``None`` when no
fault schedule is installed).  It plays four roles:

1. **Executioner** — :meth:`FaultManager.arm` schedules one engine event
   per planned fail-stop; at that instant the image's
   :class:`~repro.sim.process.Process` is killed mid-generator, its
   deadlock bookkeeping retired, and its result pinned to the
   :data:`FAILED` sentinel.  The failed image never runs again.
2. **Oracle** — ``image_status()`` / ``failed_images()`` and the per-team
   :meth:`check_team` entry check read the failed set.
3. **Gatekeeper at the conduit** — :meth:`filter_delivery` suppresses
   target-side completion effects of messages addressed to a dead image
   (the bytes still cross the wire; nobody is home to act on them), and
   :meth:`link_delay` charges the seeded drop/delay jitter.
4. **Waker** — every synchronization wait in the runtime funnels through
   :func:`wait_or_fail` (or :meth:`wait_interruptible`), which blocks on
   *either* the awaited cell *or* the failure ``epoch`` cell.  When an
   image dies, the epoch bump wakes every blocked survivor, whose
   re-check raises :class:`FailedImageError` — survivors observe
   ``STAT_FAILED_IMAGE`` at their next synchronization instead of
   hanging, exactly the standard's promise.

With no manager installed, :func:`wait_or_fail` degenerates to yielding
the plain ``WaitFor`` command — the fault-free path is byte-identical to
a build without this package.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

from ..sim.engine import Engine
from ..sim.primitives import Cell, SimEvent
from ..sim.process import Process, Wait, WaitFor
from .schedule import FaultSchedule

__all__ = [
    "STAT_OK", "STAT_FAILED_IMAGE", "STAT_STOPPED_IMAGE", "STAT_LOCKED",
    "STAT_UNLOCKED", "STAT_UNLOCKED_FAILED_IMAGE", "FAILED", "Stat",
    "ImageControlError", "FailedImageError", "StoppedImageError",
    "LockError", "ImageLiveness", "FaultManager", "wait_or_fail",
]

#: ``stat=`` value of a successful operation.
STAT_OK = 0
#: ``stat=`` value reported when a team member has failed — the
#: reproduction's stand-in for Fortran 2018's ``STAT_FAILED_IMAGE``
#: constant from ``ISO_FORTRAN_ENV``.
STAT_FAILED_IMAGE = 101
#: ``stat=`` value when an involved image has initiated normal
#: termination (F2018 ``STAT_STOPPED_IMAGE``) — distinct from fail-stop.
STAT_STOPPED_IMAGE = 102
#: ``lock`` on a variable the acquirer already holds, or a contended
#: non-blocking acquire (F2008 ``STAT_LOCKED``).
STAT_LOCKED = 103
#: ``unlock`` of a variable the caller does not hold (``STAT_UNLOCKED``).
STAT_UNLOCKED = 104
#: Lock acquired after its previous holder fail-stopped without
#: unlocking (F2018 ``STAT_UNLOCKED_FAILED_IMAGE``).
STAT_UNLOCKED_FAILED_IMAGE = 105

#: Per-image result recorded for an image killed by fail-stop injection.
FAILED = "<failed image>"

_STAT_NAMES = {
    STAT_OK: "STAT_OK",
    STAT_FAILED_IMAGE: "STAT_FAILED_IMAGE",
    STAT_STOPPED_IMAGE: "STAT_STOPPED_IMAGE",
    STAT_LOCKED: "STAT_LOCKED",
    STAT_UNLOCKED: "STAT_UNLOCKED",
    STAT_UNLOCKED_FAILED_IMAGE: "STAT_UNLOCKED_FAILED_IMAGE",
}


class ImageControlError(RuntimeError):
    """Base of every image-control error condition the runtime can map to
    a ``stat=`` code: a statement executed without ``STAT=`` raises one
    of these; with ``STAT=`` the same condition is caught and mirrored
    into the :class:`Stat`.  ``code`` is the stat constant; the indices
    name the images the condition is about.
    """

    code: int = STAT_FAILED_IMAGE

    def __init__(self, message: str,
                 failed_indices: Sequence[int] = (),
                 team_number: Optional[int] = None):
        self.failed_indices: List[int] = sorted(failed_indices)
        self.team_number = team_number
        super().__init__(message)


class FailedImageError(ImageControlError):
    """A synchronization or collective involved a failed image and no
    ``stat=`` was supplied — the analogue of Fortran's error termination
    when ``STAT=`` is absent.  ``failed_indices`` are team-relative
    (1-based) when ``team_number`` is set, global image indices otherwise.
    """

    code = STAT_FAILED_IMAGE

    def __init__(self, failed_indices: Sequence[int],
                 team_number: Optional[int] = None):
        indices = sorted(failed_indices)
        names = ", ".join(f"image{i}" for i in indices)
        where = (f"in team#{team_number}" if team_number is not None
                 else "among the awaited images")
        super().__init__(
            f"STAT_FAILED_IMAGE: failed image(s) {names} {where}",
            failed_indices=indices, team_number=team_number,
        )


class StoppedImageError(ImageControlError):
    """An image-control statement involved an image that has initiated
    normal termination.  Same indexing convention as
    :class:`FailedImageError`; ``failed_indices`` holds the stopped ones.
    """

    code = STAT_STOPPED_IMAGE

    def __init__(self, stopped_indices: Sequence[int],
                 team_number: Optional[int] = None):
        indices = sorted(stopped_indices)
        names = ", ".join(f"image{i}" for i in indices)
        where = (f"in team#{team_number}" if team_number is not None
                 else "among the involved images")
        super().__init__(
            f"STAT_STOPPED_IMAGE: stopped image(s) {names} {where}",
            failed_indices=indices, team_number=team_number,
        )


class LockError(ImageControlError):
    """A ``lock``/``unlock`` error condition (``STAT_LOCKED``,
    ``STAT_UNLOCKED``, or ``STAT_UNLOCKED_FAILED_IMAGE``).  The code is
    per-instance, unlike the class-level codes above."""

    def __init__(self, message: str, code: int,
                 failed_indices: Sequence[int] = ()):
        super().__init__(message, failed_indices=failed_indices)
        self.code = code


class Stat:
    """Mutable mirror of a Fortran ``stat=`` specifier.

    Pass one to any ``sync_*`` / ``co_*`` / image-control call;
    afterwards ``code`` is :data:`STAT_OK` or one of the error constants
    (:data:`STAT_FAILED_IMAGE`, :data:`STAT_STOPPED_IMAGE`,
    :data:`STAT_LOCKED`, ...) and ``failed_indices`` names the
    failed/stopped participants the operation observed.  Without a
    ``Stat``, the same condition raises an :class:`ImageControlError`.
    """

    __slots__ = ("code", "failed_indices")

    def __init__(self) -> None:
        self.code: int = STAT_OK
        self.failed_indices: tuple = ()

    @property
    def ok(self) -> bool:
        return self.code == STAT_OK

    def _clear(self) -> None:
        self.code = STAT_OK
        self.failed_indices = ()

    def _set(self, err: ImageControlError) -> None:
        self.code = err.code
        self.failed_indices = tuple(err.failed_indices)

    # historical name, kept for callers predating the error hierarchy
    _set_failure = _set

    def __repr__(self) -> str:
        label = _STAT_NAMES.get(self.code, str(self.code))
        return f"Stat({label}, failed={list(self.failed_indices)})"


class ImageLiveness:
    """Tracks images that have initiated *normal* termination — the third
    image state of F2018 (``STAT_STOPPED_IMAGE``), distinct from the
    fail-stops the :class:`FaultManager` tracks.  One per World; always
    present even in fault-free runs, because any image may simply return
    from its program while teammates keep synchronizing.
    """

    def __init__(self, num_images: int):
        self.num_images = num_images
        self._stopped: set = set()

    def mark_stopped(self, proc: int) -> None:
        """Record that 0-based ``proc`` completed its program normally."""
        self._stopped.add(proc)

    def is_stopped(self, proc: int) -> bool:
        return proc in self._stopped

    @property
    def stopped_procs(self) -> frozenset:
        return frozenset(self._stopped)

    def stopped_team_indices(self, shared: Any) -> List[int]:
        """Team-relative 1-based indices of this team's stopped members."""
        p2i = shared.proc_to_index
        return sorted(p2i[p] for p in self._stopped if p in p2i)

    def check_team(self, shared: Any) -> None:
        """Raise :class:`StoppedImageError` if any team member stopped."""
        stopped = self.stopped_team_indices(shared)
        if stopped:
            raise StoppedImageError(stopped, shared.team_number)

    def check_images(self, procs: Iterable[int]) -> None:
        """Raise if any of the given 0-based procs has stopped."""
        stopped = sorted(p + 1 for p in procs if p in self._stopped)
        if stopped:
            raise StoppedImageError(stopped, team_number=None)


class _FaultWait(SimEvent):
    """Completion event of one failure-aware wait.

    Carries the underlying awaited cell so deadlock analysis
    (:mod:`repro.verify.deadlock`) can keep attributing the wait to the
    flag/mailbox it is really about rather than to an anonymous event.
    """

    __slots__ = ("cell",)


class FaultManager:
    """Executes a :class:`FaultSchedule` against one running World."""

    def __init__(self, engine: Engine, schedule: FaultSchedule,
                 num_images: int):
        for failure in schedule.failures:
            if failure.image > num_images:
                raise ValueError(
                    f"fault schedule fails image{failure.image} but the run "
                    f"has only {num_images} images"
                )
        self.engine = engine
        self.schedule = schedule
        self.num_images = num_images
        #: 0-based proc ids of images that have failed so far
        self._failed: set = set()
        #: bumped once per failure; every failure-aware wait watches it
        self.epoch = Cell(engine, 0, name="faults.epoch",
                          meta={"what": "failure epoch"})
        self._rng = random.Random(schedule.seed)

    # ------------------------------------------------------------------
    # Executioner
    # ------------------------------------------------------------------
    def arm(self, processes: Sequence[Process]) -> None:
        """Schedule the planned fail-stops against the per-proc process
        list (index = 0-based proc id).  Called once by ``run_spmd``."""
        for failure in self.schedule.failures:
            proc = failure.image - 1
            self.engine.schedule(
                failure.time,
                lambda p=proc, pr=processes[proc]: self._fail_now(p, pr),
                label=f"fault.kill[image{failure.image}]",
            )

    def _fail_now(self, proc: int, process: Process) -> None:
        if proc in self._failed or process.finished:
            # already dead, or the image completed before its planned
            # failure time — a completed image cannot fail-stop
            return
        self._failed.add(proc)
        # Kill first, then bump the epoch: the victim must be incapable of
        # resuming before any survivor is woken to observe the failure.
        process.kill(result=FAILED)
        self.epoch.add(1)

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def is_failed(self, proc: int) -> bool:
        return proc in self._failed

    @property
    def failed_procs(self) -> frozenset:
        return frozenset(self._failed)

    def failed_team_indices(self, shared: Any) -> List[int]:
        """Team-relative 1-based indices of this team's failed members."""
        p2i = shared.proc_to_index
        return sorted(p2i[p] for p in self._failed if p in p2i)

    def check_team(self, shared: Any) -> None:
        """Raise :class:`FailedImageError` if any member of the team has
        failed (the entry/re-check of every team-wide operation)."""
        failed = self.failed_team_indices(shared)
        if failed:
            raise FailedImageError(failed, shared.team_number)

    def check_images(self, procs: Iterable[int]) -> None:
        """Raise if any of the given 0-based procs has failed (used by
        ``sync images``, whose partner set is an explicit image list)."""
        failed = sorted(p + 1 for p in procs if p in self._failed)
        if failed:
            raise FailedImageError(failed, team_number=None)

    # ------------------------------------------------------------------
    # Conduit hooks
    # ------------------------------------------------------------------
    def filter_delivery(self, dst_proc: int,
                        on_delivered: Optional[Callable]) -> Optional[Callable]:
        """Suppress the target-side completion effect of a message
        addressed to a failed image.  The wire/NIC costs are still paid —
        the sender cannot tell the destination is dead — but no flag,
        mailbox, or coarray of the dead image advances."""
        if on_delivered is not None and dst_proc in self._failed:
            return None
        return on_delivered

    def link_delay(self, resolved_path: str) -> float:
        """Extra sender-visible latency for one message under the seeded
        drop/delay model.  Only inter-node (``remote``) messages ride the
        unreliable link; intra-node paths are memory traffic."""
        if resolved_path != "remote":
            return 0.0
        sched = self.schedule
        rng = self._rng
        extra = 0.0
        if sched.drop_rate > 0.0:
            retries = 0
            while (retries < sched.max_retransmits
                   and rng.random() < sched.drop_rate):
                retries += 1
            extra += retries * sched.retransmit_timeout
        if sched.delay_rate > 0.0 and rng.random() < sched.delay_rate:
            extra += rng.random() * sched.delay_max
        return extra

    # ------------------------------------------------------------------
    # Waker
    # ------------------------------------------------------------------
    def wait_interruptible(self, cell: Cell, pred: Callable[[Any], bool],
                           check: Callable[[], None]) -> Iterator:
        """Generator: block until ``pred(cell.value)`` *or* a failure.

        ``check()`` must raise (typically :class:`FailedImageError`) when
        the caller's liveness condition is broken; it runs before the
        first wait and again after every failure-epoch wake-up.  Hence a
        survivor blocked on a cell a dead image was supposed to write
        raises at the failure instant instead of deadlocking.
        """
        check()
        epoch = self.epoch
        engine = self.engine
        while not pred(cell.value):
            ev = _FaultWait(engine, name=f"faultwait:{cell.name}")
            ev.cell = cell
            keys: list = []

            def _fire(_value: Any, ev: SimEvent = ev, keys: list = keys) -> None:
                if ev.triggered:
                    return
                for watched, key in keys:
                    watched.cancel_wait(key)
                ev.trigger()

            current = epoch.value
            cell_key = cell.wait_until(pred, _fire)
            if cell_key is not None:
                keys.append((cell, cell_key))
                epoch_key = epoch.wait_until(
                    lambda v, c=current: v > c, _fire
                )
                if epoch_key is not None:
                    keys.append((epoch, epoch_key))
            yield Wait(ev)
            check()
        # parity with WaitFor: resume value is the satisfying cell value
        return cell.value

    def team_wait(self, shared: Any, cell: Cell,
                  pred: Callable[[Any], bool]) -> Iterator:
        """:meth:`wait_interruptible` with a whole-team liveness check."""
        return self.wait_interruptible(
            cell, pred, check=lambda: self.check_team(shared)
        )


def wait_or_fail(ctx: Any, view: Any, cell: Cell,
                 pred: Callable[[Any], bool]) -> Iterator:
    """The failure-aware ``WaitFor`` every collective blocks through.

    With no fault manager installed (``ctx.faults`` absent or ``None``)
    this yields the plain ``WaitFor(cell, pred)`` command — same command
    object, same wake-up instant, so fault-free schedules stay
    byte-identical to the pre-fault runtime.  With a manager, the wait
    also watches the failure epoch and raises :class:`FailedImageError`
    when a member of ``view``'s team dies.
    """
    faults = getattr(ctx, "faults", None)
    if faults is None:
        result = yield WaitFor(cell, pred)
        return result
    result = yield from faults.team_wait(view.shared, cell, pred)
    return result
