"""Deterministic fault schedules.

A :class:`FaultSchedule` is a *plan*, not a dice roll: it lists which
images fail-stop and when (simulated seconds), and parameterizes a
seeded link-fault model (message drop → bounded retransmit delay,
message delay jitter).  The same schedule object run twice produces
byte-identical simulations — all randomness flows through one
``random.Random(seed)`` stream consumed in deterministic engine order.

Message *drops* are modeled as the sender-visible effect of a reliable
transport recovering from loss: each dropped attempt costs one
retransmit timeout, bounded by ``max_retransmits``, after which the
message goes through.  This keeps drop schedules live (no message is
lost forever, so no artificial hangs) while still stressing every
timing assumption in the collectives.

Fail-stops are *silent*: the failed image stops executing and stops
acknowledging, exactly the Fortran 2018 failed-image model.  Survivors
learn about the failure only through the runtime (``stat=`` returns,
``image_status()``, ``failed_images()``) — never by magic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["ImageFailure", "FaultSchedule", "parse_schedule"]


@dataclass(frozen=True)
class ImageFailure:
    """Fail-stop of one image (1-based global index) at simulated ``time``."""

    image: int
    time: float

    def __post_init__(self) -> None:
        if self.image < 1:
            raise ValueError(f"image index must be >= 1, got {self.image}")
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class FaultSchedule:
    """One deterministic fault plan for a run.

    ``failures``
        Fail-stop events, applied in schedule order at their times.
    ``drop_rate`` / ``max_retransmits`` / ``retransmit_timeout``
        Probability a network message attempt is dropped, how many
        consecutive drops the reliable transport absorbs, and the
        sender-visible cost of each retransmit.
    ``delay_rate`` / ``delay_max``
        Probability a network message is delayed, and the uniform upper
        bound of that extra delay.
    ``seed``
        Seeds the single RNG stream behind drops and delays.
    """

    failures: Tuple[ImageFailure, ...] = ()
    drop_rate: float = 0.0
    max_retransmits: int = 3
    retransmit_timeout: float = 5e-6
    delay_rate: float = 0.0
    delay_max: float = 2e-6
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        if self.retransmit_timeout < 0 or self.delay_max < 0:
            raise ValueError("fault delays must be >= 0")
        # normalize: deterministic application order regardless of how the
        # caller listed the failures
        object.__setattr__(
            self, "failures",
            tuple(sorted(self.failures, key=lambda f: (f.time, f.image))),
        )

    @property
    def is_null(self) -> bool:
        """True when this schedule injects nothing — a null schedule is
        promised to be byte-identical to running with no schedule at all."""
        return (not self.failures and self.drop_rate == 0.0
                and self.delay_rate == 0.0)

    @property
    def has_link_faults(self) -> bool:
        return self.drop_rate > 0.0 or self.delay_rate > 0.0

    def describe(self) -> str:
        parts = [f"fail(image{f.image}@{f.time:.3g}s)" for f in self.failures]
        if self.drop_rate > 0.0:
            parts.append(f"drop({self.drop_rate:g}, "
                         f"retx<={self.max_retransmits}x"
                         f"{self.retransmit_timeout:.3g}s)")
        if self.delay_rate > 0.0:
            parts.append(f"delay({self.delay_rate:g}, "
                         f"max {self.delay_max:.3g}s)")
        if not parts:
            return "none"
        return " + ".join(parts) + f" seed={self.seed}"


def parse_schedule(text: str) -> FaultSchedule:
    """Parse the CLI fault-schedule mini-language.

    Comma-separated clauses::

        fail:IMAGE@TIME      fail-stop image IMAGE at TIME seconds
        drop:RATE            message-drop probability (retransmit model)
        delay:RATE           message-delay probability
        seed:N               RNG seed for drops/delays

    Example: ``fail:3@50e-6,fail:7@80e-6,drop:0.1,seed:42``.
    """
    failures = []
    kwargs: dict = {}
    for clause in filter(None, (c.strip() for c in text.split(","))):
        try:
            key, _, arg = clause.partition(":")
            if key == "fail":
                img, _, when = arg.partition("@")
                failures.append(ImageFailure(int(img), float(when)))
            elif key == "drop":
                kwargs["drop_rate"] = float(arg)
            elif key == "delay":
                kwargs["delay_rate"] = float(arg)
            elif key == "seed":
                kwargs["seed"] = int(arg)
            else:
                raise ValueError(f"unknown clause {key!r}")
        except (TypeError, ValueError) as err:
            raise ValueError(
                f"bad fault-schedule clause {clause!r}: {err} "
                f"(expected fail:IMAGE@TIME, drop:RATE, delay:RATE, seed:N)"
            ) from None
    return FaultSchedule(failures=tuple(failures), **kwargs)
