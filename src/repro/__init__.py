"""repro — a simulated reproduction of "A Team-Based Methodology of
Memory Hierarchy-Aware Runtime Support in Coarray Fortran" (Khaldi et
al., 2015).

The package provides a deterministic discrete-event-simulated Coarray
Fortran runtime with Fortran 2015 teams, the paper's memory-hierarchy-
aware collectives (TDLB barrier, two-level reduction and broadcast), the
comparator stacks it was evaluated against (GASNet conduits, CAF 2.0,
MPI), the Teams Microbenchmark suite, and a CAF port of HPL.

Quickstart::

    import numpy as np
    from repro import run_spmd, UHCAF_2LEVEL

    def main(ctx):
        me = ctx.this_image()
        a = yield from ctx.allocate("a", (8,), dtype=np.float64)
        ctx.local(a)[:] = me
        yield from ctx.sync_all()
        total = yield from ctx.co_sum(float(me))
        return total

    result = run_spmd(main, num_images=16, images_per_node=8,
                      config=UHCAF_2LEVEL)
"""

from ._version import __version__
from .calibration import (
    CAF20_GASNET,
    DIRECT_SMP,
    GASNET_RDMA,
    IB_VERBS,
    MPI_NATIVE,
    ConduitProfile,
)
from .machine import (
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Placement,
    Topology,
    block_placement,
    cyclic_placement,
    paper_cluster,
)
from .runtime import (
    CAF20_GFORTRAN,
    RmaHandle,
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    NAMED_CONFIGS,
    OPENMPI_GCC,
    CafContext,
    Coarray,
    RuntimeConfig,
    SpmdResult,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
    run_spmd,
)
from .teams import HierarchyInfo, TeamView

__all__ = [
    "__version__",
    "run_spmd",
    "CafContext",
    "SpmdResult",
    "RmaHandle",
    "Coarray",
    "TeamView",
    "HierarchyInfo",
    "RuntimeConfig",
    "UHCAF_2LEVEL",
    "UHCAF_1LEVEL",
    "GASNET_IB_DISSEMINATION",
    "CAF20_OPENUH",
    "CAF20_GFORTRAN",
    "OPENMPI_GCC",
    "NAMED_CONFIGS",
    "ConduitProfile",
    "DIRECT_SMP",
    "IB_VERBS",
    "GASNET_RDMA",
    "CAF20_GASNET",
    "MPI_NATIVE",
    "MachineSpec",
    "NodeSpec",
    "NetworkSpec",
    "Placement",
    "Topology",
    "paper_cluster",
    "block_placement",
    "cyclic_placement",
]
