"""The pre-fast-path simulation kernel, frozen as a benchmark baseline.

``repro.perf`` reports the kernel speedup *in-process*: the same workload
runs against the live :mod:`repro.sim` kernel and against this module,
so the ratio is free of machine noise and does not depend on checking out
an old revision.  This is a faithful fusion of the engine, process driver
and primitives exactly as they stood before the fast-path work:

* ``Engine.schedule`` validates with ``math.isfinite`` and pushes a
  6-tuple ``(time, priority, jitter, seq, fn, label)`` on every call,
  jitter slot included even when no ``tiebreak_seed`` is set;
* ``Engine.run`` calls ``step()`` per event (bound-method dispatch, an
  ``until`` check per iteration, per-event ``events_processed`` store);
* ``Process._dispatch`` walks an ``isinstance`` ladder, creates a fresh
  ``lambda`` and formats an f-string label for every ``Timeout``, and
  materializes blocked descriptions/``BlockedInfo`` eagerly;
* ``Cell._check_watchers`` calls ``sorted()`` on every write and
  ``Resource`` queues grants in a ``list`` popped from the front.

Nothing here is exported from :mod:`repro.perf`; it exists only so the
benchmarks can measure "vs. a pre-change baseline".  Do not "fix" it —
its slowness is the point.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..sim.errors import DeadlockError, ProcessFailure, SimulationLimitExceeded

DEFAULT_MAX_EVENTS = 500_000_000


class Engine:
    """Pre-change event-heap kernel: 6-tuple records, ``step()`` per event."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        trace: Optional[Callable[[float, str], None]] = None,
        tiebreak_seed: Optional[int] = None,
    ):
        self._heap: list[tuple[float, int, float, int, Callable[[], None], str]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._max_events = int(max_events)
        self._events_processed = 0
        self._trace = trace
        self._tiebreak_seed = tiebreak_seed
        self._tiebreak_rng = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        self.monitor: Optional[Any] = None
        self._blocked: dict[int, str] = {}
        self._blocked_info: dict[int, Any] = {}
        self._blocked_seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def tiebreak_seed(self) -> Optional[int]:
        return self._tiebreak_seed

    def schedule(
        self,
        delay: float,
        fn: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> None:
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        jitter = 0.0 if self._tiebreak_rng is None else self._tiebreak_rng.random()
        heapq.heappush(
            self._heap,
            (self._now + delay, priority, jitter, next(self._seq), fn, label),
        )

    def call_now(self, fn: Callable[[], None], label: str = "") -> None:
        self.schedule(0.0, fn, label=label)

    def note_blocked(self, description: str, info: Any = None) -> int:
        token = next(self._blocked_seq)
        self._blocked[token] = description
        if info is not None:
            self._blocked_info[token] = info
        return token

    def note_unblocked(self, token: int) -> None:
        self._blocked.pop(token, None)
        self._blocked_info.pop(token, None)

    @property
    def blocked_descriptions(self) -> list[str]:
        return [self._blocked[k] for k in sorted(self._blocked)]

    @property
    def blocked_details(self) -> list[Any]:
        return [self._blocked_info[k] for k in sorted(self._blocked_info)]

    def step(self) -> bool:
        if not self._heap:
            return False
        time, _prio, _jitter, _seq, fn, label = heapq.heappop(self._heap)
        self._now = time
        self._events_processed += 1
        if self._events_processed > self._max_events:
            raise SimulationLimitExceeded(
                f"exceeded max_events={self._max_events} at t={self._now:.9f}s"
            )
        if self._trace is not None and label:
            self._trace(time, label)
        fn()
        return True

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    return self._now
                self.step()
            if self._blocked:
                raise DeadlockError(self.blocked_descriptions,
                                    details=self.blocked_details)
            return self._now
        finally:
            self._running = False


class SimEvent:
    __slots__ = ("_engine", "_triggered", "_value", "_callbacks", "name")

    def __init__(self, engine: Engine, name: str = ""):
        self._engine = engine
        self._triggered = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError(f"event {self.name!r} read before trigger")
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_event_trigger(self)
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Cell:
    """Pre-change watched cell: ``sorted()`` over watcher keys per write."""

    __slots__ = ("_engine", "_value", "_watchers", "name", "_seq", "meta")

    def __init__(self, engine: Engine, value: Any = 0, name: str = "",
                 meta: Optional[dict] = None):
        self._engine = engine
        self._value = value
        self._watchers: dict[int, tuple[Callable[[Any], bool], Callable[[Any], None]]] = {}
        self._seq = itertools.count()
        self.name = name
        self.meta = meta

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "set")
        self._value = value
        self._check_watchers()

    def add(self, delta: Any) -> Any:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "add")
        self._value = self._value + delta
        self._check_watchers()
        return self._value

    def update(self, fn: Callable[[Any], Any]) -> Any:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "update")
        self._value = fn(self._value)
        self._check_watchers()
        return self._value

    def _check_watchers(self) -> None:
        if not self._watchers:
            return
        for key in sorted(self._watchers):
            entry = self._watchers.get(key)
            if entry is None:
                continue
            pred, cb = entry
            if pred(self._value):
                del self._watchers[key]
                cb(self._value)

    def wait_until(
        self, pred: Callable[[Any], bool], callback: Callable[[Any], None]
    ) -> Optional[int]:
        if pred(self._value):
            callback(self._value)
            return None
        key = next(self._seq)
        self._watchers[key] = (pred, callback)
        return key

    def cancel_wait(self, key: int) -> None:
        self._watchers.pop(key, None)


class Resource:
    """Pre-change FIFO semaphore: grant queue is a ``list``, pop(0) per release."""

    __slots__ = ("_engine", "capacity", "_in_use", "_queue", "name", "_granted", "_peak")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[SimEvent] = []
        self.name = name
        self._granted = 0
        self._peak = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> SimEvent:
        grant = SimEvent(self._engine, name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted += 1
            grant.trigger()
        else:
            self._queue.append(grant)
            self._peak = max(self._peak, len(self._queue))
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.pop(0)
            self._granted += 1
            nxt.trigger()
        else:
            self._in_use -= 1

    def occupy(self, duration: float, then: Optional[Callable[[], None]] = None) -> SimEvent:
        done = SimEvent(self._engine, name=f"{self.name}.occupy")

        def _granted(_: Any) -> None:
            def _finish() -> None:
                self.release()
                if then is not None:
                    then()
                done.trigger()

            self._engine.schedule(duration, _finish, label=f"{self.name}.hold")

        self.acquire().on_trigger(_granted)
        return done


ProcGen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Timeout:
    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class Wait:
    event: SimEvent


@dataclass(frozen=True)
class WaitFor:
    cell: Cell
    pred: Callable[[Any], bool]


@dataclass(frozen=True)
class Acquire:
    resource: Resource


@dataclass(frozen=True)
class Hold:
    resource: Resource
    duration: float


@dataclass(frozen=True)
class BlockedInfo:
    process: str
    actor: Optional[Any]
    kind: str
    target: Any


class Process:
    """Pre-change process driver: ``isinstance`` ladder, per-Timeout lambda
    + f-string label, eager blocked descriptions."""

    def __init__(self, engine: Engine, gen: ProcGen, name: str = "proc",
                 actor: Optional[Any] = None):
        self._engine = engine
        self._gen = gen
        self.name = name
        self.actor = actor
        self.done = SimEvent(engine, name=f"{name}.done")
        self._blocked_token: Optional[int] = None
        self._finished = False
        engine.call_now(lambda: self._step(None), label=f"{name}.start")

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        return self.done.value

    def _mark_blocked(self, why: str, kind: str = "", target: Any = None) -> None:
        info = None
        if kind:
            info = BlockedInfo(self.name, self.actor, kind, target)
        self._blocked_token = self._engine.note_blocked(
            f"{self.name}: {why}", info=info
        )

    def _resume(self, value: Any) -> None:
        if self._blocked_token is not None:
            self._engine.note_unblocked(self._blocked_token)
            self._blocked_token = None
        self._step(value)

    def _step(self, send_value: Any) -> None:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.begin_step(self.actor)
        try:
            command = self._gen.send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # noqa: BLE001
            self._finished = True
            raise ProcessFailure(self.name, exc) from exc
        finally:
            if monitor is not None:
                monitor.end_step()
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._engine.schedule(
                command.delay, lambda: self._step(None), label=f"{self.name}.timeout"
            )
        elif isinstance(command, Wait):
            ev = command.event
            if not ev.triggered:
                self._mark_blocked(f"waiting on event {ev.name!r}", "event", ev)
            ev.on_trigger(self._observing_resume("event", ev))
        elif isinstance(command, WaitFor):
            cell, pred = command.cell, command.pred
            if not pred(cell.value):
                self._mark_blocked(f"waiting on cell {cell.name!r}", "cell", cell)
            cell.wait_until(pred, self._observing_resume("cell", cell))
        elif isinstance(command, Acquire):
            res = command.resource
            grant = res.acquire()
            if not grant.triggered:
                self._mark_blocked(f"acquiring resource {res.name!r}",
                                   "resource", res)
            grant.on_trigger(self._resume)
        elif isinstance(command, Hold):
            res, dur = command.resource, command.duration
            done = res.occupy(dur)
            if not done.triggered:
                self._mark_blocked(f"holding resource {res.name!r}",
                                   "resource", res)
            done.on_trigger(self._resume)
        else:
            raise ProcessFailure(
                self.name,
                TypeError(f"process yielded non-command object {command!r}"),
            )

    def _observing_resume(self, kind: str, target: Any) -> Callable[[Any], None]:
        monitor = self._engine.monitor
        if monitor is None:
            return self._resume

        def _resume_observed(value: Any) -> None:
            if kind == "cell":
                monitor.on_cell_observed(target, self.actor)
            else:
                monitor.on_event_observed(target, self.actor)
            self._resume(value)

        return _resume_observed
