"""``python -m repro.perf`` — simulation-kernel throughput report.

Runs the kernel microbenchmarks (each against both the live kernel and
the frozen pre-change baseline in :mod:`repro.perf._legacy`), one
end-to-end TDLB barrier sweep, and an instrumented stats sample; prints
a table and writes ``BENCH_SIM_KERNEL.json``.

Modes
-----
``--smoke``
    Reduced sizes for CI (a few seconds).  Same schema in the JSON.
``--baseline FILE --min-ratio R``
    Regression gate: exit 2 if the fresh engine-microbenchmark
    events/sec falls below ``R`` × the baseline file's number.
``--harness``
    Benchmark the run *orchestration* instead of the kernel: sequential
    vs pooled quick conformance matrix plus a cold/warm cache cycle
    (see :mod:`repro.perf.harness`), written to ``BENCH_HARNESS.json``.
    ``--min-speedup R`` gates pooled speedup ≥ R — enforced only when
    the machine has ≥ 2 cores and more than one worker was used.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone

from ..machine import build_machine, paper_cluster
from ..sim.engine import Engine
from .bench import (
    bench_burst,
    bench_engine_dispatch,
    bench_macro_barrier,
    bench_macro_bcast,
    bench_macro_reduce,
    bench_sync_kernel,
    bench_tdlb_barrier,
    bench_trampoline,
)
from .stats import run_with_stats

#: Workload sizes per mode.  The engine microbenchmark (``engine_dispatch``)
#: is the headline number the CI gate tracks; its shape (128 concurrent
#: processes) is where the batched heap drain amortizes — the wide-heap
#: regime every ≥ 1k-image experiment lives in.
SIZES = {
    "full": {
        "trampoline": dict(events=400_000, chains=8, repeats=4),
        "engine_dispatch": dict(procs=128, events_per_proc=2_000, repeats=4),
        "burst": dict(procs=128, events_per_proc=2_000, repeats=4),
        "sync_kernel": dict(pairs=8, rounds=4_000, repeats=4),
        "tdlb_barrier": dict(iters=400, num_images=16, images_per_node=8, repeats=3),
        "macro_barrier": dict(iters=10, num_images=1024, repeats=1),
        "macro_reduce": dict(iters=5, num_images=2048, repeats=1),
        "macro_bcast": dict(iters=1, num_images=4096, repeats=1),
    },
    "smoke": {
        "trampoline": dict(events=60_000, chains=8, repeats=2),
        "engine_dispatch": dict(procs=128, events_per_proc=500, repeats=2),
        "burst": dict(procs=128, events_per_proc=500, repeats=2),
        "sync_kernel": dict(pairs=4, rounds=1_000, repeats=2),
        "tdlb_barrier": dict(iters=50, num_images=16, images_per_node=8, repeats=2),
        "macro_barrier": dict(iters=5, num_images=256, repeats=1),
        "macro_reduce": dict(iters=4, num_images=256, repeats=1),
        "macro_bcast": dict(iters=1, num_images=512, repeats=1),
    },
}

_AB_BENCHES = {
    "trampoline": bench_trampoline,
    "engine_dispatch": bench_engine_dispatch,
    "burst": bench_burst,
    "sync_kernel": bench_sync_kernel,
}


def _stats_sample(num_images: int = 16, images_per_node: int = 8,
                  iters: int = 20) -> dict:
    """One small instrumented TDLB run through :func:`run_with_stats`."""
    engine = Engine()
    nodes = -(-num_images // images_per_node)
    machine = build_machine(
        engine, paper_cluster(max(nodes, 1)), num_images,
        images_per_node=images_per_node,
    )

    def main(ctx, n):
        for _ in range(n):
            yield from ctx.sync_all()

    # run_spmd drains the engine itself; to observe the run we spawn the
    # images by hand and let run_with_stats drive the loop instead.
    from ..runtime.program import CafContext, UHCAF_2LEVEL, World
    from ..sim.process import Process

    world = World(machine, UHCAF_2LEVEL)
    for proc in range(machine.num_images):
        Process(engine, main(CafContext(world, proc), iters),
                name=f"image{proc + 1}", actor=proc)
    stats = run_with_stats(engine)
    return stats.as_dict(top=8)


def run_benchmarks(mode: str) -> dict:
    sizes = SIZES[mode]
    benchmarks: dict = {}
    for name, fn in _AB_BENCHES.items():
        kw = sizes[name]
        cur = fn("current", **kw)
        leg = fn("legacy", **kw)
        speedup = (cur.events_per_sec / leg.events_per_sec
                   if leg.events_per_sec else float("nan"))
        entry = cur.as_dict()
        entry.pop("kernel")
        entry["legacy_events_per_sec"] = round(leg.events_per_sec, 1)
        entry["speedup_vs_legacy"] = round(speedup, 3)
        benchmarks[name] = entry
    tdlb = bench_tdlb_barrier(**sizes["tdlb_barrier"])
    entry = tdlb.as_dict()
    entry.pop("kernel")
    benchmarks["tdlb_barrier"] = entry
    benchmarks["tdlb_barrier_stats"] = _stats_sample()
    benchmarks["macro_barrier"] = bench_macro_barrier(**sizes["macro_barrier"])
    benchmarks["macro_reduce"] = bench_macro_reduce(**sizes["macro_reduce"])
    benchmarks["macro_bcast"] = bench_macro_bcast(**sizes["macro_bcast"])
    return benchmarks


def render(payload: dict) -> str:
    lines = [
        "# repro.perf — simulation-kernel throughput "
        f"({payload['mode']}, python {payload['python']})",
        "",
        f"{'benchmark':<18} {'events/s':>12} {'legacy ev/s':>12} {'speedup':>8}",
    ]
    for name, entry in payload["benchmarks"].items():
        if "events_per_sec" not in entry:
            continue
        legacy = entry.get("legacy_events_per_sec")
        speed = entry.get("speedup_vs_legacy")
        lines.append(
            f"{name:<18} {entry['events_per_sec']:>12,.0f} "
            f"{legacy:>12,.0f} {speed:>7.2f}x" if legacy is not None else
            f"{name:<18} {entry['events_per_sec']:>12,.0f} {'—':>12} {'—':>8}"
        )
    head = payload["headline"]
    lines += [
        "",
        f"engine microbenchmark: {head['engine_events_per_sec']:,.0f} events/s, "
        f"{head['speedup_vs_legacy']:.2f}x vs. pre-change kernel",
    ]
    for key, label in (("macro_barrier", "barrier"),
                       ("macro_reduce", "reduce"),
                       ("macro_bcast", "broadcast")):
        macro = payload["benchmarks"].get(key)
        if not macro:
            continue
        exact = macro["identical_final_time"]
        if "identical_results" in macro:
            exact = exact and macro["identical_results"] \
                and not macro["inexact"]
        agree = "exact" if exact else "DIVERGENT"
        lines.append(
            f"macro-event {label} ({macro['num_images']} images): "
            f"{macro['events_fine']:,} -> {macro['events_macro']:,} engine "
            f"events ({macro['event_ratio']:.0f}x fewer), replay {agree}"
        )
    return "\n".join(lines)


def run_harness_mode(args) -> int:
    """``--harness``: A/B the exec pool + cache, write BENCH_HARNESS.json."""
    from .harness import DEFAULT_SEEDS, bench_harness, render_harness

    entry = bench_harness(jobs=args.jobs,
                          seeds=args.seeds or DEFAULT_SEEDS)
    payload = {
        "schema": "repro.perf/bench_harness/v1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "harness": entry,
    }
    out = args.out
    if out == "BENCH_SIM_KERNEL.json":  # the kernel-mode default
        out = "BENCH_HARNESS.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(render_harness(entry))
    print(f"\nwrote {out}")

    if not entry["identical_results"]:
        print("FAIL: pooled results differ from sequential", file=sys.stderr)
        return 2
    if args.min_speedup is not None:
        if entry["cpu_count"] < 2 or entry["jobs"] < 2:
            print(f"speedup gate skipped: {entry['cpu_count']} core(s), "
                  f"{entry['jobs']} job(s) — nothing to fan out over")
        elif entry["speedup"] < args.min_speedup:
            print(f"FAIL: pooled speedup {entry['speedup']:.2f}x below the "
                  f"{args.min_speedup:.2f}x gate", file=sys.stderr)
            return 2
        else:
            print(f"speedup gate: {entry['speedup']:.2f}x >= "
                  f"{args.min_speedup:.2f}x ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI (seconds, same JSON schema)")
    parser.add_argument("-o", "--out", default="BENCH_SIM_KERNEL.json",
                        help="where to write the JSON (default: repo root/cwd)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_SIM_KERNEL.json to gate against")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="fail if fresh/baseline events/sec < this (default 0.7)")
    parser.add_argument("--harness", action="store_true",
                        help="benchmark the exec worker pool + result cache "
                             "instead of the simulation kernel")
    parser.add_argument("-j", "--jobs", default="auto",
                        help="harness mode: worker processes, an integer or "
                             "'auto' (default auto)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="harness mode: fuzz seeds per case (default: "
                             "enough for a multi-second sequential baseline)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="harness mode: fail if pooled speedup < this "
                             "(only enforced on multi-core, multi-worker runs)")
    args = parser.parse_args(argv)

    if args.harness:
        return run_harness_mode(args)

    mode = "smoke" if args.smoke else "full"
    benchmarks = run_benchmarks(mode)
    engine_entry = benchmarks["engine_dispatch"]
    payload = {
        "schema": "repro.perf/bench_sim_kernel/v1",
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "benchmarks": benchmarks,
        "headline": {
            "engine_events_per_sec": engine_entry["events_per_sec"],
            "speedup_vs_legacy": engine_entry["speedup_vs_legacy"],
            "macro_event_ratio": benchmarks["macro_barrier"]["event_ratio"],
            "macro_identical_final_time":
                benchmarks["macro_barrier"]["identical_final_time"],
            "macro_reduce_event_ratio":
                benchmarks["macro_reduce"]["event_ratio"],
            "macro_reduce_exact":
                benchmarks["macro_reduce"]["identical_final_time"]
                and benchmarks["macro_reduce"]["identical_results"]
                and not benchmarks["macro_reduce"]["inexact"],
            "macro_bcast_exact":
                benchmarks["macro_bcast"]["identical_final_time"]
                and benchmarks["macro_bcast"]["identical_results"]
                and not benchmarks["macro_bcast"]["inexact"],
        },
    }

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(render(payload))
    print(f"\nwrote {args.out}")

    if not benchmarks["macro_barrier"]["identical_final_time"]:
        print("FAIL: macro-event barrier final time diverges from "
              "fine-grained mode", file=sys.stderr)
        return 2
    # The reduce/broadcast windows carry data, so the exactness gate is
    # stricter: identical final time, bit-identical per-image results,
    # and the coordinator's own inexact flag must stay clear.
    for key in ("macro_reduce", "macro_bcast"):
        entry = benchmarks[key]
        if (not entry["identical_final_time"]
                or not entry["identical_results"] or entry["inexact"]):
            print(f"FAIL: {key} macro replay diverges from fine-grained "
                  "mode", file=sys.stderr)
            return 2
    if benchmarks["macro_reduce"]["replays"] < benchmarks["macro_reduce"]["iters"]:
        print("FAIL: macro_reduce chained windows pinned fine "
              f"(replays={benchmarks['macro_reduce']['replays']} < "
              f"iters={benchmarks['macro_reduce']['iters']})", file=sys.stderr)
        return 2
    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        base_eps = base["headline"]["engine_events_per_sec"]
        fresh_eps = payload["headline"]["engine_events_per_sec"]
        ratio = fresh_eps / base_eps if base_eps else float("inf")
        print(f"regression gate: fresh {fresh_eps:,.0f} ev/s vs baseline "
              f"{base_eps:,.0f} ev/s -> ratio {ratio:.2f} "
              f"(min {args.min_ratio:.2f})")
        if ratio < args.min_ratio:
            print("FAIL: engine throughput regressed past the gate",
                  file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
