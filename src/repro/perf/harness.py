"""Harness A/B benchmark: sequential vs pooled conformance matrix.

Measures what the :mod:`repro.exec` worker pool actually buys on this
machine by running the same quick conformance matrix three ways:

1. sequential (``jobs=1``, no cache) — the baseline;
2. pooled (``jobs=N``, no cache) — fan-out speedup and per-worker
   utilization, with a result-equality check against the sequential run
   (the pool's ordering guarantee, verified end to end);
3. a cold→warm cache cycle in a throwaway cache directory — how much of
   a re-run the content-keyed cache skips.

The numbers feed ``BENCH_HARNESS.json`` (see ``python -m repro.perf
--harness``) and the CI speedup gate.  On a single-core box the pooled
run is expected to *lose* to sequential (workers time-slice one core);
the gate is therefore only meaningful when ``cpu_count >= 2``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from time import perf_counter
from typing import Optional

from ..exec import ResultCache, resolve_jobs
from ..verify.conformance import build_matrix, run_matrix

__all__ = ["bench_harness"]

#: Fuzz seeds per case.  Chosen so the sequential quick matrix takes a
#: few seconds — long enough that the pool's fixed cost (worker spawn +
#: pickling, ~0.5 s) cannot mask a genuine multi-core speedup.
DEFAULT_SEEDS = 15


def bench_harness(jobs="auto", seeds: int = DEFAULT_SEEDS,
                  cache_dir: Optional[str] = None) -> dict:
    """Run the A/B and return the ``BENCH_HARNESS.json`` payload body."""
    jobs_n = resolve_jobs(jobs)
    cases = build_matrix(quick=True)

    # 1. sequential baseline
    t0 = perf_counter()
    seq = run_matrix(cases, seeds=seeds, jobs=1)
    seq_wall = perf_counter() - t0

    # 2. pooled, same work, no cache
    stats: dict = {}
    t0 = perf_counter()
    par = run_matrix(cases, seeds=seeds, jobs=jobs_n, stats_out=stats)
    par_wall = perf_counter() - t0

    identical = seq == par
    busy = stats.get("per_worker_busy_s", [])
    utilization = (sum(busy) / (par_wall * jobs_n)
                   if busy and par_wall > 0 else 0.0)

    # 3. cold → warm cache cycle (throwaway directory unless given one)
    root = cache_dir or tempfile.mkdtemp(prefix="repro-harness-cache-")
    try:
        cold_cache = ResultCache(root=root, namespace="harness")
        t0 = perf_counter()
        run_matrix(cases, seeds=seeds, jobs=jobs_n, cache=cold_cache)
        cold_wall = perf_counter() - t0

        warm_cache = ResultCache(root=root, namespace="harness")
        t0 = perf_counter()
        warm = run_matrix(cases, seeds=seeds, jobs=jobs_n, cache=warm_cache)
        warm_wall = perf_counter() - t0
        hit_rate = warm_cache.hits / len(cases) if cases else 0.0
        warm_identical = warm == seq
    finally:
        if cache_dir is None:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "cases": len(cases),
        "seeds": seeds,
        "jobs": jobs_n,
        "cpu_count": os.cpu_count() or 1,
        "sequential_wall_s": round(seq_wall, 3),
        "pooled_wall_s": round(par_wall, 3),
        "speedup": round(seq_wall / par_wall, 3) if par_wall > 0 else 0.0,
        "identical_results": identical,
        "per_worker_busy_s": [round(b, 3) for b in busy],
        "per_worker_tasks": stats.get("per_worker_tasks", []),
        "worker_utilization": round(utilization, 3),
        "pool_respawns": stats.get("respawns", 0),
        "cache": {
            "cold_wall_s": round(cold_wall, 3),
            "warm_wall_s": round(warm_wall, 3),
            "hit_rate": round(hit_rate, 3),
            "warm_speedup_vs_sequential": (
                round(seq_wall / warm_wall, 3) if warm_wall > 0 else 0.0),
            "warm_identical_results": warm_identical,
        },
    }


def render_harness(entry: dict) -> str:
    """Human-readable summary of a :func:`bench_harness` payload."""
    lines = [
        f"harness A/B: {entry['cases']} case(s) x {entry['seeds']} seed(s), "
        f"{entry['jobs']} job(s) on {entry['cpu_count']} core(s)",
        f"  sequential {entry['sequential_wall_s']:6.2f}s   "
        f"pooled {entry['pooled_wall_s']:6.2f}s   "
        f"speedup {entry['speedup']:.2f}x   "
        f"utilization {entry['worker_utilization'] * 100:.0f}%",
        f"  results identical: {entry['identical_results']}",
    ]
    cache = entry["cache"]
    lines.append(
        f"  cache: cold {cache['cold_wall_s']:.2f}s -> warm "
        f"{cache['warm_wall_s']:.2f}s   hit rate "
        f"{cache['hit_rate'] * 100:.0f}%   "
        f"warm vs sequential {cache['warm_speedup_vs_sequential']:.1f}x"
    )
    return "\n".join(lines)
