"""Simulation-kernel microbenchmarks, runnable against two kernels.

Every workload here is written against the five names a kernel module
must expose — ``Engine``, ``Process``, ``Timeout``, ``WaitFor``,
``Cell`` — so the *same* workload runs on the live :mod:`repro.sim`
kernel and on the frozen pre-change kernel (:mod:`repro.perf._legacy`).
The reported speedup is therefore an in-process A/B on identical work,
not a comparison against a number measured on some other machine.

Workloads
---------
``trampoline``
    Self-rescheduling callbacks, no processes: isolates
    ``Engine.schedule`` + the run-loop dispatch.
``engine_dispatch``
    N generator processes each yielding a chain of ``Timeout``\\ s: the
    per-event process-driver path (generator resume, command dispatch,
    timeout scheduling).  This is *the* engine microbenchmark — it is the
    shape of every charged cost in the runtime.
``burst``
    Timeout chains with *identical* delays so every dispatch instant
    carries one event per process: the best case for the batched heap
    drain (pop a whole same-time cohort per heap discipline) and the
    worst case for a strictly per-event loop.
``sync_kernel``
    Producer/consumer pairs spinning on ``Cell``\\ s via ``WaitFor``:
    watcher checks, blocked-bookkeeping, wake-on-write — the shape of
    barrier ``sync_flags`` traffic.
``tdlb_barrier``
    End-to-end: a real :func:`~repro.runtime.program.run_spmd` TDLB
    barrier sweep on the current kernel (no legacy twin — the runtime
    layers only speak to :mod:`repro.sim`).
``macro_barrier``
    The macro-event A/B: the hierarchical TDLB barrier on a flat
    ≥ 1k-image team, macro-events on vs off, on the current kernel.
    Reports the engine-event ratio and checks the final simulated times
    agree — the exactness contract, measured rather than assumed.
``macro_reduce`` / ``macro_bcast``
    The same A/B for the reduction and broadcast macro-windows: a tight
    ``co_sum`` loop on a flat team (sustained chained collapse — every
    window replayed from the first analysis) and a single isolated
    ``co_broadcast`` window.  Both check final time *and* per-image
    results bit-identical, and surface the macro coordinator's own
    counters (replays, inexact flag, disable reason) so the gate can
    fail loudly instead of silently pinning fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Tuple

from .. import sim as _current
from ..machine import build_machine, paper_cluster
from ..runtime.program import run_spmd
from ..sim.engine import Engine as _CurrentEngine
from . import _legacy

__all__ = [
    "BenchResult", "KERNELS",
    "bench_trampoline", "bench_engine_dispatch", "bench_burst",
    "bench_sync_kernel", "bench_tdlb_barrier", "bench_macro_barrier",
    "bench_macro_reduce", "bench_macro_bcast",
]

#: The two kernels every microbenchmark can run against.
KERNELS = {"current": _current, "legacy": _legacy}


@dataclass
class BenchResult:
    """One measured workload run (best of ``repeats``)."""

    name: str
    kernel: str
    events: int
    wall_s: float
    sim_time: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_time_s": self.sim_time,
        }


def _best_of(
    name: str,
    kernel_name: str,
    once: Callable[[], Tuple[int, float, float]],
    repeats: int,
) -> BenchResult:
    """Run ``once`` ``repeats`` times, keep the fastest (least-noisy) run."""
    best: BenchResult = None  # type: ignore[assignment]
    for _ in range(max(1, repeats)):
        events, wall, sim_time = once()
        result = BenchResult(name, kernel_name, events, wall, sim_time)
        if best is None or result.events_per_sec > best.events_per_sec:
            best = result
    return best


# ----------------------------------------------------------------------
def bench_trampoline(
    kernel_name: str = "current", events: int = 200_000, chains: int = 8,
    repeats: int = 3,
) -> BenchResult:
    """Pure engine loop: ``chains`` callbacks re-scheduling themselves."""
    kernel = KERNELS[kernel_name]
    per_chain = events // chains

    def once() -> Tuple[int, float, float]:
        engine = kernel.Engine()

        def make_chain(idx: int) -> Callable[[], None]:
            remaining = per_chain
            delay = (idx % 7 + 1) * 1e-9  # distinct delays keep the heap honest

            def tick() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining > 0:
                    engine.schedule(delay, tick)

            return tick

        for idx in range(chains):
            engine.schedule(0.0, make_chain(idx))
        t0 = perf_counter()
        engine.run()
        wall = perf_counter() - t0
        return engine.events_processed, wall, engine.now

    return _best_of("trampoline", kernel_name, once, repeats)


def bench_engine_dispatch(
    kernel_name: str = "current", procs: int = 32, events_per_proc: int = 4_000,
    repeats: int = 3,
) -> BenchResult:
    """The engine microbenchmark: Timeout chains through the process driver."""
    kernel = KERNELS[kernel_name]

    def image(idx: int) -> Any:
        delay = (idx % 7 + 1) * 1e-9
        timeout = kernel.Timeout(delay)
        for _ in range(events_per_proc):
            yield timeout

    def once() -> Tuple[int, float, float]:
        engine = kernel.Engine()
        for idx in range(procs):
            kernel.Process(engine, image(idx), name=f"bench{idx}")
        t0 = perf_counter()
        engine.run()
        wall = perf_counter() - t0
        return engine.events_processed, wall, engine.now

    return _best_of("engine_dispatch", kernel_name, once, repeats)


def bench_burst(
    kernel_name: str = "current", procs: int = 128, events_per_proc: int = 2_000,
    repeats: int = 3,
) -> BenchResult:
    """Batched-heap stress: every process ticks with the *same* delay.

    All ``procs`` events land on identical timestamps, so each dispatch
    instant is a full same-time cohort — the shape the batched drain in
    ``Engine._run_fast`` amortizes and a per-event loop pays for one
    heap round-trip at a time.
    """
    kernel = KERNELS[kernel_name]

    def image() -> Any:
        timeout = kernel.Timeout(1e-9)
        for _ in range(events_per_proc):
            yield timeout

    def once() -> Tuple[int, float, float]:
        engine = kernel.Engine()
        for idx in range(procs):
            kernel.Process(engine, image(), name=f"burst{idx}")
        t0 = perf_counter()
        engine.run()
        wall = perf_counter() - t0
        return engine.events_processed, wall, engine.now

    return _best_of("burst", kernel_name, once, repeats)


def bench_sync_kernel(
    kernel_name: str = "current", pairs: int = 8, rounds: int = 2_000,
    repeats: int = 3,
) -> BenchResult:
    """Cell spin-wait ping-pong: watcher checks + blocked bookkeeping.

    Each round hops through a zero-ish Timeout so wakes trampoline through
    the engine instead of recursing through synchronous callbacks.
    """
    kernel = KERNELS[kernel_name]

    def left(ping: Any, pong: Any) -> Any:
        for r in range(1, rounds + 1):
            ping.add(1)
            yield kernel.WaitFor(pong, lambda v, r=r: v >= r)
            yield kernel.Timeout(1e-9)

    def right(ping: Any, pong: Any) -> Any:
        for r in range(1, rounds + 1):
            yield kernel.WaitFor(ping, lambda v, r=r: v >= r)
            yield kernel.Timeout(1e-9)
            pong.add(1)

    def once() -> Tuple[int, float, float]:
        engine = kernel.Engine()
        for p in range(pairs):
            ping = kernel.Cell(engine, name=f"ping{p}")
            pong = kernel.Cell(engine, name=f"pong{p}")
            kernel.Process(engine, left(ping, pong), name=f"left{p}")
            kernel.Process(engine, right(ping, pong), name=f"right{p}")
        t0 = perf_counter()
        engine.run()
        wall = perf_counter() - t0
        return engine.events_processed, wall, engine.now

    return _best_of("sync_kernel", kernel_name, once, repeats)


# ----------------------------------------------------------------------
def _barrier_main(ctx: Any, iters: int) -> Any:
    for _ in range(iters):
        yield from ctx.sync_all()


def bench_tdlb_barrier(
    iters: int = 200, num_images: int = 16, images_per_node: int = 8,
    repeats: int = 2,
) -> BenchResult:
    """End-to-end TDLB barrier sweep through the full runtime stack."""

    def once() -> Tuple[int, float, float]:
        engine = _CurrentEngine()
        nodes = -(-num_images // images_per_node)
        machine = build_machine(
            engine, paper_cluster(max(nodes, 1)), num_images,
            images_per_node=images_per_node,
        )
        t0 = perf_counter()
        result = run_spmd(_barrier_main, machine=machine, args=(iters,))
        wall = perf_counter() - t0
        return engine.events_processed, wall, result.time

    return _best_of("tdlb_barrier", "current", once, repeats)


def bench_macro_barrier(
    iters: int = 10, num_images: int = 1024, repeats: int = 1,
) -> dict:
    """Macro-event A/B: flat TDLB barrier sweep, macro on vs off.

    A flat (block placement, one image per node) team keeps every
    barrier window single-instant, so the macro coordinator sustains
    collapse across the whole sweep; fine-grained mode executes the
    full dissemination event by event.  Returns one composite entry:
    engine-event counts for both modes, the ratio, both final simulated
    times, and whether they agree exactly — the acceptance contract of
    the macro-event subsystem (≥ 10x fewer events, identical time).
    """

    def once(macro: bool) -> Tuple[int, float, float]:
        engine = _CurrentEngine()
        machine = build_machine(
            engine, paper_cluster(num_images), num_images, images_per_node=1,
        )
        t0 = perf_counter()
        result = run_spmd(_barrier_main, machine=machine, args=(iters,),
                          macro_events=macro)
        wall = perf_counter() - t0
        return engine.events_processed, wall, result.time

    best: dict = {}
    for _ in range(max(1, repeats)):
        ev_fine, wall_fine, t_fine = once(macro=False)
        ev_macro, wall_macro, t_macro = once(macro=True)
        entry = {
            "num_images": num_images,
            "iters": iters,
            "events_fine": ev_fine,
            "events_macro": ev_macro,
            "event_ratio": round(ev_fine / ev_macro, 1) if ev_macro else 0.0,
            "wall_fine_s": round(wall_fine, 6),
            "wall_macro_s": round(wall_macro, 6),
            "sim_time_fine_s": t_fine,
            "sim_time_macro_s": t_macro,
            "identical_final_time": t_fine == t_macro,
        }
        if not best or entry["wall_macro_s"] < best["wall_macro_s"]:
            best = entry
    return best


# ----------------------------------------------------------------------
def _reduce_main(ctx: Any, iters: int) -> Any:
    acc = float(ctx.this_image())
    for _ in range(iters):
        acc = yield from ctx.co_sum(acc * 0.5)
    return acc


def _bcast_main(ctx: Any, iters: int) -> Any:
    # One broadcast window per run (iters defaults to 1): a broadcast
    # window only collapses when it opens on a fully quiet engine —
    # its staggered deliveries mean later members of a *chained* window
    # would be parked past their true exits, so the coordinator pins
    # follow-on windows fine by design.  The collapsible shape is the
    # isolated window, and that is what this bench measures.
    me = ctx.this_image()
    out = 0.0
    for _ in range(iters):
        out = yield from ctx.co_broadcast(out + me, source_image=1)
    return out


def _bench_macro_collective(
    main: Callable[..., Any], iters: int, num_images: int, repeats: int,
) -> dict:
    """Shared macro on/off A/B for a collective sweep on a flat team.

    Same shape as :func:`bench_macro_barrier`, with two additions the
    data-carrying collectives need: the per-image *results* must also be
    bit-identical (a barrier carries no data; a reduce or broadcast
    does), and the macro coordinator's own counters ride along so a run
    that silently pinned fine (ratio ≈ 1, replays = 0) is visible in the
    recorded entry rather than just as a slow wall time.
    """

    def once(macro: bool) -> Tuple[int, float, Any]:
        engine = _CurrentEngine()
        machine = build_machine(
            engine, paper_cluster(num_images), num_images, images_per_node=1,
        )
        t0 = perf_counter()
        result = run_spmd(main, machine=machine, args=(iters,),
                          macro_events=macro)
        wall = perf_counter() - t0
        return engine.events_processed, wall, result

    best: dict = {}
    for _ in range(max(1, repeats)):
        ev_fine, wall_fine, r_fine = once(macro=False)
        ev_macro, wall_macro, r_macro = once(macro=True)
        macro_stats = r_macro.world.macro
        entry = {
            "num_images": num_images,
            "iters": iters,
            "events_fine": ev_fine,
            "events_macro": ev_macro,
            "event_ratio": round(ev_fine / ev_macro, 1) if ev_macro else 0.0,
            "wall_fine_s": round(wall_fine, 6),
            "wall_macro_s": round(wall_macro, 6),
            "sim_time_fine_s": r_fine.time,
            "sim_time_macro_s": r_macro.time,
            "identical_final_time": r_fine.time == r_macro.time,
            "identical_results": r_fine.results == r_macro.results,
            "replays": macro_stats.replays,
            "inexact": macro_stats.inexact,
            "disabled_reason": macro_stats.disabled_reason,
        }
        if not best or entry["wall_macro_s"] < best["wall_macro_s"]:
            best = entry
    return best


def bench_macro_reduce(
    iters: int = 5, num_images: int = 2048, repeats: int = 1,
) -> dict:
    """Macro-event A/B: tight ``co_sum`` sweep on a flat team.

    Back-to-back reductions with no separating compute are the chained-
    window case: each two-level fold/unfold window butts against the
    next, and the coordinator must collapse the whole chain from one
    analysis per window (``replays == iters``) while staying bit-exact
    on final time, per-image results, and traffic ledger.  This is the
    extreme-scale acceptance scenario scaled to a bench-friendly team.
    """
    return _bench_macro_collective(_reduce_main, iters, num_images, repeats)


def bench_macro_bcast(
    iters: int = 1, num_images: int = 4096, repeats: int = 1,
) -> dict:
    """Macro-event A/B: a single ``co_broadcast`` window on a flat team.

    The window is a two-level root→leaders→locals tree collapsed to one
    analytically-costed wake schedule.  The event ratio is bounded by
    the arrival floor — every member's registration is still one engine
    event — so expect ~4x here rather than the barrier/reduce orders of
    magnitude; the gate is about exactness, not the ratio.
    """
    return _bench_macro_collective(_bcast_main, iters, num_images, repeats)
