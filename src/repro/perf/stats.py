"""Engine run statistics: throughput, heap depth, event-label histogram.

:func:`run_with_stats` drives an :class:`~repro.sim.engine.Engine` to
completion through the instrumented ``step()`` path, sampling the heap
before every dispatch.  It is the observability counterpart of the
kernel fast path: ``Engine.run`` tells you nothing about *where* the
events went; this tells you events/sec, how deep the heap got, and which
labels dominated — at the cost of running the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from ..sim.engine import Engine
from ..sim.errors import DeadlockError

__all__ = ["EngineStats", "run_with_stats"]

#: Histogram bucket for events scheduled without a label.
UNLABELED = "(unlabeled)"


@dataclass
class EngineStats:
    """What one observed engine run looked like from the scheduler's seat."""

    events: int = 0
    wall_s: float = 0.0
    sim_time: float = 0.0
    peak_heap: int = 0
    label_histogram: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def top_labels(self, n: int = 10) -> list:
        """The ``n`` most frequent event labels, most frequent first."""
        ranked = sorted(self.label_histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def as_dict(self, top: int = 10) -> dict:
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_time_s": self.sim_time,
            "peak_heap": self.peak_heap,
            "top_labels": dict(self.top_labels(top)),
        }


def run_with_stats(engine: Engine, until: Optional[float] = None) -> EngineStats:
    """Run ``engine`` to completion, collecting :class:`EngineStats`.

    Drives the per-event ``step()`` path (so the run is instrumented, not
    fast-pathed) and peeks the next record before each dispatch to
    attribute the event to its label.  ``peak_heap`` reports the maximum
    number of simultaneously pending events (``Engine.pending_events``,
    sampled before each dispatch).  Raises
    :class:`~repro.sim.errors.DeadlockError` exactly as ``run()`` would
    if the queue drains with blocked processes.
    """
    stats = EngineStats()
    histogram = stats.label_histogram
    peek = engine.peek
    peak = 0
    drained = True
    t0 = perf_counter()
    while True:
        head = peek()
        if head is None:
            # Queue dry: give drain hooks (macro-event demotion, see
            # Engine.add_drain_hook) the same last chance run() gives
            # them — any progress refills the queue and the loop resumes.
            if engine.blocked_descriptions and any(
                hook() for hook in list(engine._drain_hooks)
            ):
                continue
            break
        depth = engine.pending_events
        if depth > peak:
            peak = depth
        time, label = head
        if until is not None and time > until:
            drained = False
            break
        histogram[label or UNLABELED] = histogram.get(label or UNLABELED, 0) + 1
        engine.step()
    stats.wall_s = perf_counter() - t0
    stats.peak_heap = peak
    stats.events = sum(histogram.values())
    stats.sim_time = engine.now
    if drained and engine.blocked_descriptions:
        raise DeadlockError(engine.blocked_descriptions,
                            details=engine.blocked_details)
    return stats
