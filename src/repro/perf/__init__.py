"""Simulation-kernel performance instrumentation.

The discrete-event engine's throughput is the "hardware speed" of this
reproduction — every experiment regenerates by pushing events through
it — so this package makes that speed observable:

* :func:`~repro.perf.stats.run_with_stats` — drive any engine through
  the instrumented path and get events/sec, wall time, peak heap depth
  and an event-label histogram back.
* :mod:`repro.perf.bench` — microbenchmarks (engine dispatch, same-time
  burst, trampoline, sync-cell kernel, end-to-end TDLB barrier, and the
  macro-event barrier A/B) that run the same workload against the live
  kernel and the frozen pre-change kernel (:mod:`repro.perf._legacy`)
  for a noise-free in-process speedup.
* ``python -m repro.perf`` — the CLI; writes ``BENCH_SIM_KERNEL.json``
  (the perf trajectory consumed by CI's perf-smoke job).
"""

from .bench import (
    BenchResult,
    bench_burst,
    bench_engine_dispatch,
    bench_macro_barrier,
    bench_macro_bcast,
    bench_macro_reduce,
    bench_sync_kernel,
    bench_tdlb_barrier,
    bench_trampoline,
)
from .stats import EngineStats, run_with_stats

__all__ = [
    "BenchResult", "EngineStats", "run_with_stats",
    "bench_burst", "bench_engine_dispatch", "bench_macro_barrier",
    "bench_macro_bcast", "bench_macro_reduce",
    "bench_sync_kernel", "bench_tdlb_barrier", "bench_trampoline",
]
