"""One-shot reproduction report: every headline number, regenerated.

``python -m repro.report`` runs the paper's headline experiments and
writes a markdown report comparing each paper claim with the freshly
measured value, including a pass/fail verdict against the acceptance
bands the benchmark suite enforces.  ``quick=True`` shrinks the sweeps
(used by the test suite); the full run takes a couple of minutes, almost
all of it Figure 1.

This module is the programmatic face of EXPERIMENTS.md: if you change a
calibration constant, re-run this to see exactly which claims moved.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .bench.hplbench import figure1
from .bench.microbench import (
    barrier_benchmark,
    broadcast_benchmark,
    reduce_benchmark,
)
from .runtime.config import GASNET_IB_DISSEMINATION, UHCAF_1LEVEL, UHCAF_2LEVEL

__all__ = ["Claim", "run_report", "render_report"]


@dataclass
class Claim:
    """One paper claim with its measured counterpart."""

    experiment: str
    description: str
    paper: str
    measured: str
    band: Tuple[float, float]
    value: float

    @property
    def ok(self) -> bool:
        lo, hi = self.band
        return lo <= self.value <= hi


def _barrier_claims(node_sweep) -> List[Claim]:
    ratios = {}
    tdlb_vs_verbs = None
    for nodes in node_sweep:
        images = nodes * 8
        tdlb = barrier_benchmark(images, 8, UHCAF_2LEVEL).seconds_per_op
        flat = barrier_benchmark(images, 8, UHCAF_1LEVEL).seconds_per_op
        ratios[nodes] = flat / tdlb
        verbs = barrier_benchmark(
            images, 8, GASNET_IB_DISSEMINATION).seconds_per_op
        tdlb_vs_verbs = tdlb / verbs
    peak = max(ratios.values())
    flat_parity_a = barrier_benchmark(8, 1, UHCAF_2LEVEL).seconds_per_op
    flat_parity_b = barrier_benchmark(8, 1, UHCAF_1LEVEL).seconds_per_op
    parity = flat_parity_a / flat_parity_b
    return [
        Claim("E1", "TDLB vs dissemination, flat hierarchy",
              "parity", f"{parity:.3f}x", (0.99, 1.01), parity),
        Claim("E2", "TDLB speedup over basic dissemination (peak)",
              "up to 26x", f"{peak:.1f}x", (20.0, 32.0), peak),
        Claim("E2", "TDLB vs raw-IB dissemination (largest config)",
              "marginally more expensive", f"{tdlb_vs_verbs:.2f}x",
              (0.8, 2.0), tdlb_vs_verbs),
    ]


def _reduce_claims(node_sweep, quick: bool) -> List[Claim]:
    peak = 0.0
    for nodes in node_sweep:
        images = nodes * 8
        two = reduce_benchmark(images, 8, UHCAF_2LEVEL).seconds_per_op
        flat = reduce_benchmark(images, 8, UHCAF_1LEVEL).seconds_per_op
        peak = max(peak, flat / two)
    # the factor grows with scale; quick sweeps stop at 8 nodes where
    # ~30x is the expected value (74x needs the full 44-node cluster)
    band = (20.0, 100.0) if quick else (50.0, 100.0)
    return [
        Claim("E3", "two-level reduction over the default (peak)",
              "up to 74x", f"{peak:.1f}x", band, peak),
    ]


def _broadcast_claims(node_sweep, quick: bool) -> List[Claim]:
    last = None
    for nodes in node_sweep:
        images = nodes * 8
        two = broadcast_benchmark(images, 8, UHCAF_2LEVEL).seconds_per_op
        flat = broadcast_benchmark(images, 8, UHCAF_1LEVEL).seconds_per_op
        last = flat / two
    # the factor *shrinks* with node count; small quick sweeps sit higher
    band = (1.5, 8.0) if quick else (1.5, 6.0)
    return [
        Claim("E4", "two-level broadcast over flat (largest config)",
              "up to 3x", f"{last:.1f}x", band, last),
    ]


def _hpl_claims(quick: bool) -> List[Claim]:
    table = figure1(quick=quick)
    big = table.labels[-1]
    two = table.get("UHCAF 2level").values[big]
    one = table.get("UHCAF 1level").values[big]
    gfortran = table.get("CAF2.0 GFortran backend").values[big]
    improvement = two / one
    claims = [
        Claim("E5", f"HPL 2level/1level improvement at {big}",
              "up to 32%", f"{(improvement - 1) * 100:.0f}%",
              (1.02, 1.7) if quick else (1.2, 1.45), improvement),
    ]
    if not quick:
        claims.insert(0, Claim(
            "E5", "HPL UHCAF 2level at 256(32)",
            "95 GFLOP/s", f"{two:.1f} GFLOP/s", (80.0, 110.0), two))
        claims.append(Claim(
            "E5", "HPL CAF2.0 GFortran at 256(32)",
            "29.48 GFLOP/s", f"{gfortran:.1f} GFLOP/s", (20.0, 40.0),
            gfortran))
    return claims


def run_report(quick: bool = False) -> List[Claim]:
    """Measure every headline claim; returns the claim list."""
    nodes = [2, 8] if quick else [2, 4, 8, 16, 32, 44]
    claims = _barrier_claims(nodes)
    claims += _reduce_claims(nodes if quick else [2, 16, 44], quick)
    claims += _broadcast_claims(nodes if quick else [16, 44], quick)
    claims += _hpl_claims(quick)
    return claims


def render_report(claims: List[Claim], title: Optional[str] = None) -> str:
    """Markdown table of paper-vs-measured with verdicts."""
    out = io.StringIO()
    out.write(title or "# Reproduction report: paper vs measured\n")
    out.write("\n")
    out.write("| exp | claim | paper | measured | verdict |\n")
    out.write("|---|---|---|---|---|\n")
    for c in claims:
        verdict = "✅" if c.ok else "❌ OUT OF BAND"
        out.write(f"| {c.experiment} | {c.description} | {c.paper} "
                  f"| {c.measured} | {verdict} |\n")
    failed = [c for c in claims if not c.ok]
    out.write("\n")
    if failed:
        out.write(f"**{len(failed)} claim(s) out of band** — "
                  "see docs/calibration.md for the sensitivity map.\n")
    else:
        out.write("All claims within their acceptance bands.\n")
    return out.getvalue()
