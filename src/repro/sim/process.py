"""Generator-based simulated processes.

A simulated process is a Python generator that ``yield``\\ s *command*
objects; the :class:`Process` driver executes each command against the
engine and resumes the generator with the command's result.  This gives
the CAF runtime straight-line SPMD code::

    def image_main(ctx):
        yield Timeout(1e-6)            # local work
        yield Wait(some_event)         # block on an RMA completion
        value = yield WaitFor(cell, lambda v: v >= 3)

Commands
--------
``Timeout(delay)``
    Advance this process by ``delay`` simulated seconds.
``Wait(event)``
    Block until a :class:`~repro.sim.primitives.SimEvent` fires; resumes
    with the event's value.
``WaitFor(cell, pred)``
    Block until ``pred(cell.value)``; resumes with the satisfying value.
    Models a shared-memory spin-wait at zero simulated cost.
``Acquire(resource)``
    Block until the resource is granted; the process must later call
    ``resource.release()`` itself.
``Hold(resource, duration)``
    Acquire, hold for ``duration``, release; resumes at release time.

Sub-generators compose with plain ``yield from``, so runtime layers nest
without any driver support.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from .engine import Engine
from .errors import ProcessFailure
from .primitives import Cell, Resource, SimEvent

__all__ = [
    "Timeout", "Wait", "WaitFor", "Acquire", "Hold", "Process", "ProcGen",
    "BlockedInfo",
]

#: Type alias for the generator signature simulated processes must have.
ProcGen = Generator[Any, Any, Any]


@dataclass(frozen=True, slots=True)
class Timeout:
    """Advance the issuing process by ``delay`` simulated seconds.

    ``delay`` is validated here, at construction (finite and
    non-negative), so a Timeout *instance* is always schedulable — the
    engine's inlined resume lane relies on that to skip re-validating the
    dominant command on every event.  ``slots=True`` on all command
    dataclasses removes the per-instance ``__dict__``: commands are
    created once per yielded cost on the hot path, and their attribute
    reads sit inside the engine's inner loop.
    """

    delay: float

    def __post_init__(self) -> None:
        # Chained comparison rejects negatives, inf and (any comparison
        # with NaN being false) nan in one expression.
        if not 0.0 <= self.delay < math.inf:
            raise ValueError(
                f"Timeout delay must be finite and >= 0, got {self.delay}"
            )


@dataclass(frozen=True, slots=True)
class Wait:
    """Block until ``event`` triggers; the process resumes with its value."""

    event: SimEvent


@dataclass(frozen=True, slots=True)
class WaitFor:
    """Block until ``pred(cell.value)`` is true (wake-on-write, zero cost)."""

    cell: Cell
    pred: Callable[[Any], bool]


@dataclass(frozen=True, slots=True)
class Acquire:
    """Block until ``resource`` is granted; caller must release it."""

    resource: Resource


@dataclass(frozen=True, slots=True)
class Hold:
    """Acquire ``resource``, hold it ``duration`` seconds, then release."""

    resource: Resource
    duration: float


@dataclass(frozen=True)
class BlockedInfo:
    """Structured record of one blocked process, attached to
    :class:`~repro.sim.errors.DeadlockError` for wait-for analysis.

    ``actor`` is the identity the spawner gave the process (0-based global
    proc id for SPMD images, ``None`` for anonymous processes); ``kind``
    is one of ``cell``/``event``/``resource``; ``target`` is the primitive
    being waited on (a :class:`Cell`, :class:`SimEvent`, or
    :class:`Resource`).
    """

    process: str
    actor: Optional[Any]
    kind: str
    target: Any


class Process:
    """Drives one generator to completion against an engine.

    The ``done`` event triggers with the generator's return value when the
    process finishes.  Exceptions raised inside the generator are wrapped
    in :class:`~repro.sim.errors.ProcessFailure` and re-raised out of the
    engine's run loop — a crashed image never fails silently.

    ``actor`` names the simulated agent this process embodies (the SPMD
    launcher passes the image's global proc id); the concurrency monitor
    uses it to attribute writes and waits to a vector clock, and deadlock
    reports use it to name images.  Anonymous processes pass ``None``.
    """

    __slots__ = ("_engine", "_gen", "_send", "name", "actor", "done",
                 "_blocked_token", "_finished", "_timeout_label")

    def __init__(self, engine: Engine, gen: ProcGen, name: str = "proc",
                 actor: Optional[Any] = None):
        self._engine = engine
        self._gen = gen
        self._send = gen.send  # bound once; resumed on every step
        self.name = name
        self.actor = actor
        self.done = SimEvent(engine, name=f"{name}.done")
        self._blocked_token: Optional[int] = None
        self._finished = False
        # A process has at most one outstanding no-value resume (it drives
        # a single generator), so the process object itself is the
        # callback for its spawn step and every Timeout it ever yields
        # (``__call__`` below), and one preformatted label serves them
        # all.  Scheduling ``self`` instead of a closure is what lets the
        # engine's fast loop recognize the record by class and inline the
        # resume without any per-event indirection.
        self._timeout_label = f"{name}.timeout"
        # Start at the current instant so spawn order = first-step order.
        engine.call_now(self, label=f"{name}.start")

    def __call__(self) -> None:
        """Resume the generator with no value (spawn step or Timeout
        expiry).  ``Engine._run_fast`` inlines this exact body when it
        recognizes a scheduled :class:`Process`; this method is the same
        logic for every other dispatch path (``step()``, trace lane,
        tiebreak/until runs) — the two must stay behaviourally identical.
        """
        if self._finished:
            return  # fail-stopped (or completed): stale wake-up
        monitor = self._engine.monitor
        if monitor is not None:
            self._step_monitored(None, monitor)
            return
        try:
            command = self._send(None)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - wrap any model bug
            self._finished = True
            raise ProcessFailure(self.name, exc) from exc
        if type(command) is Timeout:
            self._engine.schedule(command.delay, self, label=self._timeout_label)
            return
        handler = _DISPATCH.get(type(command))
        if handler is None:
            self._dispatch_other(command)
        else:
            handler(self, command)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        return self.done.value

    def kill(self, result: Any = None) -> None:
        """Fail-stop this process at the current instant (idempotent).

        The generator is closed mid-flight (its ``finally`` blocks run),
        any deadlock-bookkeeping entry is retired, and ``done`` triggers
        with ``result`` so joiners are not left waiting.  Wake-ups already
        in flight (a pending Timeout, an event the process subscribed to)
        become no-ops via the ``_finished`` guards — a dead image never
        executes another step.  Used by fault injection
        (:mod:`repro.faults`); safe to call on a completed process.
        """
        if self._finished:
            return
        self._finished = True
        if self._blocked_token is not None:
            self._engine.note_unblocked(self._blocked_token)
            self._blocked_token = None
        self._gen.close()
        if not self.done.triggered:
            self.done.trigger(result)

    # ------------------------------------------------------------------
    def _mark_blocked(self, verb: str, noun: str, kind: str, target: Any) -> None:
        """Register this process as blocked.  Both the human-readable
        description (``"imageN: waiting on cell 'x'"``) and the structured
        :class:`BlockedInfo` record are deferred behind closures — they are
        only materialized if the run actually deadlocks."""
        self._blocked_token = self._engine.note_blocked(
            lambda: f"{self.name}: {verb} {noun} {target.name!r}",
            info=lambda: BlockedInfo(self.name, self.actor, kind, target),
        )

    def _resume(self, value: Any) -> None:
        if self._blocked_token is not None:
            self._engine.note_unblocked(self._blocked_token)
            self._blocked_token = None
        self._step(value)

    def _step(self, send_value: Any) -> None:
        if self._finished:
            return  # fail-stopped (or completed): stale wake-up
        monitor = self._engine.monitor
        if monitor is not None:
            self._step_monitored(send_value, monitor)
            return
        try:
            command = self._send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - wrap and surface any model bug
            self._finished = True
            raise ProcessFailure(self.name, exc) from exc
        # Timeout is the dominant command (every charged cost is one), so
        # it is tested inline before the dispatch-table lookup.
        if type(command) is Timeout:
            self._engine.schedule(
                command.delay, self, label=self._timeout_label
            )
            return
        handler = _DISPATCH.get(type(command))
        if handler is None:
            self._dispatch_other(command)
        else:
            handler(self, command)

    def _step_monitored(self, send_value: Any, monitor: Any) -> None:
        """Slow-path step: bracket the generator resume with the
        concurrency monitor's begin/end hooks (see ``repro.verify``)."""
        if self._finished:
            return  # fail-stopped (or completed): stale wake-up
        monitor.begin_step(self.actor)
        try:
            command = self._send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - wrap and surface any model bug
            self._finished = True
            raise ProcessFailure(self.name, exc) from exc
        finally:
            monitor.end_step()
        handler = _DISPATCH.get(type(command))
        if handler is None:
            self._dispatch_other(command)
        else:
            handler(self, command)

    def _dispatch(self, command: Any) -> None:
        """Execute one yielded command (type-keyed; kept as the single
        entry point for tests and subclasses)."""
        handler = _DISPATCH.get(type(command))
        if handler is None:
            self._dispatch_other(command)
        else:
            handler(self, command)

    # -- per-command handlers (type-keyed via _DISPATCH) ----------------
    def _do_timeout(self, command: Timeout) -> None:
        self._engine.schedule(
            command.delay, self, label=self._timeout_label
        )

    def _do_wait(self, command: Wait) -> None:
        ev = command.event
        if not ev.triggered:
            self._mark_blocked("waiting on", "event", "event", ev)
        if self._engine.monitor is None:
            ev.on_trigger(self._resume)
        else:
            ev.on_trigger(self._observing_resume("event", ev))

    def _do_wait_for(self, command: WaitFor) -> None:
        cell, pred = command.cell, command.pred
        if not pred(cell.value):
            self._mark_blocked("waiting on", "cell", "cell", cell)
        if self._engine.monitor is None:
            cell.wait_until(pred, self._resume)
        else:
            cell.wait_until(pred, self._observing_resume("cell", cell))

    def _do_acquire(self, command: Acquire) -> None:
        res = command.resource
        grant = res.acquire()
        if not grant.triggered:
            self._mark_blocked("acquiring", "resource", "resource", res)
        grant.on_trigger(self._resume)

    def _do_hold(self, command: Hold) -> None:
        res, dur = command.resource, command.duration
        done = res.occupy(dur)
        if not done.triggered:
            self._mark_blocked("holding", "resource", "resource", res)
        done.on_trigger(self._resume)

    def _dispatch_other(self, command: Any) -> None:
        """Fallback for command *subclasses* (exact-type dispatch missed)
        and the non-command error path."""
        for cls, handler in _DISPATCH.items():
            if isinstance(command, cls):
                handler(self, command)
                return
        raise ProcessFailure(
            self.name,
            TypeError(f"process yielded non-command object {command!r}"),
        )

    def _observing_resume(self, kind: str, target: Any) -> Callable[[Any], None]:
        """A resume callback that first tells the monitor (if any) that this
        actor observed the wait target — the waiter's clock absorbs the
        writes that satisfied the wait, which is exactly the
        synchronizes-with edge a spin-wait provides."""
        monitor = self._engine.monitor
        if monitor is None:
            return self._resume

        def _resume_observed(value: Any) -> None:
            if kind == "cell":
                monitor.on_cell_observed(target, self.actor)
            else:
                monitor.on_event_observed(target, self.actor)
            self._resume(value)

        return _resume_observed


#: Exact-type command dispatch: one dict hit replaces the historical
#: five-branch ``isinstance`` ladder on the per-event hot path.  Command
#: subclasses still work via :meth:`Process._dispatch_other`.
_DISPATCH: dict = {
    Timeout: Process._do_timeout,
    Wait: Process._do_wait,
    WaitFor: Process._do_wait_for,
    Acquire: Process._do_acquire,
    Hold: Process._do_hold,
}

# Let the engine's fast run loop recognize scheduled Process records and
# inline the no-value resume (see Engine._run_fast).
from . import engine as _engine_module  # noqa: E402 - registration hook

_engine_module._register_process_types(Process, Timeout)
