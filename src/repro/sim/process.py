"""Generator-based simulated processes.

A simulated process is a Python generator that ``yield``\\ s *command*
objects; the :class:`Process` driver executes each command against the
engine and resumes the generator with the command's result.  This gives
the CAF runtime straight-line SPMD code::

    def image_main(ctx):
        yield Timeout(1e-6)            # local work
        yield Wait(some_event)         # block on an RMA completion
        value = yield WaitFor(cell, lambda v: v >= 3)

Commands
--------
``Timeout(delay)``
    Advance this process by ``delay`` simulated seconds.
``Wait(event)``
    Block until a :class:`~repro.sim.primitives.SimEvent` fires; resumes
    with the event's value.
``WaitFor(cell, pred)``
    Block until ``pred(cell.value)``; resumes with the satisfying value.
    Models a shared-memory spin-wait at zero simulated cost.
``Acquire(resource)``
    Block until the resource is granted; the process must later call
    ``resource.release()`` itself.
``Hold(resource, duration)``
    Acquire, hold for ``duration``, release; resumes at release time.

Sub-generators compose with plain ``yield from``, so runtime layers nest
without any driver support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from .engine import Engine
from .errors import ProcessFailure
from .primitives import Cell, Resource, SimEvent

__all__ = [
    "Timeout", "Wait", "WaitFor", "Acquire", "Hold", "Process", "ProcGen",
    "BlockedInfo",
]

#: Type alias for the generator signature simulated processes must have.
ProcGen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Timeout:
    """Advance the issuing process by ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class Wait:
    """Block until ``event`` triggers; the process resumes with its value."""

    event: SimEvent


@dataclass(frozen=True)
class WaitFor:
    """Block until ``pred(cell.value)`` is true (wake-on-write, zero cost)."""

    cell: Cell
    pred: Callable[[Any], bool]


@dataclass(frozen=True)
class Acquire:
    """Block until ``resource`` is granted; caller must release it."""

    resource: Resource


@dataclass(frozen=True)
class Hold:
    """Acquire ``resource``, hold it ``duration`` seconds, then release."""

    resource: Resource
    duration: float


@dataclass(frozen=True)
class BlockedInfo:
    """Structured record of one blocked process, attached to
    :class:`~repro.sim.errors.DeadlockError` for wait-for analysis.

    ``actor`` is the identity the spawner gave the process (0-based global
    proc id for SPMD images, ``None`` for anonymous processes); ``kind``
    is one of ``cell``/``event``/``resource``; ``target`` is the primitive
    being waited on (a :class:`Cell`, :class:`SimEvent`, or
    :class:`Resource`).
    """

    process: str
    actor: Optional[Any]
    kind: str
    target: Any


class Process:
    """Drives one generator to completion against an engine.

    The ``done`` event triggers with the generator's return value when the
    process finishes.  Exceptions raised inside the generator are wrapped
    in :class:`~repro.sim.errors.ProcessFailure` and re-raised out of the
    engine's run loop — a crashed image never fails silently.

    ``actor`` names the simulated agent this process embodies (the SPMD
    launcher passes the image's global proc id); the concurrency monitor
    uses it to attribute writes and waits to a vector clock, and deadlock
    reports use it to name images.  Anonymous processes pass ``None``.
    """

    def __init__(self, engine: Engine, gen: ProcGen, name: str = "proc",
                 actor: Optional[Any] = None):
        self._engine = engine
        self._gen = gen
        self.name = name
        self.actor = actor
        self.done = SimEvent(engine, name=f"{name}.done")
        self._blocked_token: Optional[int] = None
        self._finished = False
        # Start at the current instant so spawn order = first-step order.
        engine.call_now(lambda: self._step(None), label=f"{name}.start")

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        return self.done.value

    # ------------------------------------------------------------------
    def _mark_blocked(self, why: str, kind: str = "", target: Any = None) -> None:
        info = None
        if kind:
            info = BlockedInfo(self.name, self.actor, kind, target)
        self._blocked_token = self._engine.note_blocked(
            f"{self.name}: {why}", info=info
        )

    def _resume(self, value: Any) -> None:
        if self._blocked_token is not None:
            self._engine.note_unblocked(self._blocked_token)
            self._blocked_token = None
        self._step(value)

    def _step(self, send_value: Any) -> None:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.begin_step(self.actor)
        try:
            command = self._gen.send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - wrap and surface any model bug
            self._finished = True
            raise ProcessFailure(self.name, exc) from exc
        finally:
            if monitor is not None:
                monitor.end_step()
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._engine.schedule(
                command.delay, lambda: self._step(None), label=f"{self.name}.timeout"
            )
        elif isinstance(command, Wait):
            ev = command.event
            if not ev.triggered:
                self._mark_blocked(f"waiting on event {ev.name!r}", "event", ev)
            ev.on_trigger(self._observing_resume("event", ev))
        elif isinstance(command, WaitFor):
            cell, pred = command.cell, command.pred
            if not pred(cell.value):
                self._mark_blocked(f"waiting on cell {cell.name!r}", "cell", cell)
            cell.wait_until(pred, self._observing_resume("cell", cell))
        elif isinstance(command, Acquire):
            res = command.resource
            grant = res.acquire()
            if not grant.triggered:
                self._mark_blocked(f"acquiring resource {res.name!r}",
                                   "resource", res)
            grant.on_trigger(self._resume)
        elif isinstance(command, Hold):
            res, dur = command.resource, command.duration
            done = res.occupy(dur)
            if not done.triggered:
                self._mark_blocked(f"holding resource {res.name!r}",
                                   "resource", res)
            done.on_trigger(self._resume)
        else:
            raise ProcessFailure(
                self.name,
                TypeError(f"process yielded non-command object {command!r}"),
            )

    def _observing_resume(self, kind: str, target: Any) -> Callable[[Any], None]:
        """A resume callback that first tells the monitor (if any) that this
        actor observed the wait target — the waiter's clock absorbs the
        writes that satisfied the wait, which is exactly the
        synchronizes-with edge a spin-wait provides."""
        monitor = self._engine.monitor
        if monitor is None:
            return self._resume

        def _resume_observed(value: Any) -> None:
            if kind == "cell":
                monitor.on_cell_observed(target, self.actor)
            else:
                monitor.on_event_observed(target, self.actor)
            self._resume(value)

        return _resume_observed
