"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate everything else stands on: a
reproducible event-heap engine (:mod:`~repro.sim.engine`), wait/wake
primitives (:mod:`~repro.sim.primitives`), and generator-based simulated
processes (:mod:`~repro.sim.process`).
"""

from .engine import Engine
from .errors import (
    DeadlockError,
    ProcessFailure,
    SimulationError,
    SimulationLimitExceeded,
)
from .primitives import Cell, Resource, SimEvent
from .process import (
    Acquire,
    BlockedInfo,
    Hold,
    ProcGen,
    Process,
    Timeout,
    Wait,
    WaitFor,
)

__all__ = [
    "Engine",
    "BlockedInfo",
    "SimEvent",
    "Cell",
    "Resource",
    "Process",
    "ProcGen",
    "Timeout",
    "Wait",
    "WaitFor",
    "Acquire",
    "Hold",
    "SimulationError",
    "DeadlockError",
    "ProcessFailure",
    "SimulationLimitExceeded",
]
