"""Error types raised by the discrete-event simulation kernel.

Keeping simulation failures in their own exception hierarchy lets callers
distinguish "the simulated program is wrong" (e.g. :class:`DeadlockError`,
which usually means a barrier rendezvous never completed) from ordinary
Python bugs in the model code.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "DeadlockError",
    "ProcessFailure",
    "SimulationLimitExceeded",
]


class SimulationError(RuntimeError):
    """Base class for all simulation-kernel errors."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    In an SPMD simulation this almost always indicates a synchronization
    bug in the simulated program: an image waiting on a flag that nobody
    will ever set, or a barrier entered by only a subset of a team.
    The ``blocked`` attribute lists human-readable descriptions of the
    stuck processes to make the failure debuggable; ``details`` carries
    structured :class:`repro.sim.process.BlockedInfo` records (one per
    waiter that supplied one) from which :func:`repro.verify.explain_deadlock`
    reconstructs the wait-for graph.
    """

    def __init__(self, blocked: list[str], details: list | None = None):
        self.blocked = list(blocked)
        self.details = list(details) if details is not None else []
        preview = ", ".join(self.blocked[:8])
        if len(self.blocked) > 8:
            preview += f", ... ({len(self.blocked) - 8} more)"
        super().__init__(
            f"deadlock: event queue empty with {len(self.blocked)} "
            f"blocked process(es): {preview}"
        )


class ProcessFailure(SimulationError):
    """A simulated process raised an exception.

    The original exception is chained as ``__cause__`` and also stored on
    the ``original`` attribute, with the failing process name on ``process``.
    """

    def __init__(self, process: str, original: BaseException):
        self.process = process
        self.original = original
        super().__init__(f"process {process!r} failed: {original!r}")
        self.__cause__ = original


class SimulationLimitExceeded(SimulationError):
    """The engine hit a configured safety limit (max events or max time).

    Safety limits exist so a livelocked model fails loudly instead of
    spinning forever; see :class:`repro.sim.engine.Engine`.
    """
