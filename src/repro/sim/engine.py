"""Deterministic discrete-event simulation engine.

The engine is the clock and scheduler underneath everything in
:mod:`repro`: the machine model charges communication costs by scheduling
callbacks, and the CAF runtime's images are generator-based processes
(:mod:`repro.sim.process`) resumed by this engine.

Determinism is a hard requirement — a reproduction is useless if two runs
of the same benchmark disagree — so events are ordered by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing insertion counter. Two events at the same instant always fire
in the order they were scheduled.

Schedule fuzzing (``repro.verify``) relaxes exactly that last rule: with
a ``tiebreak_seed`` the engine permutes events that share a
``(time, priority)`` slot — still fully deterministically per seed.
Events at the same instant are causally concurrent (anything that *must*
happen later is scheduled later, or at a later time), so every such
permutation is a legal interleaving of the simulated program; a program
whose *semantic* result changes under a different seed has a real
ordering bug.  With no seed (the default) the insertion-order policy is
byte-identical to the historical behaviour.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Any, Callable, Optional

from .errors import DeadlockError, SimulationLimitExceeded

__all__ = ["Engine"]

#: Default ceiling on processed events; generous enough for the largest
#: benchmark in the suite (HPL at 256 images) while still catching livelock.
DEFAULT_MAX_EVENTS = 500_000_000


class Engine:
    """Event-heap simulation kernel with a float-seconds clock.

    Parameters
    ----------
    max_events:
        Safety ceiling on the number of processed events.  Exceeding it
        raises :class:`~repro.sim.errors.SimulationLimitExceeded`.
    trace:
        Optional callable invoked as ``trace(time, label)`` for every
        event that carries a label; useful in tests that assert ordering.
    tiebreak_seed:
        When given, events sharing a ``(time, priority)`` slot fire in a
        seed-determined pseudo-random order instead of insertion order.
        Used by :mod:`repro.verify` to fuzz legal interleavings; leave
        ``None`` (the default) for the historical insertion-order policy.
    """

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        trace: Optional[Callable[[float, str], None]] = None,
        tiebreak_seed: Optional[int] = None,
    ):
        self._heap: list[tuple[float, int, float, int, Callable[[], None], str]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._max_events = int(max_events)
        self._events_processed = 0
        self._trace = trace
        self._tiebreak_seed = tiebreak_seed
        self._tiebreak_rng = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        #: optional concurrency monitor (duck-typed; see
        #: :class:`repro.verify.HBMonitor`).  The sim primitives consult it
        #: on every write/wait when set; ``None`` costs one attribute read.
        self.monitor: Optional[Any] = None
        # Registry of blocked-process descriptions for deadlock reporting.
        # Keyed by an opaque token so waiters can deregister in O(1).
        self._blocked: dict[int, str] = {}
        self._blocked_info: dict[int, Any] = {}
        self._blocked_seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events the run loop has dispatched so far."""
        return self._events_processed

    @property
    def tiebreak_seed(self) -> Optional[int]:
        """The schedule-fuzzing seed, or ``None`` for insertion order."""
        return self._tiebreak_seed

    def schedule(
        self,
        delay: float,
        fn: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Run ``fn`` after ``delay`` simulated seconds.

        ``delay`` must be finite and non-negative: simulated causality only
        flows forward.  ``priority`` breaks ties at equal timestamps (lower
        fires first), and insertion order breaks remaining ties — unless a
        ``tiebreak_seed`` permutes same-slot events (see the module doc).
        """
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        jitter = 0.0 if self._tiebreak_rng is None else self._tiebreak_rng.random()
        heapq.heappush(
            self._heap,
            (self._now + delay, priority, jitter, next(self._seq), fn, label),
        )

    def call_now(self, fn: Callable[[], None], label: str = "") -> None:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        self.schedule(0.0, fn, label=label)

    # ------------------------------------------------------------------
    # Blocked-process bookkeeping (for deadlock diagnostics)
    # ------------------------------------------------------------------
    def note_blocked(self, description: str, info: Any = None) -> int:
        """Record that a process is blocked; returns a token for :meth:`note_unblocked`.

        ``info`` may carry a structured record (see
        :class:`repro.sim.process.BlockedInfo`) that deadlock reports use
        to reconstruct the wait-for graph.
        """
        token = next(self._blocked_seq)
        self._blocked[token] = description
        if info is not None:
            self._blocked_info[token] = info
        return token

    def note_unblocked(self, token: int) -> None:
        """Forget a blocked-process record created by :meth:`note_blocked`."""
        self._blocked.pop(token, None)
        self._blocked_info.pop(token, None)

    @property
    def blocked_descriptions(self) -> list[str]:
        """Descriptions of currently blocked processes (ordered by block time)."""
        return [self._blocked[k] for k in sorted(self._blocked)]

    @property
    def blocked_details(self) -> list[Any]:
        """Structured records of currently blocked processes, where the
        waiter supplied one (ordered by block time)."""
        return [self._blocked_info[k] for k in sorted(self._blocked_info)]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event. Returns False if the heap is empty."""
        if not self._heap:
            return False
        time, _prio, _jitter, _seq, fn, label = heapq.heappop(self._heap)
        # The clock never moves backwards; equal times are fine.
        self._now = time
        self._events_processed += 1
        if self._events_processed > self._max_events:
            raise SimulationLimitExceeded(
                f"exceeded max_events={self._max_events} at t={self._now:.9f}s"
            )
        if self._trace is not None and label:
            self._trace(time, label)
        fn()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  If the queue drains while
        processes are still registered as blocked, raises
        :class:`~repro.sim.errors.DeadlockError` — silence is never
        mistaken for success.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    return self._now
                self.step()
            if self._blocked:
                raise DeadlockError(self.blocked_descriptions,
                                    details=self.blocked_details)
            return self._now
        finally:
            self._running = False
