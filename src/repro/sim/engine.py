"""Deterministic discrete-event simulation engine.

The engine is the clock and scheduler underneath everything in
:mod:`repro`: the machine model charges communication costs by scheduling
callbacks, and the CAF runtime's images are generator-based processes
(:mod:`repro.sim.process`) resumed by this engine.

Determinism is a hard requirement — a reproduction is useless if two runs
of the same benchmark disagree — so events are ordered by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing insertion counter. Two events at the same instant always fire
in the order they were scheduled.

Schedule fuzzing (``repro.verify``) relaxes exactly that last rule: with
a ``tiebreak_seed`` the engine permutes events that share a
``(time, priority)`` slot — still fully deterministically per seed.
Events at the same instant are causally concurrent (anything that *must*
happen later is scheduled later, or at a later time), so every such
permutation is a legal interleaving of the simulated program; a program
whose *semantic* result changes under a different seed has a real
ordering bug.  With no seed (the default) the insertion-order policy is
byte-identical to the historical behaviour.

Event storage (batched execution)
---------------------------------
Events live in per-instant *buckets*: ``_buckets`` maps a timestamp to
the records due at that instant, and ``_times`` is a min-heap over the
timestamps only.  Simulated workloads are bursty — a barrier round puts
whole waves of images at the same instant — so the run loop pays one
``heappop`` per *instant* instead of one per *event* and drains each
bucket with O(1) list pops.  Scheduling into an instant that already has
a bucket is a list append (amortized O(1): sequence numbers only grow,
so new records usually belong at the tail) instead of an O(log n)
``heappush``.  The heap may hold a stale timestamp after its bucket
drains through ``step()``; ``_peek_time`` discards those lazily.

A bucket holding a *single* record is stored as the bare record tuple
rather than a one-element list (default path only; the jittered path
always uses lists).  Timer-trampoline workloads — self-rescheduling
callback chains with per-chain periods — hit a distinct instant per
event, and the bare-tuple form spares them a list allocation on every
insert plus an indirection on every drain, which is what keeps the
bucket design no slower than the flat tuple-heap kernel it replaced on
that shape.  Every consumer distinguishes the two forms with one
``__class__ is list`` check; the record itself is a tuple, so the forms
cannot be confused.

One deliberately documented fast-path refinement: while ``run()`` drains
the bucket at instant ``t``, an event scheduled *at* ``t`` lands in a
fresh bucket and fires after every event already pending at ``t`` —
which is exactly where its (maximal) sequence number would have placed
it, **unless** it carries a non-default priority.  Nothing in the tree
schedules with a priority from inside a same-instant callback; the
instrumented ``step()`` path keeps exact key order for such events.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from bisect import insort
from typing import Any, Callable, Optional, Union

from .errors import DeadlockError, ProcessFailure, SimulationLimitExceeded

__all__ = ["Engine"]

#: Upper bound used by ``schedule``'s combined delay check: a chained
#: ``0.0 <= delay < _INF`` rejects negatives, ``inf`` and (because any
#: comparison with NaN is false) ``nan`` in one expression.
_INF = math.inf

#: Default-path event records merge ``(priority, seq)`` into one integer
#: key — ``priority * _PRIORITY_STRIDE + seq`` — so a record is a lean
#: 3-tuple ``(key, fn, label)``.  The stride exceeds any reachable
#: sequence number (the event ceiling tops out around 5e8 ≪ 2**48), so
#: priority strictly dominates and insertion order breaks ties, for
#: negative priorities too.
_PRIORITY_STRIDE = 2 ** 48

#: Default ceiling on processed events; generous enough for the largest
#: benchmark in the suite (HPL at 256 images) while still catching livelock.
DEFAULT_MAX_EVENTS = 500_000_000

#: Filled in by :mod:`repro.sim.process` at import time so the fast run
#: loop can recognize a scheduled :class:`Process` record and inline its
#: no-value resume (the single hottest edge in the simulator) without a
#: circular import.  ``None`` until registration: the identity test in
#: ``_run_fast`` then never matches and every record takes the generic
#: ``fn()`` path, so a bare engine works without the process layer.
_PROCESS_CLASS: Any = None
_TIMEOUT_CLASS: Any = None


def _register_process_types(process_cls: type, timeout_cls: type) -> None:
    """Hook for :mod:`repro.sim.process`: enable the inlined resume lane."""
    global _PROCESS_CLASS, _TIMEOUT_CLASS
    _PROCESS_CLASS = process_cls
    _TIMEOUT_CLASS = timeout_cls


class Engine:
    """Bucketed event-queue simulation kernel with a float-seconds clock.

    Parameters
    ----------
    max_events:
        Safety ceiling on the number of processed events.  Exceeding it
        raises :class:`~repro.sim.errors.SimulationLimitExceeded`.
    trace:
        Optional callable invoked as ``trace(time, label)`` for every
        event that carries a label; useful in tests that assert ordering.
    tiebreak_seed:
        When given, events sharing a ``(time, priority)`` slot fire in a
        seed-determined pseudo-random order instead of insertion order.
        Used by :mod:`repro.verify` to fuzz legal interleavings; leave
        ``None`` (the default) for the historical insertion-order policy.

    .. note::
       ``schedule``, ``call_now`` and ``schedule_at`` are per-instance
       closures bound in ``__init__`` (one flavour per tiebreak mode)
       with the bucket dict, times heap and the sequence counter
       pre-captured: the hot loop calls them millions of times per
       simulated second, and the specialization drops the attribute
       lookups and bound-method re-creation from every call.  Their
       contract is documented on :meth:`_bind_schedule`.
    """

    __slots__ = (
        "_times", "_buckets", "_seq_counter", "_now", "_max_events",
        "_events_processed", "_trace", "_tiebreak_seed", "_tiebreak_rng",
        "monitor", "_blocked", "_blocked_info", "_blocked_seq", "_running",
        "_drain_hooks", "_deferred", "schedule", "call_now", "schedule_at",
    )

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        trace: Optional[Callable[[float, str], None]] = None,
        tiebreak_seed: Optional[int] = None,
    ):
        # Event records are lean 3-tuples ``(key, fn, label)`` on the
        # default path, with ``key = priority * _PRIORITY_STRIDE + seq``;
        # with a ``tiebreak_seed`` they are 5-tuples
        # ``(priority, jitter, seq, fn, label)``.  The two shapes never
        # mix within one engine (the seed is fixed at construction), and
        # with jitter pinned at 0.0 the 5-tuple orders exactly as the
        # 3-tuple's merged key — so the lean record cannot reorder
        # anything (tests/test_sim_engine_equivalence.py proves it).
        self._times: list[float] = []
        # timestamp -> list of records, or a bare record when only one
        # is pending at that instant (see the module doc)
        self._buckets: dict[float, Any] = {}
        # Deferred heap push (lean path only): when a *fresh* instant is
        # scheduled and this slot is free, its timestamp parks here
        # instead of being pushed; the fast loop consumes it with one
        # ``heappushpop`` — a self-rescheduling chain (the timer
        # trampoline) then pays a single combined sift per event, and
        # when the deferred time is the queue minimum the heap is not
        # touched at all.  ``-1.0`` means empty; every consumer outside
        # the fast loop flushes it first (see ``_peek_time``).
        self._deferred = -1.0
        # One shared C-level counter so the schedule closures *and* the
        # inlined resume lane in ``_run_fast`` mint sequence numbers from
        # the same stream.
        self._seq_counter = itertools.count(1)
        self._now = 0.0
        self._max_events = int(max_events)
        self._events_processed = 0
        self._trace = trace
        self._tiebreak_seed = tiebreak_seed
        self._tiebreak_rng = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        #: optional concurrency monitor (duck-typed; see
        #: :class:`repro.verify.HBMonitor`).  The sim primitives consult it
        #: on every write/wait when set; ``None`` costs one attribute read.
        self.monitor: Optional[Any] = None
        # Registry of blocked-process descriptions for deadlock reporting.
        # Keyed by an opaque token so waiters can deregister in O(1).
        self._blocked: dict[int, Union[str, Callable[[], str]]] = {}
        self._blocked_info: dict[int, Any] = {}
        self._blocked_seq = itertools.count()
        self._running = False
        # Last-chance hooks consulted when the queue drains with blocked
        # processes, before a DeadlockError is raised; see add_drain_hook.
        self._drain_hooks: list[Callable[[], bool]] = []
        self._bind_schedule()

    def _bind_schedule(self) -> None:
        """Bind the per-instance scheduling closures.

        ``schedule(delay, fn, priority=0, label="")`` runs ``fn`` after
        ``delay`` simulated seconds.  ``delay`` must be finite and
        non-negative: simulated causality only flows forward.
        ``priority`` breaks ties at equal timestamps (lower fires first),
        and insertion order breaks remaining ties — unless a
        ``tiebreak_seed`` permutes same-slot events (see the module doc).

        ``call_now(fn, label="")`` schedules ``fn`` at the current
        instant, after pending same-time events.

        ``schedule_at(time, fn, priority=0, label="")`` schedules ``fn``
        at the *absolute* timestamp ``time`` (``now <= time < inf``).
        Macro-events (:mod:`repro.collectives.macro`) replay analytic
        timelines through this: an absolute target avoids the float
        round-trip of ``now + (time - now)``, which is not exact.
        """
        times = self._times
        buckets = self._buckets
        bucket_get = buckets.get
        setdef = buckets.setdefault
        push = heapq.heappush
        rng = self._tiebreak_rng
        nextseq = self._seq_counter.__next__
        ins = insort
        stride = _PRIORITY_STRIDE

        if rng is None:
            # The insert sequence is spelled out in each closure rather
            # than shared through a helper: scheduling is the per-event
            # hot path, and the extra frame a shared ``_insert`` costs is
            # measurable on timer-trampoline workloads (self-rescheduling
            # chains where every event schedules exactly one more).
            # ``setdefault`` probes and stores in one hash traversal —
            # on the dominant miss path (a fresh instant) that is one
            # dict operation, not a ``get`` followed by a ``__setitem__``.

            def schedule(
                delay: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                # One chained comparison validates every legal delay (0.0
                # included: adding it is free) and rejects negatives, inf
                # and NaN — the historical `< 0 or not isfinite` pair cost
                # two checks and a C call on every event.
                if 0.0 <= delay < _INF:
                    time = self._now + delay
                else:
                    raise ValueError(
                        f"delay must be finite and >= 0, got {delay!r}"
                    )
                key = nextseq()
                if priority:
                    key += priority * stride
                rec = (key, fn, label)
                b = setdef(time, rec)
                if b is rec:
                    # lone record: stored bare, promoted on second insert;
                    # the heap push parks in the deferred slot when free
                    if self._deferred < 0.0:
                        self._deferred = time
                    else:
                        push(times, time)
                elif b.__class__ is not list:
                    buckets[time] = [b, rec] if b[0] < key else [rec, b]
                elif key > b[-1][0]:
                    b.append(rec)
                else:
                    ins(b, rec)

            def call_now(fn: Callable[[], None], label: str = "") -> None:
                key = nextseq()
                rec = (key, fn, label)
                time = self._now
                b = setdef(time, rec)
                if b is rec:
                    if self._deferred < 0.0:
                        self._deferred = time
                    else:
                        push(times, time)
                elif b.__class__ is not list:
                    buckets[time] = [b, rec] if b[0] < key else [rec, b]
                elif key > b[-1][0]:
                    b.append(rec)
                else:
                    ins(b, rec)

            def schedule_at(
                time: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                if not self._now <= time < _INF:
                    raise ValueError(
                        f"schedule_at time must be >= now and finite, "
                        f"got {time!r} (now={self._now!r})"
                    )
                key = nextseq()
                if priority:
                    key += priority * stride
                rec = (key, fn, label)
                b = setdef(time, rec)
                if b is rec:
                    if self._deferred < 0.0:
                        self._deferred = time
                    else:
                        push(times, time)
                elif b.__class__ is not list:
                    buckets[time] = [b, rec] if b[0] < key else [rec, b]
                elif key > b[-1][0]:
                    b.append(rec)
                else:
                    ins(b, rec)

        else:

            def _insert_jittered(time: float, rec: tuple) -> None:
                # Tuple comparison stops at ``seq`` (position 2, unique),
                # so ``fn`` is never compared.
                b = bucket_get(time)
                if b is None:
                    buckets[time] = [rec]
                    push(times, time)
                elif rec > b[-1]:
                    b.append(rec)
                else:
                    insort(b, rec)

            def schedule(
                delay: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                if 0.0 <= delay < _INF:
                    time = self._now + delay
                else:
                    raise ValueError(
                        f"delay must be finite and >= 0, got {delay!r}"
                    )
                seq = nextseq()
                _insert_jittered(time, (priority, rng.random(), seq, fn, label))

            def call_now(fn: Callable[[], None], label: str = "") -> None:
                seq = nextseq()
                _insert_jittered(self._now, (0, rng.random(), seq, fn, label))

            def schedule_at(
                time: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                if not self._now <= time < _INF:
                    raise ValueError(
                        f"schedule_at time must be >= now and finite, "
                        f"got {time!r} (now={self._now!r})"
                    )
                seq = nextseq()
                _insert_jittered(time, (priority, rng.random(), seq, fn, label))

        self.schedule = schedule
        self.call_now = call_now
        self.schedule_at = schedule_at

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events the run loop has dispatched so far."""
        return self._events_processed

    @property
    def tiebreak_seed(self) -> Optional[int]:
        """The schedule-fuzzing seed, or ``None`` for insertion order."""
        return self._tiebreak_seed

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-undispatched events.  Exact whenever
        the engine is between events (``step()``-driven runs, inside
        event callbacks of such runs, after ``run()`` returns); a
        callback running inside a fast-path drain does not see the
        undispatched remainder of the batch it is part of."""
        return sum(
            len(b) if b.__class__ is list else 1
            for b in self._buckets.values()
        )

    def _peek_time(self) -> Optional[float]:
        """Earliest pending timestamp, discarding stale heap entries
        (timestamps whose bucket has already drained).  Flushes the
        deferred-push slot first so the heap view is complete — every
        path that reads the heap outside ``_run_fast`` goes through
        here (``step``, ``peek``, the ``run(until=...)`` loop)."""
        times = self._times
        buckets = self._buckets
        d = self._deferred
        if d >= 0.0:
            self._deferred = -1.0
            heapq.heappush(times, d)
        while times:
            t = times[0]
            if t in buckets:
                return t
            heapq.heappop(times)
        return None

    def peek(self) -> Optional[tuple[float, str]]:
        """``(time, label)`` of the next event to fire, or ``None``.
        Instrumentation helper (``repro.perf``); not a hot-path API."""
        t = self._peek_time()
        if t is None:
            return None
        b = self._buckets[t]
        rec = b[0] if b.__class__ is list else b
        return t, rec[-1]

    # ------------------------------------------------------------------
    # Blocked-process bookkeeping (for deadlock diagnostics)
    # ------------------------------------------------------------------
    def note_blocked(
        self, description: Union[str, Callable[[], str]], info: Any = None
    ) -> int:
        """Record that a process is blocked; returns a token for :meth:`note_unblocked`.

        ``description`` may be a plain string or a zero-argument callable
        returning one — waiters on the hot path pass a callable so the
        human-readable text is only materialized if a deadlock report
        actually needs it.

        ``info`` may carry a structured record (see
        :class:`repro.sim.process.BlockedInfo`) that deadlock reports use
        to reconstruct the wait-for graph.
        """
        token = next(self._blocked_seq)
        self._blocked[token] = description
        if info is not None:
            self._blocked_info[token] = info
        return token

    def note_unblocked(self, token: int) -> None:
        """Forget a blocked-process record created by :meth:`note_blocked`."""
        self._blocked.pop(token, None)
        self._blocked_info.pop(token, None)

    @property
    def blocked_descriptions(self) -> list[str]:
        """Descriptions of currently blocked processes (ordered by block time)."""
        return [
            d() if callable(d) else d
            for d in (self._blocked[k] for k in sorted(self._blocked))
        ]

    @property
    def blocked_details(self) -> list[Any]:
        """Structured records of currently blocked processes, where the
        waiter supplied one (ordered by block time).  Records registered
        as zero-argument callables are materialized here — the cold path
        of deadlock reporting."""
        return [
            info() if callable(info) else info
            for info in (self._blocked_info[k] for k in sorted(self._blocked_info))
        ]

    # ------------------------------------------------------------------
    # Drain hooks (macro-event fallback)
    # ------------------------------------------------------------------
    def add_drain_hook(self, hook: Callable[[], bool]) -> None:
        """Register a last-chance hook run when the queue drains while
        processes are still blocked, *before* a DeadlockError is raised.

        A hook returns ``True`` if it made progress (woke a process,
        scheduled an event) — the run loop then resumes draining — and
        ``False`` when it has nothing left to do.  Hooks must converge:
        a hook that keeps returning ``True`` without changing state
        livelocks the run.  Macro-events use this to demote incomplete
        macro gathers to the fine-grained path so that a *genuine*
        deadlock (an image that never arrives) reproduces the exact
        fine-grained diagnostics.
        """
        self._drain_hooks.append(hook)

    def remove_drain_hook(self, hook: Callable[[], bool]) -> None:
        """Deregister a hook added by :meth:`add_drain_hook` (no-op if absent)."""
        try:
            self._drain_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event. Returns False if no event is pending.

        This is the instrumentation-friendly slow path: the
        :meth:`run` loop inlines the same logic with locals hoisted, so
        tools that need per-event control (``repro.perf`` stats, tests)
        can drive ``step()`` without the fast loop having to pay for the
        method call on every event.  Unlike the fast path, ``step()``
        keeps exact ``(time, key)`` order even for prioritized events
        scheduled at the instant being drained.
        """
        t = self._peek_time()
        if t is None:
            return False
        buckets = self._buckets
        bucket = buckets[t]
        if bucket.__class__ is not list:  # bare singleton record
            record = bucket
            del buckets[t]
            heapq.heappop(self._times)  # _peek_time verified the top is t
        else:
            record = bucket[0]
            if len(bucket) == 1:
                del buckets[t]
                heapq.heappop(self._times)
            else:
                del bucket[0]
        # The clock never moves backwards; equal times are fine.
        self._now = t
        self._events_processed += 1
        if self._events_processed > self._max_events:
            raise SimulationLimitExceeded(
                f"exceeded max_events={self._max_events} at t={self._now:.9f}s"
            )
        label = record[-1]
        if self._trace is not None and label:
            self._trace(t, label)
        record[-2]()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  If the queue drains while
        processes are still registered as blocked, drain hooks get one
        last chance to make progress (see :meth:`add_drain_hook`); if
        none does, raises :class:`~repro.sim.errors.DeadlockError` —
        silence is never mistaken for success.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        try:
            fast = until is None and self._tiebreak_rng is None
            while True:
                if fast:
                    self._run_fast()
                else:
                    step = self.step
                    while True:
                        t = self._peek_time()
                        if t is None:
                            break
                        if until is not None and t > until:
                            self._now = until
                            return until
                        step()
                if self._blocked and self._drain_hooks:
                    progressed = False
                    for hook in list(self._drain_hooks):
                        if hook():
                            progressed = True
                    if progressed:
                        continue
                break
            if self._blocked:
                raise DeadlockError(self.blocked_descriptions,
                                    details=self.blocked_details)
            return self._now
        finally:
            self._running = False

    def _run_fast(self) -> None:
        """Drain the queue on the default path (no ``until`` horizon, no
        tiebreak jitter): one ``heappop`` per *instant*, then a plain
        index walk over the instant's bucket, with everything hot hoisted
        into locals.  Event order, clock updates, tracing and the
        ``max_events`` ceiling match :meth:`step` (modulo the documented
        same-instant-priority refinement in the module doc).

        When the record's callable is a :class:`~repro.sim.process.Process`
        the no-value resume is inlined here — finished/monitor guards,
        generator send, and the dominant ``Timeout`` reschedule as a
        direct bucket append — eliminating two Python frames per event on
        the hottest edge in the simulator.  ``Timeout`` objects validate
        their delay at construction, so the inline reschedule adds the
        delay without re-checking it.

        A bucket under drain is never mutated: events scheduled at the
        instant being drained land in a *fresh* dict bucket (the current
        one was popped), which the outer loop picks up next — so the
        index walk needs no bounds re-checks, and per-event bookkeeping
        (``processed``, the ceiling test) amortizes to one batch-sized
        update.  The ceiling only gets per-event checks in the cold
        branch where it falls inside the current batch.
        """
        times = self._times
        buckets = self._buckets
        bucket_get = buckets.get
        bucket_pop = buckets.pop
        setdef = buckets.setdefault
        heappop = heapq.heappop
        heappush = heapq.heappush
        heappushpop = heapq.heappushpop
        trace = self._trace
        max_events = self._max_events
        nextseq = self._seq_counter.__next__
        proc_cls = _PROCESS_CLASS
        timeout_cls = _TIMEOUT_CLASS
        # The monitor is attached before ``run()`` and never mid-drain
        # (the only writer is ``run_spmd``); hoisting the read off the
        # per-instant path is measurable on singleton-heavy workloads.
        monitor = self.monitor
        processed = self._events_processed
        # ``_events_processed`` is kept in a local and written back when
        # the loop exits (or an event raises): one store per event saved,
        # at the cost of the attribute being stale *while a callback
        # runs* — nothing in the tree reads it mid-event, and the
        # instrumented ``step()`` path keeps exact per-event updates.
        t = 0.0
        batch: Any = None
        record: Any = None
        try:
            if trace is None and monitor is None:
                while True:
                    d = self._deferred
                    if d >= 0.0:
                        # one combined sift; when ``d`` is the minimum
                        # the heap is not touched at all
                        self._deferred = -1.0
                        t = heappushpop(times, d)
                    elif times:
                        t = heappop(times)
                    else:
                        break
                    cur = bucket_pop(t, None)
                    if cur is None:
                        continue  # stale heap entry: bucket already drained
                    self._now = t
                    if cur.__class__ is not list:
                        # Bare singleton record — the timer-trampoline
                        # shape (a chain rescheduling itself to a fresh
                        # instant every event).  Dispatched with no batch
                        # bookkeeping; on an exception the event is
                        # already counted and its bucket gone, so the
                        # generic restore below has nothing to do.
                        if processed < max_events:
                            processed += 1
                            fn = cur[1]
                            if fn.__class__ is not proc_cls:
                                fn()
                                continue
                            # -- inlined Process.__call__ (see below) --
                            if fn._finished:
                                continue
                            try:
                                command = fn._send(None)
                            except StopIteration as stop:
                                fn._finished = True
                                fn.done.trigger(stop.value)
                                continue
                            except Exception as exc:  # noqa: BLE001 - wrap model bugs
                                fn._finished = True
                                raise ProcessFailure(fn.name, exc) from exc
                            if command.__class__ is not timeout_cls:
                                fn._dispatch(command)
                                continue
                            t2 = t + command.delay
                            seq = nextseq()
                            rec = (seq, fn, fn._timeout_label)
                            b = setdef(t2, rec)
                            if b is rec:
                                if self._deferred < 0.0:
                                    self._deferred = t2
                                else:
                                    heappush(times, t2)
                            elif b.__class__ is not list:
                                buckets[t2] = (
                                    [b, rec] if b[0] < seq else [rec, b]
                                )
                            elif seq > b[-1][0]:
                                b.append(rec)
                            else:
                                insort(b, rec)
                            continue
                        cur = [cur]  # cold: ceiling — generic path
                    n = len(cur)
                    if processed + n > max_events:
                        # Cold branch: the event ceiling falls inside
                        # this batch — per-event checks, generic
                        # dispatch.
                        batch = cur
                        k = 0
                        for record in batch:
                            if processed + k >= max_events:
                                raise SimulationLimitExceeded(
                                    f"exceeded max_events={max_events} "
                                    f"at t={t:.9f}s"
                                )
                            k += 1
                            record[-2]()
                        processed += n
                        batch = None
                        continue
                    batch = cur
                    # Same-target bucket cache: consecutive reschedules
                    # into one future instant (a wave re-arming the same
                    # delay) skip the dict probe.  Reset per batch — the
                    # cached list can only leave the dict via the outer
                    # loop's bucket_pop.
                    last_t2 = -1.0
                    last_b: Any = None
                    for record in batch:
                        fn = record[1]
                        if fn.__class__ is not proc_cls:
                            fn()
                            continue
                        # -- inlined Process.__call__ (no-value resume) --
                        if fn._finished:
                            continue  # fail-stopped/completed: stale wake
                        try:
                            command = fn._send(None)
                        except StopIteration as stop:
                            fn._finished = True
                            fn.done.trigger(stop.value)
                            continue
                        except Exception as exc:  # noqa: BLE001 - wrap model bugs
                            fn._finished = True
                            raise ProcessFailure(fn.name, exc) from exc
                        if command.__class__ is not timeout_cls:
                            fn._dispatch(command)
                            continue
                        t2 = t + command.delay
                        seq = nextseq()
                        rec = (seq, fn, fn._timeout_label)
                        if t2 == last_t2:
                            if seq > last_b[-1][0]:
                                last_b.append(rec)
                            else:
                                insort(last_b, rec)
                            continue
                        b = setdef(t2, rec)
                        if b is rec:
                            # stored bare; the cache only tracks lists, so
                            # leave it pointing at its (still valid) list
                            if self._deferred < 0.0:
                                self._deferred = t2
                            else:
                                heappush(times, t2)
                            continue
                        if b.__class__ is not list:
                            b = [b, rec] if b[0] < seq else [rec, b]
                            buckets[t2] = b
                        elif seq > b[-1][0]:
                            b.append(rec)
                        else:
                            insort(b, rec)
                        last_t2 = t2
                        last_b = b
                    processed += n
                    batch = None
            elif trace is None:
                # A monitor is attached: it brackets every resume
                # (``Process.__call__`` handles the begin/end hooks), so
                # every event takes the generic dispatch with per-event
                # ceiling checks.  Monitored runs are instrumentation
                # runs — this loop trades speed for exact bookkeeping.
                while True:
                    d = self._deferred
                    if d >= 0.0:
                        # one combined sift; when ``d`` is the minimum
                        # the heap is not touched at all
                        self._deferred = -1.0
                        t = heappushpop(times, d)
                    elif times:
                        t = heappop(times)
                    else:
                        break
                    cur = bucket_pop(t, None)
                    if cur is None:
                        continue
                    self._now = t
                    if cur.__class__ is not list:
                        cur = [cur]  # bare singleton record
                    n = len(cur)
                    batch = cur
                    k = 0
                    for record in batch:
                        if processed + k >= max_events:
                            raise SimulationLimitExceeded(
                                f"exceeded max_events={max_events} "
                                f"at t={t:.9f}s"
                            )
                        k += 1
                        record[-2]()
                    processed += n
                    batch = None
            else:
                while True:
                    d = self._deferred
                    if d >= 0.0:
                        # one combined sift; when ``d`` is the minimum
                        # the heap is not touched at all
                        self._deferred = -1.0
                        t = heappushpop(times, d)
                    elif times:
                        t = heappop(times)
                    else:
                        break
                    cur = bucket_pop(t, None)
                    if cur is None:
                        continue
                    self._now = t
                    if cur.__class__ is not list:
                        cur = [cur]  # bare singleton record
                    n = len(cur)
                    batch = cur
                    if processed + n > max_events:
                        k = 0
                        for record in batch:
                            if processed + k >= max_events:
                                raise SimulationLimitExceeded(
                                    f"exceeded max_events={max_events} "
                                    f"at t={t:.9f}s"
                                )
                            k += 1
                            label = record[-1]
                            if label:
                                trace(t, label)
                            record[-2]()
                    else:
                        for record in batch:
                            label = record[-1]
                            if label:
                                trace(t, label)
                            record[-2]()
                    processed += n
                    batch = None
        except BaseException:
            # Flush the deferred push first: the failing event may have
            # parked a fresh instant there, and post-mortem inspection
            # reads the heap directly.  (A duplicate heap entry for ``t``
            # is harmless — stale entries are discarded lazily.)
            d = self._deferred
            if d >= 0.0:
                self._deferred = -1.0
                heappush(times, d)
            # Restore the undispatched remainder (plus anything the
            # failing event scheduled back at ``t``) so the queue stays
            # coherent for post-mortem inspection or a resumed run.  The
            # failing record is counted but dropped — exactly the
            # historical heappop-then-raise accounting.  (Looking the
            # record up by value is safe: tuple equality resolves on the
            # unique leading key before ever comparing ``fn``.)
            if batch is not None:
                consumed = batch.index(record) + 1
                processed += consumed
                remainder = batch[consumed:]
                if remainder:
                    newer = bucket_pop(t, None)
                    if newer is not None:
                        if newer.__class__ is not list:
                            newer = [newer]
                        remainder = sorted(remainder + newer)
                    buckets[t] = remainder
                    heappush(times, t)
            raise
        finally:
            self._events_processed = processed
