"""Deterministic discrete-event simulation engine.

The engine is the clock and scheduler underneath everything in
:mod:`repro`: the machine model charges communication costs by scheduling
callbacks, and the CAF runtime's images are generator-based processes
(:mod:`repro.sim.process`) resumed by this engine.

Determinism is a hard requirement — a reproduction is useless if two runs
of the same benchmark disagree — so events are ordered by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing insertion counter. Two events at the same instant always fire
in the order they were scheduled.

Schedule fuzzing (``repro.verify``) relaxes exactly that last rule: with
a ``tiebreak_seed`` the engine permutes events that share a
``(time, priority)`` slot — still fully deterministically per seed.
Events at the same instant are causally concurrent (anything that *must*
happen later is scheduled later, or at a later time), so every such
permutation is a legal interleaving of the simulated program; a program
whose *semantic* result changes under a different seed has a real
ordering bug.  With no seed (the default) the insertion-order policy is
byte-identical to the historical behaviour.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Any, Callable, Optional, Union

from .errors import DeadlockError, SimulationLimitExceeded

__all__ = ["Engine"]

#: Upper bound used by ``schedule``'s combined delay check: a chained
#: ``0.0 <= delay < _INF`` rejects negatives, ``inf`` and (because any
#: comparison with NaN is false) ``nan`` in one expression.
_INF = math.inf

#: Default-path event records merge ``(priority, seq)`` into one integer
#: key — ``priority * _PRIORITY_STRIDE + seq`` — so a record is a lean
#: 4-tuple.  The stride exceeds any reachable sequence number (the event
#: ceiling tops out around 5e8 ≪ 2**48), so priority strictly dominates
#: and insertion order breaks ties, for negative priorities too.
_PRIORITY_STRIDE = 2 ** 48

#: Default ceiling on processed events; generous enough for the largest
#: benchmark in the suite (HPL at 256 images) while still catching livelock.
DEFAULT_MAX_EVENTS = 500_000_000


class Engine:
    """Event-heap simulation kernel with a float-seconds clock.

    Parameters
    ----------
    max_events:
        Safety ceiling on the number of processed events.  Exceeding it
        raises :class:`~repro.sim.errors.SimulationLimitExceeded`.
    trace:
        Optional callable invoked as ``trace(time, label)`` for every
        event that carries a label; useful in tests that assert ordering.
    tiebreak_seed:
        When given, events sharing a ``(time, priority)`` slot fire in a
        seed-determined pseudo-random order instead of insertion order.
        Used by :mod:`repro.verify` to fuzz legal interleavings; leave
        ``None`` (the default) for the historical insertion-order policy.

    .. note::
       ``schedule`` and ``call_now`` are per-instance closures bound in
       ``__init__`` (one flavour per tiebreak mode) with the heap,
       ``heappush`` and the sequence counter pre-captured: the hot loop
       calls them millions of times per simulated second, and the
       specialization drops four attribute lookups and the bound-method
       re-creation from every call.  Their contract is documented on
       :meth:`_bind_schedule`.
    """

    __slots__ = (
        "_heap", "_now", "_max_events", "_events_processed", "_trace",
        "_tiebreak_seed", "_tiebreak_rng", "monitor", "_blocked",
        "_blocked_info", "_blocked_seq", "_running", "schedule", "call_now",
    )

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        trace: Optional[Callable[[float, str], None]] = None,
        tiebreak_seed: Optional[int] = None,
    ):
        # Event records are lean 4-tuples ``(time, key, fn, label)`` on the
        # default path, with ``key = priority * _PRIORITY_STRIDE + seq``;
        # with a ``tiebreak_seed`` they are the historical 6-tuples
        # ``(time, priority, jitter, seq, fn, label)``.  The two shapes
        # never mix within one engine (the seed is fixed at construction),
        # and with jitter pinned at 0.0 the 6-tuple ordered exactly as the
        # 4-tuple's merged key — so the lean record cannot reorder anything.
        self._heap: list[tuple] = []
        self._now = 0.0
        self._max_events = int(max_events)
        self._events_processed = 0
        self._trace = trace
        self._tiebreak_seed = tiebreak_seed
        self._tiebreak_rng = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        #: optional concurrency monitor (duck-typed; see
        #: :class:`repro.verify.HBMonitor`).  The sim primitives consult it
        #: on every write/wait when set; ``None`` costs one attribute read.
        self.monitor: Optional[Any] = None
        # Registry of blocked-process descriptions for deadlock reporting.
        # Keyed by an opaque token so waiters can deregister in O(1).
        self._blocked: dict[int, Union[str, Callable[[], str]]] = {}
        self._blocked_info: dict[int, Any] = {}
        self._blocked_seq = itertools.count()
        self._running = False
        self._bind_schedule()

    def _bind_schedule(self) -> None:
        """Bind the per-instance ``schedule``/``call_now`` closures.

        ``schedule(delay, fn, priority=0, label="")`` runs ``fn`` after
        ``delay`` simulated seconds.  ``delay`` must be finite and
        non-negative: simulated causality only flows forward.
        ``priority`` breaks ties at equal timestamps (lower fires first),
        and insertion order breaks remaining ties — unless a
        ``tiebreak_seed`` permutes same-slot events (see the module doc).

        ``call_now(fn, label="")`` schedules ``fn`` at the current
        instant, after pending same-time events.
        """
        heap = self._heap
        push = heapq.heappush
        rng = self._tiebreak_rng
        seq = 0  # tail tie-break counter, shared by both closures

        if rng is None:

            def schedule(
                delay: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                # One chained comparison validates every legal delay (0.0
                # included: adding it is free) and rejects negatives, inf
                # and NaN — the historical `< 0 or not isfinite` pair cost
                # two checks and a C call on every event.
                if 0.0 <= delay < _INF:
                    time = self._now + delay
                else:
                    raise ValueError(
                        f"delay must be finite and >= 0, got {delay!r}"
                    )
                nonlocal seq
                seq += 1
                push(
                    heap,
                    (
                        time,
                        priority * _PRIORITY_STRIDE + seq if priority else seq,
                        fn,
                        label,
                    ),
                )

            def call_now(fn: Callable[[], None], label: str = "") -> None:
                nonlocal seq
                seq += 1
                push(heap, (self._now, seq, fn, label))

        else:

            def schedule(
                delay: float,
                fn: Callable[[], None],
                priority: int = 0,
                label: str = "",
            ) -> None:
                if 0.0 <= delay < _INF:
                    time = self._now + delay
                else:
                    raise ValueError(
                        f"delay must be finite and >= 0, got {delay!r}"
                    )
                nonlocal seq
                seq += 1
                push(heap, (time, priority, rng.random(), seq, fn, label))

            def call_now(fn: Callable[[], None], label: str = "") -> None:
                nonlocal seq
                seq += 1
                push(heap, (self._now, 0, rng.random(), seq, fn, label))

        self.schedule = schedule
        self.call_now = call_now

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events the run loop has dispatched so far."""
        return self._events_processed

    @property
    def tiebreak_seed(self) -> Optional[int]:
        """The schedule-fuzzing seed, or ``None`` for insertion order."""
        return self._tiebreak_seed

    # ------------------------------------------------------------------
    # Blocked-process bookkeeping (for deadlock diagnostics)
    # ------------------------------------------------------------------
    def note_blocked(
        self, description: Union[str, Callable[[], str]], info: Any = None
    ) -> int:
        """Record that a process is blocked; returns a token for :meth:`note_unblocked`.

        ``description`` may be a plain string or a zero-argument callable
        returning one — waiters on the hot path pass a callable so the
        human-readable text is only materialized if a deadlock report
        actually needs it.

        ``info`` may carry a structured record (see
        :class:`repro.sim.process.BlockedInfo`) that deadlock reports use
        to reconstruct the wait-for graph.
        """
        token = next(self._blocked_seq)
        self._blocked[token] = description
        if info is not None:
            self._blocked_info[token] = info
        return token

    def note_unblocked(self, token: int) -> None:
        """Forget a blocked-process record created by :meth:`note_blocked`."""
        self._blocked.pop(token, None)
        self._blocked_info.pop(token, None)

    @property
    def blocked_descriptions(self) -> list[str]:
        """Descriptions of currently blocked processes (ordered by block time)."""
        return [
            d() if callable(d) else d
            for d in (self._blocked[k] for k in sorted(self._blocked))
        ]

    @property
    def blocked_details(self) -> list[Any]:
        """Structured records of currently blocked processes, where the
        waiter supplied one (ordered by block time).  Records registered
        as zero-argument callables are materialized here — the cold path
        of deadlock reporting."""
        return [
            info() if callable(info) else info
            for info in (self._blocked_info[k] for k in sorted(self._blocked_info))
        ]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event. Returns False if the heap is empty.

        This is the instrumentation-friendly slow path: the
        :meth:`run` loop inlines the same logic with locals hoisted, so
        tools that need per-event control (``repro.perf`` stats, tests)
        can drive ``step()`` without the fast loop having to pay for the
        method call on every event.
        """
        if not self._heap:
            return False
        record = heapq.heappop(self._heap)
        # Record shape varies with tiebreak mode; time/fn/label positions
        # are stable at the ends.
        time = record[0]
        # The clock never moves backwards; equal times are fine.
        self._now = time
        self._events_processed += 1
        if self._events_processed > self._max_events:
            raise SimulationLimitExceeded(
                f"exceeded max_events={self._max_events} at t={self._now:.9f}s"
            )
        label = record[-1]
        if self._trace is not None and label:
            self._trace(time, label)
        record[-2]()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  If the queue drains while
        processes are still registered as blocked, raises
        :class:`~repro.sim.errors.DeadlockError` — silence is never
        mistaken for success.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        try:
            if until is None and self._tiebreak_rng is None:
                self._run_fast()
            else:
                while self._heap:
                    if until is not None and self._heap[0][0] > until:
                        self._now = until
                        return self._now
                    self.step()
            if self._blocked:
                raise DeadlockError(self.blocked_descriptions,
                                    details=self.blocked_details)
            return self._now
        finally:
            self._running = False

    def _run_fast(self) -> None:
        """Drain the heap on the default path (no ``until`` horizon, no
        tiebreak jitter): the per-event dispatch with ``heappop`` and the
        heap hoisted into locals and no ``step()`` call per event.  Event
        order, clock updates, tracing and the ``max_events`` ceiling are
        exactly those of :meth:`step`."""
        heap = self._heap          # heappush in schedule() mutates in place
        heappop = heapq.heappop
        trace = self._trace
        max_events = self._max_events
        processed = self._events_processed
        # ``_events_processed`` is kept in a local and written back when
        # the loop exits (or an event raises): one store per event saved,
        # at the cost of the attribute being stale *while a callback
        # runs* — nothing in the tree reads it mid-event, and the
        # instrumented ``step()`` path keeps exact per-event updates.
        try:
            if trace is None:
                while heap:
                    time, _key, fn, _label = heappop(heap)
                    self._now = time
                    processed += 1
                    if processed > max_events:
                        raise SimulationLimitExceeded(
                            f"exceeded max_events={max_events} at t={time:.9f}s"
                        )
                    fn()
            else:
                while heap:
                    time, _key, fn, label = heappop(heap)
                    self._now = time
                    processed += 1
                    if processed > max_events:
                        raise SimulationLimitExceeded(
                            f"exceeded max_events={max_events} at t={time:.9f}s"
                        )
                    if label:
                        trace(time, label)
                    fn()
        finally:
            self._events_processed = processed
