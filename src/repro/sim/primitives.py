"""Synchronization primitives for simulated processes.

Three primitives cover everything the PGAS runtime needs:

* :class:`SimEvent` — a one-shot triggerable event (completion of an RMA
  operation, release of a resource grant).
* :class:`Cell` — a watched mutable value with wake-on-write semantics.
  This is the simulation analogue of a *spin-wait on a flag in shared
  memory*: waiting costs nothing until the producing write happens, which
  is exactly how a cache-coherent spin loop behaves from the outside.
  ``sync_flags`` words, barrier counters and event counts are all Cells.
* :class:`Resource` — a FIFO counting semaphore used for serialization
  points in the machine model (a node's NIC injection port, a memory bus).
  FIFO ordering keeps the simulation deterministic under contention.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Optional

from .engine import Engine

__all__ = ["SimEvent", "Cell", "Resource"]


class SimEvent:
    """One-shot event: callbacks registered before the trigger fire on trigger;
    callbacks registered after fire immediately (at the current instant)."""

    __slots__ = ("_engine", "_triggered", "_value", "_callbacks", "name")

    def __init__(self, engine: Engine, name: str = ""):
        self._engine = engine
        self._triggered = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError(f"event {self.name!r} read before trigger")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters. Triggering twice is an error:
        one-shot semantics are what the runtime's completion logic relies on."""
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_event_trigger(self)
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if it has)."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Cell:
    """A watched scalar with wake-on-write.

    ``wait_until(pred, cb)`` registers a predicate over the cell's value;
    the callback runs as soon as a write makes the predicate true (or
    immediately if it already is).  Watchers are checked in registration
    order, and a watcher that fires is removed before its callback runs so
    the callback may freely re-register.

    The runtime uses Cells for everything an image would spin on:
    dissemination ``sync_flags`` counters, linear-barrier arrival counts,
    event-post counts.  Reads and writes are instantaneous — the *cost* of
    producing the write (the remote put, the memory-bus transaction) is
    charged by the machine model before ``set`` is called.

    Three write flavours matter to the concurrency checker
    (:mod:`repro.verify`): ``set`` is a plain *store* (last writer wins —
    two unordered stores are a write-after-write race); ``add`` and
    ``update`` are atomic read-modify-writes, which commute or are
    order-tolerant by contract and are never flagged.  ``meta`` is an
    optional dict the owner attaches (team, index, round, …) so deadlock
    and race reports can say *what* a cell is, not just its name.
    """

    __slots__ = ("_engine", "_value", "_watchers", "name", "_seq", "meta")

    def __init__(self, engine: Engine, value: Any = 0, name: str = "",
                 meta: Optional[dict] = None):
        self._engine = engine
        self._value = value
        self._watchers: dict[int, tuple[Callable[[Any], bool], Callable[[Any], None]]] = {}
        self._seq = itertools.count()
        self.name = name
        self.meta = meta

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        """Plain store (checked for write-after-write races when monitored)."""
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "set")
        self._value = value
        self._check_watchers()

    def add(self, delta: Any) -> Any:
        """Atomic read-modify-write (the simulation is single-threaded, so
        plain += is atomic); returns the new value."""
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "add")
        self._value = self._value + delta
        self._check_watchers()
        return self._value

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """General atomic read-modify-write: ``value = fn(value)``.

        Used by the runtime's atomics (``atomic_add``/``and``/``or``/
        ``xor``, fetch-and-op, CAS), whose target-side application is
        atomic by construction; returns the new value.
        """
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cell_write(self, "update")
        self._value = fn(self._value)
        self._check_watchers()
        return self._value

    def _check_watchers(self) -> None:
        # Watcher keys come from a monotonic counter and dicts preserve
        # insertion order, so plain iteration visits watchers in exactly
        # the registration order the old ``sorted()`` produced — without
        # sorting on every write.  Sync cells almost always have 0 or 1
        # watchers, so those cases take dedicated early-outs.
        watchers = self._watchers
        if not watchers:
            return
        if len(watchers) == 1:
            key, (pred, cb) = next(iter(watchers.items()))
            if pred(self._value):
                del watchers[key]
                cb(self._value)
            return
        # Snapshot: callbacks may register new watchers or write the cell.
        for key, entry in list(watchers.items()):
            if key not in watchers:
                continue  # removed by an earlier callback this pass
            pred, cb = entry
            if pred(self._value):
                del watchers[key]
                cb(self._value)

    def wait_until(
        self, pred: Callable[[Any], bool], callback: Callable[[Any], None]
    ) -> Optional[int]:
        """Run ``callback(value)`` once ``pred(value)`` holds.

        Returns a watcher key if the wait is pending (cancelable via
        :meth:`cancel_wait`), or ``None`` if the predicate already held and
        the callback ran synchronously.
        """
        if pred(self._value):
            callback(self._value)
            return None
        key = next(self._seq)
        self._watchers[key] = (pred, callback)
        return key

    def cancel_wait(self, key: int) -> None:
        self._watchers.pop(key, None)


class Resource:
    """FIFO counting semaphore: the serialization points of the machine model.

    A NIC that can inject one message every ``gap`` seconds is modeled as a
    capacity-1 Resource held for ``gap``; eight images flushing barrier
    notifications through it queue up in deterministic FIFO order — this is
    precisely the serialization effect the paper's Section IV-A argues
    makes flat dissemination slow on multicore nodes.
    """

    __slots__ = ("_engine", "capacity", "_in_use", "_queue", "name", "_granted", "_peak")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self.capacity = capacity
        self._in_use = 0
        # deque: grants pop from the left in O(1); a list's pop(0) is O(n)
        # and showed up under contention (every NIC gap on a busy node).
        self._queue: deque[SimEvent] = deque()
        self.name = name
        self._granted = 0
        self._peak = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing holds the resource and nothing is queued.

        Macro-events (:mod:`repro.collectives.macro`) sweep every machine
        resource through this before collapsing a barrier window: a busy
        bus or NIC means in-flight foreign traffic could contend with the
        barrier's own transfers, so the window must run fine-grained.
        """
        return self._in_use == 0 and not self._queue

    @property
    def total_grants(self) -> int:
        """Lifetime number of acquisitions granted (contention statistics)."""
        return self._granted

    @property
    def peak_queue(self) -> int:
        """Longest queue observed (contention statistics)."""
        return self._peak

    def acquire(self) -> SimEvent:
        """Request the resource; the returned event triggers when granted."""
        grant = SimEvent(self._engine, name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted += 1
            grant.trigger()
        else:
            self._queue.append(grant)
            self._peak = max(self._peak, len(self._queue))
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            self._granted += 1
            nxt.trigger()
        else:
            self._in_use -= 1

    def occupy(self, duration: float, then: Optional[Callable[[], None]] = None) -> SimEvent:
        """Acquire, hold for ``duration`` simulated seconds, release.

        Returns an event that triggers at release time; ``then`` (if given)
        runs at that moment.  This is the one-liner the network model uses
        for NIC injection gaps.
        """
        done = SimEvent(self._engine, name=f"{self.name}.occupy")

        def _granted(_: Any) -> None:
            def _finish() -> None:
                self.release()
                if then is not None:
                    then()
                done.trigger()

            self._engine.schedule(duration, _finish, label=f"{self.name}.hold")

        self.acquire().on_trigger(_granted)
        return done
