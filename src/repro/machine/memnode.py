"""Intra-node shared-memory fabric.

Within a node, a "message" is a cache-coherent store observed by another
core: cheap, but not free.  The model has one FIFO
:class:`~repro.sim.primitives.Resource` per *socket* — the socket's
memory controller — and a transaction occupies the controller of the
**destination** core's socket (the home of the written line).  A burst of
notifications aimed at one leader therefore serializes, which is the
shared-memory analogue of the NIC gap and the reason a *linear* barrier
beats dissemination inside a node (§IV-A of the paper), while traffic
homed on different sockets proceeds in parallel.

Stores that cross the socket interconnect occupy the home controller
longer (``cross_socket_bus_factor``) and take the higher
``smp_latency`` to become visible — the NUMA structure the paper lists
as future work and experiment E8 exploits.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..sim import Engine, Hold, Resource, SimEvent
from .spec import MachineSpec

__all__ = ["SharedMemory"]


class SharedMemory:
    """Per-socket memory-controller model."""

    def __init__(self, engine: Engine, spec: MachineSpec):
        self._engine = engine
        self._spec = spec
        self._buses = [
            [
                Resource(engine, capacity=spec.node.bus_capacity,
                         name=f"bus{n}.{s}")
                for s in range(spec.node.sockets)
            ]
            for n in range(spec.num_nodes)
        ]
        self.messages = 0
        self.bytes = 0

    def bus(self, node: int, socket: int = 0) -> Resource:
        return self._buses[node][socket]

    def reset_counters(self) -> None:
        self.messages = 0
        self.bytes = 0

    def _plan(self, src_core: int, dst_core: int, nbytes: int,
              bandwidth_factor: float):
        """(occupancy seconds, visibility latency, home socket)."""
        node = self._spec.node
        same_socket = node.socket_of(src_core) == node.socket_of(dst_core)
        occupancy = node.bus_hold + nbytes / (node.smp_bandwidth * bandwidth_factor)
        if not same_socket:
            occupancy *= node.cross_socket_bus_factor
            latency = node.smp_latency
        else:
            latency = node.intra_socket_latency
        return occupancy, latency, node.socket_of(dst_core)

    def _validate(self, nbytes: int, bandwidth_factor: float) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not 0 < bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )

    def transfer(
        self,
        node: int,
        src_core: int,
        dst_core: int,
        nbytes: int,
        on_visible: Optional[Callable[[], None]] = None,
        bandwidth_factor: float = 1.0,
    ) -> Iterator:
        """Transport generator for an intra-node store of ``nbytes``.

        The producing process holds the destination socket's memory
        controller for the occupancy window (``bus_hold`` plus payload
        streaming time, inflated for cross-socket stores), after which
        the data becomes visible to ``dst_core`` one coherence latency
        later.  ``bandwidth_factor`` < 1 degrades the streaming rate —
        conduit loopback paths that bounce payloads through chunked
        Active-Message buffers move data slower than a direct memcpy.
        ``src_core == dst_core`` is legal: a self-put degenerates to a
        memcpy.
        """
        self._validate(nbytes, bandwidth_factor)
        self.messages += 1
        self.bytes += nbytes
        occupancy, latency, home = self._plan(
            src_core, dst_core, nbytes, bandwidth_factor
        )
        yield Hold(self._buses[node][home], occupancy)
        if on_visible is not None:
            self._engine.schedule(
                latency, on_visible, label=f"smp{node}:{src_core}->{dst_core}"
            )

    def transfer_async(
        self,
        node: int,
        src_core: int,
        dst_core: int,
        nbytes: int,
        on_visible: Optional[Callable[[], None]] = None,
        bandwidth_factor: float = 1.0,
    ) -> SimEvent:
        """Callback-style variant; the returned event fires when the bus
        transaction retires (source-side completion)."""
        self._validate(nbytes, bandwidth_factor)
        self.messages += 1
        self.bytes += nbytes
        occupancy, latency, home = self._plan(
            src_core, dst_core, nbytes, bandwidth_factor
        )

        def _after_bus() -> None:
            if on_visible is not None:
                self._engine.schedule(
                    latency, on_visible, label=f"smp{node}:{src_core}->{dst_core}"
                )

        return self._buses[node][home].occupy(occupancy, then=_after_bus)
