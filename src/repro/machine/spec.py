"""Hardware specification dataclasses and the paper's evaluation cluster.

All times are in seconds, all sizes in bytes, all rates in bytes/second.
The concrete constants live in :mod:`repro.calibration` together with the
rationale for each value; this module only defines the *shape* of a
machine description and convenience constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NodeSpec", "NetworkSpec", "MachineSpec", "paper_cluster", "flat_cluster"]


@dataclass(frozen=True)
class NodeSpec:
    """One shared-memory compute node.

    The two latency fields model the NUMA structure the paper lists as
    future work (§VII): a flag write observed by a core on the *same*
    socket is cheaper than one crossing the socket interconnect.  The
    2-level algorithms only use ``smp_latency`` (the conservative,
    cross-socket figure); the 3-level NUMA ablation (E8) exploits the
    distinction.
    """

    cores: int = 8
    sockets: int = 2
    #: cache-coherent notification latency between cores on different sockets
    smp_latency: float = 150e-9
    #: notification latency between cores sharing a socket (NUMA ablation)
    intra_socket_latency: float = 80e-9
    #: sustained intra-node copy bandwidth (bytes/s)
    smp_bandwidth: float = 3.0e9
    #: simultaneous notifications one socket's memory controller retires
    bus_capacity: int = 1
    #: memory-controller occupancy per intra-node notification; each
    #: socket has its own controller, so sockets retire traffic in
    #: parallel while traffic to one socket serializes
    bus_hold: float = 60e-9
    #: occupancy multiplier when the store crosses the socket interconnect
    #: (the home controller also drives the HT/QPI link)
    cross_socket_bus_factor: float = 3.0
    #: per-core double-precision flop rate (flops/s); 2.2 GHz Opteron,
    #: 4 DP flops/cycle SSE ceiling
    core_flops: float = 8.8e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.sockets < 1 or self.cores % self.sockets != 0:
            raise ValueError(
                f"sockets ({self.sockets}) must divide cores ({self.cores})"
            )

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    def socket_of(self, core: int) -> int:
        """Socket index hosting ``core`` (cores are filled socket-major)."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} out of range [0, {self.cores})")
        return core // self.cores_per_socket


@dataclass(frozen=True)
class NetworkSpec:
    """LogGP-style interconnect between nodes.

    A message of ``n`` bytes costs ``gap + n * inject_cost_per_byte`` of
    NIC occupancy at the sender (serialized per node — the single HCA),
    then ``latency + n / bandwidth`` of wire time before delivery.  The
    per-message *software* overhead is deliberately NOT here: it belongs
    to the conduit profile (GASNet vs raw verbs vs MPI), which is exactly
    the axis the paper's §V-A comparison varies.
    """

    #: one-way wire latency for a minimal message (4xDDR InfiniBand)
    latency: float = 2.0e-6
    #: sustained point-to-point bandwidth (bytes/s)
    bandwidth: float = 1.4e9
    #: NIC injection gap per message (back-to-back sends serialize on this)
    gap: float = 0.4e-6
    #: NIC injection cost per payload byte (DMA engine occupancy)
    inject_cost_per_byte: float = 1.0 / 4.0e9
    #: concurrent injections a node's NIC sustains (1 = single HCA port)
    nic_capacity: int = 1

    def wire_time(self, nbytes: int) -> float:
        """Latency + serialization on the wire for an ``nbytes`` payload."""
        return self.latency + nbytes / self.bandwidth

    def inject_time(self, nbytes: int) -> float:
        """NIC occupancy charged at the sender for an ``nbytes`` payload."""
        return self.gap + nbytes * self.inject_cost_per_byte


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: ``num_nodes`` identical nodes joined by one interconnect."""

    num_nodes: int
    node: NodeSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores

    def with_nodes(self, num_nodes: int) -> "MachineSpec":
        """Same hardware, different node count (benchmark sweeps)."""
        return replace(self, num_nodes=num_nodes)


def paper_cluster(num_nodes: int = 44) -> MachineSpec:
    """The paper's evaluation platform: 44 nodes, dual quad-core 2.2 GHz
    AMD Opteron (8 cores, 2 sockets), 4xDDR InfiniBand."""
    return MachineSpec(num_nodes=num_nodes, node=NodeSpec(), network=NetworkSpec())


def flat_cluster(num_nodes: int) -> MachineSpec:
    """A cluster used with one image per node (the paper's flat-hierarchy
    configuration, e.g. ``16(16)``): same hardware, but callers place a
    single image on each node so no intra-node tier exists."""
    return paper_cluster(num_nodes)
