"""The :class:`Machine` facade: one object the runtime talks to.

A Machine binds a :class:`~repro.machine.spec.MachineSpec`, an image
:class:`~repro.machine.topology.Topology`, and the two fabrics
(:class:`~repro.machine.network.Interconnect` and
:class:`~repro.machine.memnode.SharedMemory`) to a simulation engine, and
exposes placement-aware transport: callers say *which images* talk, the
Machine decides whether that is a NIC transaction or a cache-coherence
transaction.  This is the knowledge a memory-hierarchy-aware runtime has
and a flat runtime ignores — the entire paper in one dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from ..sim import Engine, SimEvent, Timeout
from .memnode import SharedMemory
from .network import Interconnect
from .spec import MachineSpec
from .topology import Placement, Topology, block_placement

__all__ = ["Machine", "TrafficSnapshot", "build_machine"]


@dataclass(frozen=True)
class TrafficSnapshot:
    """Cumulative fabric counters at one instant; subtract two snapshots to
    get per-phase traffic (used by the notification-count experiments)."""

    inter_messages: int
    inter_bytes: int
    intra_messages: int
    intra_bytes: int

    def __sub__(self, other: "TrafficSnapshot") -> "TrafficSnapshot":
        return TrafficSnapshot(
            self.inter_messages - other.inter_messages,
            self.inter_bytes - other.inter_bytes,
            self.intra_messages - other.intra_messages,
            self.intra_bytes - other.intra_bytes,
        )

    @property
    def total_messages(self) -> int:
        return self.inter_messages + self.intra_messages


class Machine:
    """Placement-aware transport + compute-cost accounting."""

    def __init__(self, engine: Engine, topology: Topology):
        self.engine = engine
        self.topology = topology
        self.spec: MachineSpec = topology.spec
        self.interconnect = Interconnect(engine, self.spec)
        self.shared_memory = SharedMemory(engine, self.spec)

    # ------------------------------------------------------------------
    # Placement queries (delegated; runtime code reads these constantly)
    # ------------------------------------------------------------------
    @property
    def num_images(self) -> int:
        return self.topology.num_images

    def node_of(self, image: int) -> int:
        return self.topology.node_of(image)

    def same_node(self, a: int, b: int) -> bool:
        return self.topology.same_node(a, b)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def transfer(
        self,
        src_image: int,
        dst_image: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> Iterator:
        """Move ``nbytes`` from ``src_image``'s memory to ``dst_image``'s.

        Generator to ``yield from`` in the sending process: it blocks the
        sender through source-side completion, and invokes
        ``on_delivered`` when the payload is visible at the target.
        Routing (NIC vs coherence fabric) follows placement.
        """
        ps = self.topology.placement(src_image)
        pd = self.topology.placement(dst_image)
        if ps.node == pd.node:
            yield from self.shared_memory.transfer(
                ps.node, ps.core, pd.core, nbytes, on_visible=on_delivered
            )
        else:
            yield from self.interconnect.send(
                ps.node, pd.node, nbytes, on_delivered=on_delivered
            )

    def transfer_async(
        self,
        src_image: int,
        dst_image: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> SimEvent:
        """Callback-style :meth:`transfer`; event fires at source completion."""
        ps = self.topology.placement(src_image)
        pd = self.topology.placement(dst_image)
        if ps.node == pd.node:
            return self.shared_memory.transfer_async(
                ps.node, ps.core, pd.core, nbytes, on_visible=on_delivered
            )
        return self.interconnect.send_async(
            ps.node, pd.node, nbytes, on_delivered=on_delivered
        )

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(self, flops: float, efficiency: float = 1.0) -> Timeout:
        """A :class:`Timeout` charging ``flops`` of work on one core.

        ``efficiency`` scales the core's peak rate; backends with poorer
        generated code (the paper's GFortran backend) pass a smaller value.
        """
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        if not 0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        rate = self.spec.node.core_flops * efficiency
        return Timeout(flops / rate)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def traffic(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            inter_messages=self.interconnect.messages,
            inter_bytes=self.interconnect.bytes,
            intra_messages=self.shared_memory.messages,
            intra_bytes=self.shared_memory.bytes,
        )

    def reset_traffic(self) -> None:
        self.interconnect.reset_counters()
        self.shared_memory.reset_counters()


def build_machine(
    engine: Engine,
    spec: MachineSpec,
    num_images: int,
    images_per_node: Optional[int] = None,
    placements: Optional[Sequence[Placement]] = None,
) -> Machine:
    """Convenience constructor used throughout benchmarks and tests.

    Either pass explicit ``placements`` or an ``images_per_node`` for block
    placement (default: pack a node full before starting the next — the
    paper's ``N(M)`` notation with M nodes means ``images_per_node = N/M``).
    """
    if placements is None:
        if images_per_node is None:
            images_per_node = spec.node.cores
        placements = block_placement(num_images, images_per_node)
    topo = Topology(spec, placements)
    return Machine(engine, topo)
