"""Cluster hardware model: topology, interconnect, shared memory, compute.

The machine model is the reproduction's stand-in for the paper's 44-node
Opteron/InfiniBand cluster (see DESIGN.md §2 for the substitution
rationale).  It is parametric, so benchmark sweeps can vary node counts,
images-per-node, and latency ratios.
"""

from .machine import Machine, TrafficSnapshot, build_machine
from .memnode import SharedMemory
from .network import Interconnect
from .spec import MachineSpec, NetworkSpec, NodeSpec, flat_cluster, paper_cluster
from .topology import Placement, Topology, block_placement, cyclic_placement

__all__ = [
    "Machine",
    "TrafficSnapshot",
    "build_machine",
    "SharedMemory",
    "Interconnect",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "paper_cluster",
    "flat_cluster",
    "Placement",
    "Topology",
    "block_placement",
    "cyclic_placement",
]
