"""Cluster topology and image placement.

The runtime asks one question of the topology over and over: *which node
(and core) does image ``i`` live on?*  Placement is fixed at program
launch — exactly like a batch scheduler's rank-to-host map — and every
hierarchy decision in :mod:`repro.teams.hierarchy` derives from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .spec import MachineSpec

__all__ = ["Placement", "Topology", "block_placement", "cyclic_placement"]


@dataclass(frozen=True)
class Placement:
    """Physical location of one image: ``(node, core)``."""

    node: int
    core: int


def block_placement(num_images: int, images_per_node: int) -> list[Placement]:
    """Fill nodes one after another — the common ``mpirun --map-by node:PE``
    style used by the paper's ``N(M)`` configurations (e.g. 16 images on
    2 nodes = 8 consecutive images per node)."""
    if num_images < 1:
        raise ValueError(f"num_images must be >= 1, got {num_images}")
    if images_per_node < 1:
        raise ValueError(f"images_per_node must be >= 1, got {images_per_node}")
    return [
        Placement(node=i // images_per_node, core=i % images_per_node)
        for i in range(num_images)
    ]


def cyclic_placement(num_images: int, num_nodes: int) -> list[Placement]:
    """Round-robin images over nodes (rank i → node i mod N).

    Under cyclic placement consecutive images are never co-located, which
    is the adversarial case for hierarchy-unaware collectives — useful in
    ablations."""
    if num_images < 1:
        raise ValueError(f"num_images must be >= 1, got {num_images}")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    counts = [0] * num_nodes
    out = []
    for i in range(num_images):
        node = i % num_nodes
        out.append(Placement(node=node, core=counts[node]))
        counts[node] += 1
    return out


class Topology:
    """Validated image→(node, core) map over a :class:`MachineSpec`.

    Raises at construction if any placement exceeds the machine (node out
    of range, core oversubscribed) so benchmarks can't silently run an
    impossible configuration.
    """

    def __init__(self, spec: MachineSpec, placements: Sequence[Placement]):
        if not placements:
            raise ValueError("at least one image required")
        for i, p in enumerate(placements):
            if not 0 <= p.node < spec.num_nodes:
                raise ValueError(
                    f"image {i}: node {p.node} out of range [0, {spec.num_nodes})"
                )
            if not 0 <= p.core < spec.node.cores:
                raise ValueError(
                    f"image {i}: core {p.core} out of range [0, {spec.node.cores})"
                )
        seen = set()
        for i, p in enumerate(placements):
            key = (p.node, p.core)
            if key in seen:
                raise ValueError(f"image {i}: core {key} already occupied")
            seen.add(key)
        self.spec = spec
        self._placements = list(placements)

    @property
    def num_images(self) -> int:
        return len(self._placements)

    def placement(self, image: int) -> Placement:
        return self._placements[image]

    def node_of(self, image: int) -> int:
        return self._placements[image].node

    def core_of(self, image: int) -> int:
        return self._placements[image].core

    def socket_of(self, image: int) -> int:
        p = self._placements[image]
        return self.spec.node.socket_of(p.core)

    def same_node(self, a: int, b: int) -> bool:
        return self._placements[a].node == self._placements[b].node

    def same_socket(self, a: int, b: int) -> bool:
        pa, pb = self._placements[a], self._placements[b]
        return pa.node == pb.node and self.spec.node.socket_of(
            pa.core
        ) == self.spec.node.socket_of(pb.core)

    def images_on_node(self, node: int) -> list[int]:
        return [i for i, p in enumerate(self._placements) if p.node == node]

    def nodes_used(self) -> list[int]:
        """Distinct nodes hosting at least one image, ascending."""
        return sorted({p.node for p in self._placements})

    def intranode_sets(self, images: Iterable[int]) -> dict[int, list[int]]:
        """Group a subset of images by node — the paper's *intranode set*
        computation, performed at team-formation time (§IV-A)."""
        groups: dict[int, list[int]] = {}
        for img in images:
            groups.setdefault(self.node_of(img), []).append(img)
        for members in groups.values():
            members.sort()
        return groups
