"""Inter-node interconnect fabric (LogGP with per-NIC serialization).

The fabric charges two distinct costs for a message:

* **Injection** — the sender's NIC is a FIFO :class:`~repro.sim.primitives.Resource`;
  each message occupies it for ``gap + nbytes * inject_cost_per_byte``.
  Back-to-back sends from the eight images of a node therefore serialize,
  which is the physical effect behind the paper's observation that flat
  dissemination collapses when many images share a node.
* **Wire** — after injection the payload takes ``latency + nbytes/bandwidth``
  to land at the target, where a delivery callback fires (RDMA-style: no
  receiver CPU involvement).

Software per-message overhead (GASNet vs raw verbs vs MPI) is charged by
the conduit layer on the *sender's core*, not here.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..sim import Engine, Hold, Resource, SimEvent
from .spec import MachineSpec

__all__ = ["Interconnect"]


class Interconnect:
    """The cluster's network: one NIC resource per node plus LogGP timing."""

    def __init__(self, engine: Engine, spec: MachineSpec):
        self._engine = engine
        self._spec = spec
        self._nics = [
            Resource(engine, capacity=spec.network.nic_capacity, name=f"nic{n}")
            for n in range(spec.num_nodes)
        ]
        #: lifetime statistics, reset via :meth:`reset_counters`
        self.messages = 0
        self.bytes = 0

    def nic(self, node: int) -> Resource:
        return self._nics[node]

    def reset_counters(self) -> None:
        self.messages = 0
        self.bytes = 0

    def send(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> Iterator:
        """Transport generator: ``yield from`` by the sending process.

        The sender blocks through NIC injection (local completion — the
        source buffer is reusable when this generator returns); delivery
        at ``dst_node`` happens ``wire_time`` later via ``on_delivered``.
        Sending to the local node is a modeling error: the caller should
        have used the shared-memory fabric, and catching that here keeps
        hierarchy-aware code honest.
        """
        if src_node == dst_node:
            raise ValueError(
                f"Interconnect.send within node {src_node}; "
                "use SharedMemory for local transfers"
            )
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        net = self._spec.network
        self.messages += 1
        self.bytes += nbytes
        yield Hold(self._nics[src_node], net.inject_time(nbytes))
        if on_delivered is not None:
            self._engine.schedule(
                net.wire_time(nbytes), on_delivered, label=f"wire{src_node}->{dst_node}"
            )

    def send_async(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> SimEvent:
        """Fire-and-forget variant for callback-style callers.

        Returns an event that triggers at *local* completion (injection
        finished).  Used by the runtime's non-blocking put path.
        """
        if src_node == dst_node:
            raise ValueError(
                f"Interconnect.send within node {src_node}; "
                "use SharedMemory for local transfers"
            )
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        net = self._spec.network
        self.messages += 1
        self.bytes += nbytes

        def _after_injection() -> None:
            if on_delivered is not None:
                self._engine.schedule(
                    net.wire_time(nbytes),
                    on_delivered,
                    label=f"wire{src_node}->{dst_node}",
                )

        return self._nics[src_node].occupy(net.inject_time(nbytes), then=_after_injection)
