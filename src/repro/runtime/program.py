"""SPMD program execution: the world, the per-image context, the launcher.

This module is the public face of the runtime.  A CAF program is a
generator function ``main(ctx)`` executed once per image::

    def main(ctx):
        me = ctx.this_image()
        a = yield from ctx.allocate("a", (100,), dtype=np.float64)
        ctx.local(a)[:] = me
        yield from ctx.sync_all()
        if me == 1:
            row = yield from ctx.get(a, 2)      # one-sided read from image 2
        return me

    result = run_spmd(main, num_images=16, images_per_node=8)

Every operation that moves data or synchronizes is a generator (``yield
from``), because it takes simulated time; pure queries (``this_image``)
are plain calls.  Image indices in the public API are **1-based within
the current team**, exactly as in Coarray Fortran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..calibration import ConduitProfile
from ..collectives.macro import MacroCollectives
from ..collectives.reduce import REDUCE_OPS
from ..collectives.registry import resolve
from ..faults.manager import (
    STAT_FAILED_IMAGE,
    STAT_OK,
    STAT_STOPPED_IMAGE,
    STAT_UNLOCKED_FAILED_IMAGE,
    FailedImageError,
    FaultManager,
    ImageControlError,
    ImageLiveness,
    LockError,
    Stat,
    StoppedImageError,
)
from ..faults.schedule import FaultSchedule
from ..machine import Machine, MachineSpec, Placement, TrafficSnapshot, build_machine, paper_cluster
from ..sim import Engine, Process, SimEvent, Timeout, Wait
from ..teams.formation import form_team as _form_team
from ..teams.team import INITIAL_TEAM_NUMBER, TeamShared, TeamView
from .atomics import AtomicVar
from .coarray import Coarray
from .conduit import Conduit
from .config import UHCAF_2LEVEL, RuntimeConfig
from .events import EventVar
from .locks import LockVar
from .sync import MEMORY_FENCE_COST, PairwiseSync

__all__ = ["World", "CafContext", "SpmdResult", "RmaHandle", "run_spmd"]

#: request message size of a one-sided get
GET_REQUEST_NBYTES = 16


@dataclass
class RmaHandle:
    """Completion handle of a non-blocking RMA operation.

    ``source_done`` fires when the source buffer is reusable (injection
    finished); ``delivered`` fires when the payload is visible at the
    target (and, for gets, carries the fetched value).  Wait with
    :meth:`CafContext.wait_rma`.
    """

    source_done: SimEvent
    delivered: SimEvent


class World:
    """Everything shared by the images of one SPMD run."""

    def __init__(self, machine: Machine, config: RuntimeConfig,
                 jitter_seed: int = 0, trace: bool = False,
                 fault_schedule: Optional[FaultSchedule] = None):
        self.engine = machine.engine
        self.machine = machine
        self.config = config
        #: fault-injection manager, or None for the default (fault-free)
        #: path; a null schedule installs no manager so the run stays
        #: byte-identical to one with no schedule at all
        self.faults: Optional[FaultManager] = (
            FaultManager(self.engine, fault_schedule, machine.num_images)
            if fault_schedule is not None and not fault_schedule.is_null
            else None
        )
        self.conduit = Conduit(
            machine, config.conduit_profile,
            hierarchy_aware=config.hierarchy_aware, faults=self.faults,
        )
        #: macro-event coordinator — collapses provably-unobservable
        #: barrier windows into analytic wake events (see
        #: :mod:`repro.collectives.macro`); it self-disables whenever a
        #: monitor/trace/tiebreak/fault observer is attached, so it is
        #: always constructed
        self.macro = MacroCollectives(self)
        self.conduit.macro = self.macro
        self.initial_shared = TeamShared(
            engine=self.engine,
            topology=machine.topology,
            members=list(range(machine.num_images)),
            team_number=INITIAL_TEAM_NUMBER,
            parent=None,
            leader_strategy=config.leader_strategy,
        )
        #: normal-termination tracker — the third image state of F2018
        #: (stopped, vs. running and failed); always present, because any
        #: image may return from its program while teammates synchronize
        self.liveness = ImageLiveness(machine.num_images)
        self.pairwise = PairwiseSync(self.engine)
        self.coarrays: Dict[str, Coarray] = {}
        self.atomic_vars: Dict[str, AtomicVar] = {}
        self.event_vars: Dict[str, EventVar] = {}
        self.lock_vars: Dict[str, LockVar] = {}
        #: survivor-team re-formations, keyed by (parent uid, member tuple,
        #: team number): the first surviving arriver builds the TeamShared,
        #: the rest attach — deterministic because every survivor computes
        #: the same member list from the same failed set
        self._survivor_shared: Dict[tuple, TeamShared] = {}
        #: chronological (time, image, op, detail) records when tracing
        self.trace: Optional[List[Tuple[float, int, str, str]]] = (
            [] if trace else None
        )
        self._jitter_seed = jitter_seed
        self._jitter_rngs: Dict[int, Any] = {}

    @property
    def num_images(self) -> int:
        return self.machine.num_images

    def jitter_factor(self, proc: int) -> float:
        """Next OS-noise multiplier for image ``proc`` — uniform in
        [1, 1+jitter], from a per-image seeded stream (reproducible)."""
        jitter = self.config.compute_jitter
        if jitter <= 0.0:
            return 1.0
        rng = self._jitter_rngs.get(proc)
        if rng is None:
            rng = np.random.default_rng((self._jitter_seed, proc))
            self._jitter_rngs[proc] = rng
        return 1.0 + jitter * float(rng.random())


class CafContext:
    """One image's handle on the runtime — the lowered form of CAF's
    intrinsics and statements (the paper's §III subroutine interface)."""

    def __init__(self, world: World, proc: int):
        self.world = world
        self.proc = proc
        self._stack: List[TeamView] = [TeamView(world.initial_shared, proc, None)]
        self._sync_seen: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Plumbing shared with the collectives (duck-typed ctx protocol)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self.world.engine

    @property
    def machine(self) -> Machine:
        return self.world.machine

    @property
    def conduit(self) -> Conduit:
        return self.world.conduit

    @property
    def config(self) -> RuntimeConfig:
        return self.world.config

    @property
    def now(self) -> float:
        """Current simulated time (the microbenchmarks' stopwatch)."""
        return self.world.engine.now

    @property
    def faults(self) -> Optional[FaultManager]:
        """The run's fault manager, or None when no faults are injected.
        The collectives' failure-aware waits read this (duck-typed)."""
        return self.world.faults

    @property
    def macro(self) -> MacroCollectives:
        """The run's macro-event coordinator (duck-typed: barrier
        wrappers probe ``getattr(ctx, "macro", None)``, so test contexts
        without one simply stay fine-grained)."""
        return self.world.macro

    def compute_cost(self, flops: float) -> Timeout:
        """A yieldable command charging ``flops`` of local work at this
        image's backend-dependent compute rate (plus configured OS-noise
        jitter, if any)."""
        cmd = self.machine.compute(flops, efficiency=self.config.compute_efficiency)
        factor = self.world.jitter_factor(self.proc)
        if factor != 1.0:
            return Timeout(cmd.delay * factor)
        return cmd

    def _log(self, op: str, detail: str = "") -> None:
        """Append a trace record if the world is tracing (zero cost)."""
        if self.world.trace is not None:
            self.world.trace.append(
                (self.world.engine.now, self.proc + 1, op, detail)
            )

    # ------------------------------------------------------------------
    # Team queries (pure)
    # ------------------------------------------------------------------
    @property
    def current_team(self) -> TeamView:
        return self._stack[-1]

    @property
    def initial_team(self) -> TeamView:
        return self._stack[0]

    def this_image(self, team: Optional[TeamView] = None) -> int:
        """1-based image index in ``team`` (default: the current team)."""
        view = team if team is not None else self.current_team
        return view.shared.index_of(self.proc)

    def num_images(self, team: Optional[TeamView] = None) -> int:
        view = team if team is not None else self.current_team
        return view.size

    def team_id(self) -> int:
        """The current team's number (−1 for the initial team, as in OpenUH)."""
        return self.current_team.team_number

    def get_team(self, level: str = "current") -> TeamView:
        """``get_team`` intrinsic: the current, parent, or initial team."""
        if level == "current":
            return self.current_team
        if level == "initial":
            return self.initial_team
        if level == "parent":
            parent = self.current_team.parent_view
            # The initial team is its own parent, per the standard.
            return parent if parent is not None else self.initial_team
        raise ValueError(f"unknown team level {level!r}; use current|parent|initial")

    def image_index(self, team: TeamView, initial_index: int) -> int:
        """Index within ``team`` of the image whose *initial-team* index is
        ``initial_index``; 0 if it is not a member (CAF convention)."""
        proc = self.initial_team.shared.proc_of(initial_index)
        try:
            return team.shared.index_of(proc)
        except ValueError:
            return 0

    def global_image(self, index: Optional[int] = None,
                     team: Optional[TeamView] = None) -> int:
        """Initial-team index of team member ``index`` (default: me)."""
        view = team if team is not None else self.current_team
        proc = view.shared.proc_of(index) if index is not None else self.proc
        return self.initial_team.shared.index_of(proc)

    def _proc_of(self, image: int, team: Optional[TeamView] = None) -> int:
        view = team if team is not None else self.current_team
        return view.shared.proc_of(image)

    # ------------------------------------------------------------------
    # Coarray allocation and access
    # ------------------------------------------------------------------
    def allocate(self, name: str, shape: Tuple[int, ...], dtype: Any = np.float64,
                 fill: float = 0.0):
        """Collectively allocate (or attach to) a coarray; implies SYNC ALL.

        Must be executed by every image of the current team, like a
        Fortran ``allocate`` of a coarray.  Re-allocation with a different
        shape or dtype is an error.
        """
        registry = self.world.coarrays
        key = f"t{self.current_team.shared.uid}:{name}"
        existing = registry.get(key)
        if existing is None:
            registry[key] = Coarray(
                name, tuple(shape), dtype, self.world.num_images, fill=fill
            )
        else:
            if existing.shape != tuple(shape) or existing.dtype != np.dtype(dtype):
                raise ValueError(
                    f"coarray {name!r} re-allocated with mismatched "
                    f"shape/dtype: {existing.shape}/{existing.dtype} vs "
                    f"{tuple(shape)}/{np.dtype(dtype)}"
                )
        yield from self.sync_all()
        return registry[key]

    def local(self, coarray: Coarray) -> np.ndarray:
        """My local allocation of ``coarray`` (live view, zero cost)."""
        return coarray.local(self.proc)

    def put(self, coarray: Coarray, image: int, value: Any,
            index: Any = None, team: Optional[TeamView] = None):
        """``A(index)[image] = value``: one-sided write to ``image``'s copy.

        Blocks through source-side completion (the source buffer is
        reusable on return); the data lands at the target at delivery
        time, which a subsequent synchronization makes observable —
        exactly the CAF memory model.
        """
        dst = self._proc_of(image, team)
        nbytes = coarray.nbytes_of(index)
        self._log("put", f"{coarray.name}->img{image} {nbytes}B")
        frozen = np.array(value, copy=True) if isinstance(value, np.ndarray) else value
        yield from self.conduit.transfer(
            self.proc, dst, nbytes,
            on_delivered=lambda: coarray.write(dst, frozen, index),
            path="auto",
        )

    def put_nb(self, coarray: Coarray, image: int, value: Any,
               index: Any = None, team: Optional[TeamView] = None):
        """Non-blocking put: blocks only through posting the operation;
        returns an :class:`RmaHandle` (via ``yield from``).  The data
        lands at the target when ``handle.delivered`` fires; wait with
        :meth:`wait_rma` or rely on a subsequent synchronization."""
        dst = self._proc_of(image, team)
        nbytes = coarray.nbytes_of(index)
        self._log("put_nb", f"{coarray.name}->img{image} {nbytes}B")
        frozen = np.array(value, copy=True) if isinstance(value, np.ndarray) else value
        delivered = SimEvent(self.engine, name="put_nb.delivered")

        def deliver() -> None:
            coarray.write(dst, frozen, index)
            delivered.trigger()

        source_done = yield from self.conduit.transfer_nb(
            self.proc, dst, nbytes, on_delivered=deliver, path="auto"
        )
        return RmaHandle(source_done=source_done, delivered=delivered)

    def get_nb(self, coarray: Coarray, image: int, index: Any = None,
               team: Optional[TeamView] = None):
        """Non-blocking get: posts the read and returns an
        :class:`RmaHandle`; ``wait_rma`` returns the fetched value
        (snapshotted at the moment the response leaves the target)."""
        src = self._proc_of(image, team)
        nbytes = coarray.nbytes_of(index)
        self._log("get_nb", f"{coarray.name}<-img{image} {nbytes}B")
        delivered = SimEvent(self.engine, name="get_nb.delivered")
        if src == self.proc:
            delivered.trigger(coarray.read(src, index))
            done = SimEvent(self.engine)
            done.trigger()
            return RmaHandle(source_done=done, delivered=delivered)
        machine = self.machine
        ps = machine.topology.placement(src)
        pd = machine.topology.placement(self.proc)

        def respond() -> None:
            # RDMA-style response: target NIC streams the data back with
            # no target CPU involvement.
            value = coarray.read(src, index)
            machine.transfer_async(
                src, self.proc, nbytes,
                on_delivered=lambda: delivered.trigger(value),
            )

        source_done = yield from self.conduit.transfer_nb(
            self.proc, src, GET_REQUEST_NBYTES, on_delivered=respond,
            path="auto",
        )
        return RmaHandle(source_done=source_done, delivered=delivered)

    def wait_rma(self, handle: RmaHandle):
        """Block until a non-blocking operation's payload is delivered;
        returns the fetched value for gets (None for puts)."""
        value = yield Wait(handle.delivered)
        return value

    def get(self, coarray: Coarray, image: int, index: Any = None,
            team: Optional[TeamView] = None):
        """``value = A(index)[image]``: one-sided read; returns the data."""
        src = self._proc_of(image, team)
        if src == self.proc:
            return coarray.read(src, index)
        nbytes = coarray.nbytes_of(index)
        done = SimEvent(self.engine, name="get.done")
        # Request reaches the target's memory system...
        yield from self.conduit.transfer(
            self.proc, src, GET_REQUEST_NBYTES, on_delivered=None, path="auto"
        )
        # ...then the payload streams back (read at delivery time, so a
        # racing writer's last committed value is what we see).
        yield from self.conduit.transfer(
            src, self.proc, nbytes,
            on_delivered=lambda: done.trigger(coarray.read(src, index)),
            path="auto",
        )
        value = yield Wait(done)
        return value

    # ------------------------------------------------------------------
    # stat= semantics (Fortran 2018 failed-image handling)
    # ------------------------------------------------------------------
    def _catch_stat(self, stat: Optional[Stat], gen):
        """Run a synchronization/collective generator under ``stat=``
        semantics: an :class:`ImageControlError` (failed image, stopped
        image, lock condition) either lands in ``stat`` or propagates
        (error termination) when no ``stat`` was supplied — exactly the
        standard's dichotomy."""
        if self.world.faults is None and stat is None:
            result = yield from gen
            return result
        try:
            result = yield from gen
        except ImageControlError as err:
            gen.close()
            if stat is None:
                raise
            stat._set(err)
            return None
        if stat is not None:
            stat._clear()
        return result

    def _stat_guard(self, stat: Optional[Stat], view: TeamView, gen,
                    check_stopped: bool = False):
        """:meth:`_catch_stat` plus the *entry checks*: a team operation
        started after a member failed observes the failure immediately,
        even on images whose role in the algorithm never blocks (e.g. a
        broadcast source) — this is what makes failure detection a
        guarantee of the next synchronization, not of the next wait.

        Stopped-image detection (``check_stopped``) is entry-check-only,
        applies only to ``stat=``-bearing statements, and only to
        *synchronization* statements: a teammate's normal termination
        never wakes an in-flight wait (it bumps no epoch), a stat-less
        statement keeps the historical behavior (it may deadlock, and
        the deadlock analysis attributes it), and one-way collectives
        stay permissive — a broadcast source legitimately finishes its
        rounds and stops while receivers still drain their mailboxes.
        The failed check always precedes the stopped check —
        ``STAT_FAILED_IMAGE`` wins when a team has both.
        """
        shared = getattr(view, "shared", view)
        try:
            if self.world.faults is not None:
                self.world.faults.check_team(shared)
            if check_stopped and stat is not None:
                self.world.liveness.check_team(shared)
        except ImageControlError as err:
            gen.close()
            if stat is None:
                raise
            stat._set(err)
            return None
        result = yield from self._catch_stat(stat, gen)
        return result

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def sync_all(self, stat: Optional[Stat] = None):
        """``sync all``: barrier over the current team, using the
        configured strategy.  ``stat`` receives ``STAT_FAILED_IMAGE``
        instead of raising when a team member has failed."""
        self._log("sync_all", f"team{self.current_team.shared.uid}")
        yield from self.sync_team(self.current_team, stat=stat)

    def sync_team(self, team: TeamView, stat: Optional[Stat] = None):
        """``sync team(T)``: barrier over team ``T`` (must be the current
        team or an ancestor/descendant this image belongs to)."""
        barrier = resolve("barrier", self.config.barrier)
        yield from self._stat_guard(stat, team, barrier(self, team),
                                    check_stopped=True)

    def sync_images(self, images: Union[str, Sequence[int]],
                    stat: Optional[Stat] = None):
        """``sync images(L)``: pairwise rendezvous with each image in
        ``L`` (current-team indices), or with everyone for ``'*'``.
        With ``stat``, a failed partner reports ``STAT_FAILED_IMAGE``
        (naming global image indices) instead of raising."""
        view = self.current_team
        if isinstance(images, str):
            if images != "*":
                raise ValueError(f"sync images: expected indices or '*', got {images!r}")
            peers = [view.shared.proc_of(i) for i in range(1, view.size + 1)]
        else:
            peers = [view.shared.proc_of(i) for i in images]
        gen = self.world.pairwise.sync_images(
            self.conduit, self.proc, peers, self._sync_seen,
            faults=self.world.faults,
        )
        if stat is not None:
            # Entry checks scoped to the named peers: failed first (the
            # standard's priority), then normally-stopped.
            try:
                if self.world.faults is not None:
                    self.world.faults.check_images(peers)
                self.world.liveness.check_images(
                    p for p in peers if p != self.proc
                )
            except ImageControlError as err:
                gen.close()
                stat._set(err)
                return None
        yield from self._catch_stat(stat, gen)

    def sync_memory(self):
        """``sync memory``: local fence."""
        yield Timeout(MEMORY_FENCE_COST)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def co_reduce(self, value: Any, op: str = "sum",
                  result_image: Optional[int] = None,
                  team: Optional[TeamView] = None,
                  stat: Optional[Stat] = None):
        """Team reduction with the configured strategy; returns the result
        (on every image, or only on ``result_image`` if given).

        ``team`` selects a team other than the current one — the CAF 2.0
        style team-qualified collective the HPC Challenge/HPL ports use
        to avoid a ``change team`` round-trip per call.  ``stat``
        receives ``STAT_FAILED_IMAGE`` instead of raising when a team
        member has failed.

        ``op`` is a named reduction or a user-supplied binary callable
        (F2018 ``co_reduce`` with a user ``operation``); unknown names
        are rejected here, before any image communicates.
        """
        if not callable(op) and op not in REDUCE_OPS and op != "maxloc":
            raise ValueError(
                f"unknown reduce op {op!r} (not callable either); "
                f"have {sorted(REDUCE_OPS) + ['maxloc']}"
            )
        fn = resolve("reduce", self.config.reduce)
        view = team if team is not None else self.current_team
        result = yield from self._stat_guard(
            stat, view, fn(self, view, value, op, result_image=result_image)
        )
        return result

    def co_sum(self, value: Any, result_image: Optional[int] = None,
               team: Optional[TeamView] = None, stat: Optional[Stat] = None):
        result = yield from self.co_reduce(value, "sum", result_image, team,
                                           stat=stat)
        return result

    def co_max(self, value: Any, result_image: Optional[int] = None,
               team: Optional[TeamView] = None, stat: Optional[Stat] = None):
        result = yield from self.co_reduce(value, "max", result_image, team,
                                           stat=stat)
        return result

    def co_min(self, value: Any, result_image: Optional[int] = None,
               team: Optional[TeamView] = None, stat: Optional[Stat] = None):
        result = yield from self.co_reduce(value, "min", result_image, team,
                                           stat=stat)
        return result

    def co_broadcast(self, value: Any, source_image: int,
                     team: Optional[TeamView] = None,
                     stat: Optional[Stat] = None):
        """Team broadcast from ``source_image``; returns the payload
        everywhere.  ``team`` and ``stat`` work as in :meth:`co_reduce`."""
        fn = resolve("broadcast", self.config.broadcast)
        view = team if team is not None else self.current_team
        result = yield from self._stat_guard(
            stat, view, fn(self, view, value, source_image)
        )
        return result

    def co_alltoall(self, payloads, team: Optional[TeamView] = None,
                    stat: Optional[Stat] = None):
        """Personalized all-to-all: ``payloads`` maps every team index
        (dict, or a list in index order) to that member's datum; returns
        the dict of received data keyed by sender.  (Extension — the
        methodology's stress test; see collectives.alltoall.)"""
        fn = resolve("alltoall", self.config.alltoall)
        view = team if team is not None else self.current_team
        result = yield from self._stat_guard(stat, view, fn(self, view, payloads))
        return result

    def co_allgather(self, value: Any, team: Optional[TeamView] = None,
                     stat: Optional[Stat] = None):
        """Gather every member's contribution; returns the list ordered
        by team index, on every image.  (Extension beyond the paper's
        three collectives — the natural fourth member of the family,
        with the same flat/two-level strategy split.)"""
        fn = resolve("allgather", self.config.allgather)
        view = team if team is not None else self.current_team
        result = yield from self._stat_guard(stat, view, fn(self, view, value))
        return result

    # ------------------------------------------------------------------
    # Teams
    # ------------------------------------------------------------------
    def form_team(self, team_number: int, new_index: Optional[int] = None):
        """``form team(team_number, T [, new_index=...])``; returns the new
        team's view (inert until ``change_team``)."""
        view = yield from _form_team(self, self.current_team, team_number, new_index)
        return view

    def change_team(self, team: TeamView):
        """``change team(T)``: make ``T`` current; implicit sync of ``T``."""
        if team.proc != self.proc:
            raise ValueError("change_team: view belongs to another image")
        if team.parent_view is not self.current_team:
            raise ValueError(
                "change_team: team was not formed from the current team"
            )
        self._stack.append(team)
        yield from self.sync_team(team)

    def end_team(self):
        """``end team``: implicit sync of the current team, then pop."""
        if len(self._stack) == 1:
            raise RuntimeError("end_team without matching change_team")
        yield from self.sync_team(self.current_team)
        self._stack.pop()

    # ------------------------------------------------------------------
    # Failed images (Fortran 2018 fail-stop intrinsics)
    # ------------------------------------------------------------------
    def image_status(self, image: int, team: Optional[TeamView] = None) -> int:
        """``image_status(image)``: :data:`~repro.faults.STAT_OK`,
        :data:`~repro.faults.STAT_FAILED_IMAGE`, or
        :data:`~repro.faults.STAT_STOPPED_IMAGE` for one member of the
        current (or given) team.  Pure query, zero cost."""
        proc = self._proc_of(image, team)
        faults = self.world.faults
        if faults is not None and faults.is_failed(proc):
            return STAT_FAILED_IMAGE
        if self.world.liveness.is_stopped(proc):
            return STAT_STOPPED_IMAGE
        return STAT_OK

    def failed_images(self, team: Optional[TeamView] = None) -> List[int]:
        """``failed_images()``: sorted team indices of the members known
        to have failed (empty without fault injection)."""
        faults = self.world.faults
        if faults is None:
            return []
        view = team if team is not None else self.current_team
        return faults.failed_team_indices(view.shared)

    def stopped_images(self, team: Optional[TeamView] = None) -> List[int]:
        """``stopped_images()``: sorted team indices of the members that
        have initiated *normal* termination — disjoint from
        :meth:`failed_images` (fail-stop and stop are distinct states)."""
        view = team if team is not None else self.current_team
        return self.world.liveness.stopped_team_indices(view.shared)

    def survivor_team(self, team_number: Optional[int] = None):
        """Re-form the current team without its failed members; returns a
        new :class:`TeamView` (use with ``change_team`` as usual).

        Every survivor computes the same member list locally from the
        fault manager's failed set — no message exchange can depend on a
        dead root — and :class:`~repro.teams.hierarchy.HierarchyInfo` is
        rebuilt over the survivors, which re-elects a node leader
        wherever the old leader died.  Implies a sync of the new team
        (which raises/reports on any *further* failure).
        """
        view = self.current_team
        shared = view.shared
        faults = self.world.faults
        failed = faults.failed_procs if faults is not None else frozenset()
        members = [p for p in shared.members if p not in failed]
        if self.proc not in members:
            raise RuntimeError("survivor_team called from a failed image")
        number = team_number if team_number is not None else shared.team_number
        key = (shared.uid, tuple(members), number)
        registry = self.world._survivor_shared
        new_shared = registry.get(key)
        if new_shared is None:
            new_shared = TeamShared(
                engine=self.engine,
                topology=self.machine.topology,
                members=members,
                team_number=number,
                parent=shared,
                leader_strategy=self.config.leader_strategy,
                formation_seq=shared.formation_counter,
            )
            registry[key] = new_shared
        new_view = TeamView(new_shared, self.proc, parent_view=view)
        self._log("survivor_team",
                  f"team{shared.uid}->team{new_shared.uid} "
                  f"({len(members)}/{shared.size} survive)")
        yield from self.sync_team(new_view)
        return new_view

    # ------------------------------------------------------------------
    # Atomics & events
    # ------------------------------------------------------------------
    def atomic_var(self, name: str, initial: int = 0):
        """Collectively create/attach an atomic integer coarray; implies
        SYNC ALL so no image races the creation."""
        registry = self.world.atomic_vars
        if name not in registry:
            registry[name] = AtomicVar(self.conduit, name, initial=initial)
        yield from self.sync_all()
        return registry[name]

    def atomic_add(self, var: AtomicVar, image: int, value: int):
        yield from var.update(self.proc, self._proc_of(image), "add", value)

    def atomic_op(self, var: AtomicVar, image: int, op: str, value: int):
        yield from var.update(self.proc, self._proc_of(image), op, value)

    def atomic_define(self, var: AtomicVar, image: int, value: int):
        yield from var.define(self.proc, self._proc_of(image), value)

    def atomic_ref(self, var: AtomicVar) -> int:
        """Local read of my own atomic (plain load)."""
        return var.value(self.proc)

    def atomic_fetch_add(self, var: AtomicVar, image: int, value: int):
        old = yield from var.fetch_update(self.proc, self._proc_of(image), "add", value)
        return old

    def atomic_cas(self, var: AtomicVar, image: int, expected: int, desired: int):
        old = yield from var.compare_and_swap(
            self.proc, self._proc_of(image), expected, desired
        )
        return old

    def event_var(self, name: str, stat: Optional[Stat] = None):
        """Collectively create/attach a team-scoped event coarray;
        implies SYNC ALL (``stat`` guards that barrier)."""
        registry = self.world.event_vars
        shared = self.current_team.shared
        key = f"t{shared.uid}:{name}"
        if key not in registry:
            registry[key] = EventVar(self.conduit, name, shared=shared)
        yield from self.sync_all(stat=stat)
        return registry[key]

    def event_post(self, var: EventVar, image: int,
                   stat: Optional[Stat] = None):
        """``event post(ev[image])``: bump the owner's count.  On a
        hierarchy-aware runtime a cross-node post is leader-mediated
        (see :class:`~repro.runtime.events.EventVar`).  ``image`` is an
        index in the variable's own team.  A failed owner raises/reports
        ``STAT_FAILED_IMAGE``; a normally-stopped owner reports
        ``STAT_STOPPED_IMAGE`` when ``stat`` is supplied (and is
        silently tolerated otherwise — the count lands, nobody reads it)."""
        dst = (var.shared.proc_of(image) if var.shared is not None
               else self._proc_of(image))
        self._log("event_post", f"{var.name}[{image}]")

        def guarded():
            faults = self.world.faults
            if faults is not None and faults.is_failed(dst):
                raise FailedImageError([dst + 1])
            if stat is not None and self.world.liveness.is_stopped(dst):
                raise StoppedImageError([dst + 1])
            yield from var.post(self.proc, dst, faults=faults)

        yield from self._catch_stat(stat, guarded())

    def event_wait(self, var: EventVar, until_count: int = 1,
                   stat: Optional[Stat] = None):
        """``event wait(ev, until_count=c)`` on my own count; consumes
        the posts.  Failure-aware on team-scoped variables: a teammate's
        fail-stop lands in ``stat``/raises instead of starving the wait."""
        self._log("event_wait", f"{var.name} until={until_count}")
        yield from self._catch_stat(
            stat, var.wait(self.proc, until_count, faults=self.world.faults)
        )

    def event_query(self, var: EventVar) -> int:
        return var.pending(self.proc)

    # ------------------------------------------------------------------
    # Locks (F2008/F2018 lock_type)
    # ------------------------------------------------------------------
    def lock_var(self, name: str, stat: Optional[Stat] = None):
        """Collectively create/attach a team-scoped lock coarray;
        implies SYNC ALL (``stat`` guards that barrier)."""
        registry = self.world.lock_vars
        shared = self.current_team.shared
        key = f"t{shared.uid}:{name}"
        if key not in registry:
            registry[key] = LockVar(self.conduit, name, shared=shared)
        yield from self.sync_all(stat=stat)
        return registry[key]

    def lock(self, var: LockVar, image: int, team: Optional[TeamView] = None,
             blocking: bool = True, stat: Optional[Stat] = None):
        """``lock(l[image])``: acquire; returns True when acquired.

        ``blocking=False`` is the ``ACQUIRED_LOCK=`` form: a contended
        acquire returns False immediately (``stat`` receives
        ``STAT_LOCKED`` when supplied).  Acquiring over a fail-stopped
        holder succeeds with ``STAT_UNLOCKED_FAILED_IMAGE`` — an error
        termination without ``stat``, since the protected state may be
        torn.  ``image`` resolves in the variable's own team when it has
        one, else in ``team``/the current team."""
        home = (var.shared.proc_of(image) if var.shared is not None
                else self._proc_of(image, team))
        self._log("lock", f"{var.name}[{image}]")
        if stat is not None:
            stat._clear()
        try:
            faults = self.world.faults
            if faults is not None:
                faults.check_images([home])
            if stat is not None and home != self.proc:
                self.world.liveness.check_images([home])
            acquired, code, failed = yield from var.acquire(
                self.proc, home, blocking=blocking, faults=faults
            )
        except ImageControlError as err:
            if stat is None:
                raise
            stat._set(err)
            return False
        if code != STAT_OK:
            if stat is not None:
                stat.code = code
                stat.failed_indices = tuple(failed)
            elif code == STAT_UNLOCKED_FAILED_IMAGE:
                raise LockError(
                    f"lock {var.name!r} acquired after its holder "
                    f"image{failed[0]} failed (STAT_UNLOCKED_FAILED_IMAGE)",
                    code=STAT_UNLOCKED_FAILED_IMAGE,
                    failed_indices=failed,
                )
            # contended non-blocking without stat: the plain
            # ACQUIRED_LOCK= form — just report False
        return acquired

    def unlock(self, var: LockVar, image: int, team: Optional[TeamView] = None,
               stat: Optional[Stat] = None):
        """``unlock(l[image])``: release (must be the holder);
        ``stat`` receives ``STAT_UNLOCKED`` when not the holder.

        A *stopped* home is deliberately not reported here: the release
        must still land (the caller owns the word, and skipping it would
        wedge every blocked contender on a reporting-only condition) —
        a stopped home surfaces on the acquire side instead."""
        home = (var.shared.proc_of(image) if var.shared is not None
                else self._proc_of(image, team))
        self._log("unlock", f"{var.name}[{image}]")

        def guarded():
            faults = self.world.faults
            if faults is not None:
                faults.check_images([home])
            yield from var.release(self.proc, home)

        yield from self._catch_stat(stat, guarded())

    # ------------------------------------------------------------------
    # Critical construct (F2008/F2018)
    # ------------------------------------------------------------------
    def critical_begin(self, name: str = "critical",
                       stat: Optional[Stat] = None):
        """Enter the named ``critical`` construct: at most one image of
        the current team executes the bracketed code at a time.  Lowered
        (as in OpenUH) to a runtime lock homed on team index 1.  Pair
        with :meth:`critical_end`; distinct ``name``\\ s are independent
        constructs, as distinct CRITICAL blocks are in Fortran.  Returns
        True when entered (F2018: ``stat`` reports lock conditions —
        ``STAT_UNLOCKED_FAILED_IMAGE`` when the previous occupant
        fail-stopped inside the construct)."""
        registry = self.world.lock_vars
        shared = self.current_team.shared
        key = f"__critical__t{shared.uid}:{name}"
        var = registry.get(key)
        if var is None:
            # First arrival creates the underlying lock; no collective
            # allocation is needed (the construct is statically named).
            var = registry[key] = LockVar(
                self.conduit, f"__critical__{name}", shared=shared
            )
        self._log("critical", name)
        entered = yield from self.lock(var, 1, stat=stat)
        return entered

    def critical_end(self, name: str = "critical",
                     stat: Optional[Stat] = None):
        """Leave the named ``critical`` construct."""
        shared = self.current_team.shared
        var = self.world.lock_vars[f"__critical__t{shared.uid}:{name}"]
        yield from self.unlock(var, 1, stat=stat)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def compute(self, flops: float = 0.0, seconds: float = 0.0):
        """Charge local computation: ``flops`` at the backend rate and/or a
        flat ``seconds``."""
        if flops > 0.0:
            yield self.compute_cost(flops)
        if seconds > 0.0:
            yield Timeout(seconds)
        if flops <= 0.0 and seconds <= 0.0:
            yield Timeout(0.0)


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    #: simulated completion time of the whole program (seconds)
    time: float
    #: per-image return values of ``main``, ordered by initial image index
    results: List[Any]
    #: cumulative fabric traffic over the run
    traffic: TrafficSnapshot
    #: the world, for post-mortem inspection (coarrays, counters, teams)
    world: World

    @property
    def trace(self) -> Optional[List[Tuple[float, int, str, str]]]:
        """Chronological (time, image, op, detail) records, when the run
        was launched with ``trace=True``."""
        return self.world.trace


def _finishing(gen, liveness, proc: int):
    """Wrap an image's main generator so its *normal* end of execution
    marks the image stopped (F2018: a normally-terminated image is a
    "stopped image", distinct from a fail-stopped one).  ``yield from``
    is transparent, so wrapping changes no schedule; a fail-stop kill
    (GeneratorExit) or an escaping error skips the mark."""
    result = yield from gen
    liveness.mark_stopped(proc)
    return result


def run_spmd(
    main: Callable[[CafContext], Any],
    num_images: Optional[int] = None,
    images_per_node: Optional[int] = None,
    spec: Optional[MachineSpec] = None,
    machine: Optional[Machine] = None,
    config: RuntimeConfig = UHCAF_2LEVEL,
    placements: Optional[Sequence[Placement]] = None,
    args: Tuple = (),
    max_events: Optional[int] = None,
    trace: bool = False,
    jitter_seed: int = 0,
    tiebreak_seed: Optional[int] = None,
    monitor: Optional[Any] = None,
    faults: Optional[FaultSchedule] = None,
    macro_events: Optional[bool] = None,
) -> SpmdResult:
    """Run ``main(ctx, *args)`` as an SPMD program on a simulated cluster.

    Either supply a prebuilt ``machine`` or let this build one from
    ``spec`` (default: the paper's cluster, sized to fit) with
    ``num_images`` and ``images_per_node``/``placements``.  ``trace=True``
    records every logged runtime operation on ``result.trace``;
    ``jitter_seed`` selects the OS-noise stream when the config enables
    ``compute_jitter``.

    ``tiebreak_seed`` fuzzes the engine's same-instant event order (see
    :mod:`repro.verify`): ``None`` keeps the historical insertion-order
    schedule.  ``monitor`` installs a concurrency monitor (e.g.
    :class:`repro.verify.HBMonitor`) on the engine for the duration of
    the run.

    ``faults`` installs a deterministic :class:`repro.faults.FaultSchedule`:
    listed images fail-stop at their times (their result is the
    :data:`repro.faults.FAILED` sentinel) and survivors observe
    ``STAT_FAILED_IMAGE`` at their next synchronization — via ``stat=``
    arguments, or as a raised
    :class:`repro.faults.FailedImageError` without one.  A null schedule
    (or None) leaves the run byte-identical to the fault-free runtime.

    ``macro_events`` overrides ``config.macro_events`` for this run:
    False forces every barrier through the fine-grained path, True
    re-enables the (default-on) macro-event collapse.  The result is
    identical either way — macro-events are a scheduling optimization —
    so this knob exists for A/B verification and benchmarks.
    """
    if macro_events is not None:
        config = config.with_(macro_events=macro_events)
    if machine is None:
        if num_images is None:
            raise ValueError("need num_images (or a prebuilt machine)")
        if spec is None:
            ipn = images_per_node or 1
            needed = -(-num_images // ipn)
            spec = paper_cluster(max(needed, 1))
        engine_kwargs: dict = {}
        if max_events is not None:
            engine_kwargs["max_events"] = max_events
        if tiebreak_seed is not None:
            engine_kwargs["tiebreak_seed"] = tiebreak_seed
        engine = Engine(**engine_kwargs)
        machine = build_machine(
            engine, spec, num_images,
            images_per_node=images_per_node, placements=placements,
        )
    else:
        engine = machine.engine
        if tiebreak_seed is not None and engine.tiebreak_seed != tiebreak_seed:
            raise ValueError(
                "tiebreak_seed must be passed to the prebuilt machine's "
                "Engine, not to run_spmd"
            )

    if monitor is not None:
        monitor.attach(machine.num_images)
        engine.monitor = monitor

    world = World(machine, config, jitter_seed=jitter_seed, trace=trace,
                  fault_schedule=faults)
    processes = []
    for proc in range(machine.num_images):
        ctx = CafContext(world, proc)
        gen = _finishing(main(ctx, *args), world.liveness, proc)
        processes.append(Process(engine, gen, name=f"image{proc + 1}", actor=proc))
    if world.faults is not None:
        world.faults.arm(processes)
    final_time = engine.run()
    return SpmdResult(
        time=final_time,
        results=[p.result for p in processes],
        traffic=machine.traffic(),
        world=world,
    )
