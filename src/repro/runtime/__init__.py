"""The CAF runtime: conduits, coarrays, RMA, synchronization, SPMD launch.

This package is the reproduction's stand-in for the UHCAF runtime layer
of the OpenUH compiler: the subroutines that lowered team constructs and
coarray accesses call into (§III of the paper).
"""

from .atomics import AtomicVar
from .coarray import Coarray
from .conduit import Conduit
from .config import (
    CAF20_GFORTRAN,
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    NAMED_CONFIGS,
    OPENMPI_GCC,
    RuntimeConfig,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)
from .events import EventVar
from .locks import LockVar
from .program import CafContext, RmaHandle, SpmdResult, World, run_spmd
from .sync import PairwiseSync

__all__ = [
    "AtomicVar",
    "Coarray",
    "Conduit",
    "EventVar",
    "LockVar",
    "RmaHandle",
    "PairwiseSync",
    "CafContext",
    "SpmdResult",
    "World",
    "run_spmd",
    "RuntimeConfig",
    "UHCAF_2LEVEL",
    "UHCAF_1LEVEL",
    "GASNET_IB_DISSEMINATION",
    "CAF20_OPENUH",
    "CAF20_GFORTRAN",
    "OPENMPI_GCC",
    "NAMED_CONFIGS",
]
