"""Fortran 2015 event variables (``event_type`` coarrays).

An event variable is a counting semaphore owned by one image:
``event post(ev[k])`` atomically increments image *k*'s count from any
image; ``event wait(ev, until_count=c)`` blocks the owner until its count
reaches *c*, then consumes (decrements) it.  The paper's runtime builds
its point-to-point notifications on the same counter machinery, so this
module is both a public feature and the substrate for ``sync images``.
"""

from __future__ import annotations

from typing import Iterator

from ..sim import Cell, WaitFor
from .conduit import Conduit

__all__ = ["EventVar", "EVENT_NBYTES"]

EVENT_NBYTES = 8


class EventVar:
    """One event count per image."""

    def __init__(self, conduit: Conduit, name: str):
        self._conduit = conduit
        self.name = name
        engine = conduit.machine.engine
        self._counts = [
            Cell(engine, 0, name=f"{name}.count[{p}]")
            for p in range(conduit.machine.num_images)
        ]
        # Posts consumed so far by each owner; count - consumed = pending.
        self._consumed = [0] * conduit.machine.num_images

    def pending(self, proc: int) -> int:
        """Unconsumed posts at image ``proc`` (its ``event_query`` value)."""
        return self._counts[proc].value - self._consumed[proc]

    def post(self, src_proc: int, dst_proc: int, path: str = "auto") -> Iterator:
        """``event post(ev[dst])`` issued by ``src_proc``; one-way costed."""
        cell = self._counts[dst_proc]
        yield from self._conduit.transfer(
            src_proc, dst_proc, EVENT_NBYTES,
            on_delivered=lambda: cell.add(1), path=path,
        )

    def wait(self, proc: int, until_count: int = 1) -> Iterator:
        """``event wait(ev, until_count=c)`` at the owning image.

        Blocks until ``c`` unconsumed posts exist, then consumes them all
        (the F2015 semantics: the wait consumes ``until_count`` posts).
        """
        if until_count < 1:
            raise ValueError(f"until_count must be >= 1, got {until_count}")
        threshold = self._consumed[proc] + until_count
        yield WaitFor(self._counts[proc], lambda v, t=threshold: v >= t)
        self._consumed[proc] = threshold
