"""Fortran 2018 event variables (``event_type`` coarrays).

An event variable is a counting semaphore owned by one image:
``event post(ev[k])`` atomically increments image *k*'s count from any
image; ``event wait(ev, until_count=c)`` blocks the owner until its count
reaches *c*, then consumes (decrements) it.  The paper's runtime builds
its point-to-point notifications on the same counter machinery, so this
module is both a public feature and the substrate for ``sync images``.

Hierarchy awareness (the paper's §IV methodology applied to
notifications): on a hierarchy-aware, team-scoped variable, a cross-node
post is **leader-mediated** — the single interconnect message targets
the destination's *node leader*, whose conduit relays the bump to the
owner through a direct shared-memory store.  Node leaders thereby stay
the only interconnect endpoints (one NIC queue pair per node, as in the
two-level collectives), and intra-node posts never touch the conduit's
loopback path at all.  The sender→owner happens-before edge is
preserved across the relay: the delivery callback is wrapped against
the *original* source before the first hop is issued.

Fault integration (F2018): posts targeting a failed image raise/report
``STAT_FAILED_IMAGE`` instead of silently bumping a counter nobody will
ever consume, and waits on a team-scoped variable are failure-aware —
a teammate's fail-stop wakes the waiter with ``STAT_FAILED_IMAGE``
rather than leaving it starved forever.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..faults.manager import FailedImageError
from ..sim import Cell, WaitFor
from .conduit import Conduit

__all__ = ["EventVar", "EVENT_NBYTES"]

EVENT_NBYTES = 8


class EventVar:
    """One event count per image.

    ``shared`` scopes the variable to one team (counts exist only for
    the team's members, under team-qualified names, and the hierarchy
    metadata enables leader-mediated posts); ``None`` gives the
    historical global variable spanning every image.
    """

    def __init__(self, conduit: Conduit, name: str, shared=None):
        self._conduit = conduit
        self.name = name
        self.shared = shared
        engine = conduit.machine.engine
        if shared is None:
            procs = list(range(conduit.machine.num_images))
            prefix = name
        else:
            procs = list(shared.members)
            prefix = f"t{shared.uid}.{name}"

        def _meta(p: int) -> dict:
            meta = {"kind": "event", "var": name}
            if shared is not None:
                meta["team"] = shared
                meta["index"] = shared.proc_to_index[p]
            return meta

        self._counts: Dict[int, Cell] = {
            p: Cell(engine, 0, name=f"{prefix}.count[{p}]", meta=_meta(p))
            for p in procs
        }
        # Posts consumed so far by each owner; count - consumed = pending.
        self._consumed: Dict[int, int] = {p: 0 for p in procs}

    def pending(self, proc: int) -> int:
        """Unconsumed posts at image ``proc`` (its ``event_query`` value)."""
        return self._counts[proc].value - self._consumed[proc]

    def _relay_leader(self, src_proc: int, dst_proc: int,
                      faults) -> Optional[int]:
        """The node leader that should mediate a post ``src → dst``, or
        ``None`` when the post goes direct: same node, unscoped or
        hierarchy-unaware variable, leader coincides with an endpoint,
        or the leader itself is dead (a dead mediator must not swallow
        live notifications)."""
        conduit = self._conduit
        shared = self.shared
        if shared is None or not conduit.hierarchy_aware:
            return None
        placements = conduit._placements
        if placements[src_proc].node == placements[dst_proc].node:
            return None
        hierarchy = shared.hierarchy
        dst_index = shared.proc_to_index[dst_proc]
        leader_proc = shared.proc_of(hierarchy.leader_of[dst_index])
        if leader_proc in (src_proc, dst_proc):
            return None
        if faults is not None and faults.is_failed(leader_proc):
            return None
        return leader_proc

    def post(self, src_proc: int, dst_proc: int, path: str = "auto",
             faults=None) -> Iterator:
        """``event post(ev[dst])`` issued by ``src_proc``; one-way costed.

        Raises :class:`~repro.faults.manager.FailedImageError` when the
        owner has fail-stopped (the caller maps it to ``stat=``).
        """
        if faults is not None and faults.is_failed(dst_proc):
            raise FailedImageError([dst_proc + 1])
        cell = self._counts[dst_proc]
        conduit = self._conduit

        def bump() -> None:
            cell.add(1)

        leader_proc = self._relay_leader(src_proc, dst_proc, faults)
        if leader_proc is None:
            yield from conduit.transfer(
                src_proc, dst_proc, EVENT_NBYTES,
                on_delivered=bump, path=path,
            )
            return

        # The relay's second hop completes through a delivery callback the
        # macro-event eligibility sweep cannot account for — pin all
        # subsequent barrier windows to the fine-grained path.
        conduit.note_async()

        # Leader-mediated cross-node post.  Wrap the final effect against
        # the ORIGINAL endpoints once, here: the fault filter must ask
        # whether the owner (not the leader) is dead, and the monitor
        # must draw the src→dst happens-before edge even though the
        # bytes arrive via the leader's core.
        final = bump
        if faults is not None:
            final = faults.filter_delivery(dst_proc, final)
        final = conduit._monitored_delivery(src_proc, dst_proc, final)
        machine = conduit.machine
        placements = conduit._placements
        leader_placement = placements[leader_proc]
        dst_placement = placements[dst_proc]

        def relay() -> None:
            # The leader's runtime forwards the bump with a direct
            # shared-memory store — the hierarchy-aware intra-node hop.
            conduit.counts["direct"] += 1
            machine.shared_memory.transfer_async(
                dst_placement.node, leader_placement.core,
                dst_placement.core, EVENT_NBYTES, on_visible=final,
            )

        yield from conduit.transfer(
            src_proc, leader_proc, EVENT_NBYTES,
            on_delivered=relay, path="remote",
        )

    def wait(self, proc: int, until_count: int = 1, faults=None) -> Iterator:
        """``event wait(ev, until_count=c)`` at the owning image.

        Blocks until ``c`` unconsumed posts exist, then consumes them all
        (the F2015 semantics: the wait consumes ``until_count`` posts).
        On a team-scoped variable with a fault manager installed the
        wait is failure-aware: any teammate's fail-stop raises
        :class:`~repro.faults.manager.FailedImageError` (conservative —
        a starved wait cannot know *which* teammate owed it the post).
        """
        if until_count < 1:
            raise ValueError(f"until_count must be >= 1, got {until_count}")
        cell = self._counts[proc]
        threshold = self._consumed[proc] + until_count

        def pred(v, t=threshold):
            return v >= t

        if faults is None or self.shared is None:
            yield WaitFor(cell, pred)
        else:
            yield from faults.wait_interruptible(
                cell, pred,
                check=lambda: faults.check_team(self.shared),
            )
        self._consumed[proc] = threshold
