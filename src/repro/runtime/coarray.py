"""Coarrays: NumPy-backed shared data entities with cosubscript access.

A coarray in CAF is declared with a ``codimension`` — every image holds a
same-shaped local allocation, and ``A(:)[k]`` names image *k*'s copy.  We
reproduce that as one NumPy array per image inside a single
:class:`Coarray` object; the *data plane* is real (puts and gets move
actual array contents, so collective results can be verified bit-for-bit
against NumPy references) while the *time plane* is charged by the
conduit according to payload size and placement.

Coarray allocation in Fortran is collective with an implicit barrier;
:meth:`repro.runtime.program.CafContext.allocate` reproduces that.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

__all__ = ["Coarray"]

Index = Union[int, slice, Tuple[Any, ...]]


class Coarray:
    """A coarray: ``num_procs`` local NumPy allocations of identical shape.

    Internally indexed by *global process id* (0-based); the public
    runtime API translates team-relative, 1-based image indices before
    reaching this class.
    """

    def __init__(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: Any,
        num_procs: int,
        fill: float = 0.0,
    ):
        if num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {num_procs}")
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._data = [
            np.full(self.shape, fill, dtype=self.dtype) for _ in range(num_procs)
        ]

    @property
    def num_procs(self) -> int:
        return len(self._data)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def local(self, proc: int) -> np.ndarray:
        """Image ``proc``'s local allocation (a live view — writes stick)."""
        return self._data[proc]

    # ------------------------------------------------------------------
    # Data-plane operations (costs are charged by the caller)
    # ------------------------------------------------------------------
    def nbytes_of(self, index: Optional[Index]) -> int:
        """Payload size in bytes of the selection ``index`` (whole array if None)."""
        if index is None:
            return int(np.prod(self.shape)) * self.itemsize
        # Resolve against a zero-copy dummy view to avoid materializing data.
        sel = self._data[0][index]
        return int(np.asarray(sel).size) * self.itemsize

    def read(self, proc: int, index: Optional[Index] = None) -> np.ndarray:
        """Copy out a selection of image ``proc``'s data (get data plane)."""
        arr = self._data[proc]
        if index is None:
            return arr.copy()
        return np.array(arr[index], copy=True)

    def write(self, proc: int, value: Any, index: Optional[Index] = None) -> None:
        """Store ``value`` into a selection of image ``proc``'s data (put
        data plane).  Shape mismatches raise — a silent broadcastable
        surprise inside a simulated RMA would be very hard to debug."""
        arr = self._data[proc]
        if index is None:
            src = np.asarray(value, dtype=self.dtype)
            if src.shape not in ((), arr.shape):
                raise ValueError(
                    f"coarray {self.name!r}: put shape {src.shape} != {arr.shape}"
                )
            arr[...] = src
        else:
            arr[index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Coarray({self.name!r}, shape={self.shape}, dtype={self.dtype}, "
            f"procs={self.num_procs})"
        )
