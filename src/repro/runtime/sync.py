"""Pairwise image synchronization (``sync images``) and memory fences.

``sync images (L)`` is a rendezvous between this image and every image in
``L``: each side both notifies and waits.  The runtime keeps one
monotonically increasing notification counter per *ordered* image pair
(allocated lazily — an n² table would be wasteful and real runtimes don't
build one either), and each image remembers how many rendezvous with each
peer it has completed, so the wait predicate is a simple monotone
threshold — the same carry trick the dissemination barrier uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

from ..sim import Cell, Engine, Timeout, WaitFor
from .conduit import Conduit

__all__ = ["PairwiseSync", "SYNC_NBYTES", "MEMORY_FENCE_COST"]

SYNC_NBYTES = 8
#: cost of ``sync memory`` — a full fence plus runtime bookkeeping
MEMORY_FENCE_COST = 0.08e-6


class PairwiseSync:
    """Shared notification counters for ``sync images``."""

    def __init__(self, engine: Engine):
        self._engine = engine
        self._cells: Dict[Tuple[int, int], Cell] = {}

    def cell(self, notifier_proc: int, waiter_proc: int) -> Cell:
        key = (notifier_proc, waiter_proc)
        c = self._cells.get(key)
        if c is None:
            c = Cell(
                self._engine, 0,
                name=f"syncimg[{notifier_proc}->{waiter_proc}]",
                meta={"kind": "syncimg", "notifier": notifier_proc,
                      "waiter": waiter_proc},
            )
            self._cells[key] = c
        return c

    def sync_images(
        self,
        conduit: Conduit,
        my_proc: int,
        peer_procs: Sequence[int],
        seen: Dict[int, int],
        faults=None,
    ) -> Iterator:
        """Run one rendezvous between ``my_proc`` and each of ``peer_procs``.

        ``seen`` is the calling image's per-peer completed-rendezvous
        counter (mutated here).  Self-synchronization is a no-op per the
        standard.  Notifications all go out before any wait, so a set of
        images syncing pairwise cannot deadlock.

        With a :class:`repro.faults.FaultManager` in ``faults``, a failed
        partner raises :class:`~repro.faults.FailedImageError` — at entry
        if it is already dead, or at its fail-stop instant if it dies
        while we wait for its notification.
        """
        peers = [p for p in peer_procs if p != my_proc]
        if len(set(peers)) != len(peers):
            raise ValueError("sync images: duplicate image in list")
        if faults is not None:
            faults.check_images(peers)
        for peer in peers:
            cell = self.cell(my_proc, peer)
            yield from conduit.transfer(
                my_proc, peer, SYNC_NBYTES,
                on_delivered=lambda c=cell: c.add(1), path="auto",
            )
        for peer in peers:
            expected = seen.get(peer, 0) + 1
            waited = self.cell(peer, my_proc)
            pred = lambda v, e=expected: v >= e  # noqa: E731
            if faults is None:
                yield WaitFor(waited, pred)
            else:
                yield from faults.wait_interruptible(
                    waited, pred,
                    check=lambda: faults.check_images(peers),
                )
            seen[peer] = expected


def sync_memory() -> Iterator:
    """``sync memory``: order prior accesses; pure local cost."""
    yield Timeout(MEMORY_FENCE_COST)
