"""Fortran 2008 atomic operations on remote integer variables.

An :class:`AtomicVar` is the runtime object behind a scalar coarray of
``integer(atomic_int_kind)``: one watched integer cell per image.  The
non-fetching operations (``atomic_add``/``and``/``or``/``xor``/
``define``) are one-way — a single costed transfer whose delivery applies
the update at the target.  Fetching operations (``atomic_fetch_add``,
``atomic_cas``) additionally pay the return trip, matching the extra
network transaction a fetch costs on real RDMA hardware.

The simulation kernel is single-threaded, so target-side read-modify-
write is intrinsically atomic; what the model charges is the *time*.
The update is applied at delivery time (not issue time), so two images
racing to increment a counter interleave exactly as their messages land.

These cells double as the wait-target for the runtime's counter-based
synchronization: barrier cocounters and event counts are AtomicVars.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterator, Optional

from ..sim import Cell, SimEvent, Wait
from .conduit import Conduit

__all__ = ["AtomicVar", "ATOMIC_OPS", "ATOMIC_NBYTES"]

#: every atomic payload is one integer word
ATOMIC_NBYTES = 8

#: name → binary integer operation applied at the target
ATOMIC_OPS: dict[str, Callable[[int, int], int]] = {
    "add": operator.add,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
}


class AtomicVar:
    """One atomic integer per image, addressable by global proc id."""

    def __init__(self, conduit: Conduit, name: str, initial: int = 0):
        self._conduit = conduit
        self.name = name
        engine = conduit.machine.engine
        self._cells = [
            Cell(engine, initial, name=f"{name}[{p}]",
                 meta={"kind": "atomic", "var": name, "proc": p})
            for p in range(conduit.machine.num_images)
        ]

    def cell(self, proc: int) -> Cell:
        """The watched cell backing image ``proc``'s variable (for WaitFor)."""
        return self._cells[proc]

    def value(self, proc: int) -> int:
        """atomic_ref: local read of image ``proc``'s value (zero cost —
        reads of one's own atomic are plain loads)."""
        return self._cells[proc].value

    # ------------------------------------------------------------------
    # One-way operations
    # ------------------------------------------------------------------
    def update(
        self,
        src_proc: int,
        dst_proc: int,
        op: str,
        value: int,
        path: str = "auto",
    ) -> Iterator:
        """``atomic_<op>`` on ``dst_proc``'s variable, issued by ``src_proc``.

        Generator; returns at source-side completion.  The update lands at
        the target at delivery time.
        """
        fn = ATOMIC_OPS.get(op)
        if fn is None:
            raise ValueError(f"unknown atomic op {op!r}; have {sorted(ATOMIC_OPS)}")
        cell = self._cells[dst_proc]

        def apply() -> None:
            cell.update(lambda old: fn(old, value))

        yield from self._conduit.transfer(
            src_proc, dst_proc, ATOMIC_NBYTES, on_delivered=apply, path=path
        )

    def define(
        self, src_proc: int, dst_proc: int, value: int, path: str = "auto"
    ) -> Iterator:
        """``atomic_define``: plain store of ``value`` at the target."""
        cell = self._cells[dst_proc]
        yield from self._conduit.transfer(
            src_proc, dst_proc, ATOMIC_NBYTES,
            on_delivered=lambda: cell.set(value), path=path,
        )

    # ------------------------------------------------------------------
    # Fetching operations (round trip)
    # ------------------------------------------------------------------
    def fetch_update(
        self,
        src_proc: int,
        dst_proc: int,
        op: str,
        value: int,
        path: str = "auto",
    ) -> Iterator:
        """``atomic_fetch_<op>``: apply at target, return the OLD value.

        Generator whose value (via ``yield from``) is the fetched integer.
        """
        fn = ATOMIC_OPS.get(op)
        if fn is None:
            raise ValueError(f"unknown atomic op {op!r}; have {sorted(ATOMIC_OPS)}")
        cell = self._cells[dst_proc]
        engine = self._conduit.machine.engine
        reply = SimEvent(engine, name=f"{self.name}.fetch")
        fetched: list[int] = []

        def apply() -> None:
            old = cell.value
            fetched.append(old)
            cell.update(lambda _old: fn(_old, value))

        yield from self._conduit.transfer(
            src_proc, dst_proc, ATOMIC_NBYTES, on_delivered=apply, path=path
        )
        # The fetched value travels back target → source.
        resolved = self._conduit.resolve_path(dst_proc, src_proc, "auto")
        yield from self._conduit.transfer(
            dst_proc, src_proc, ATOMIC_NBYTES,
            on_delivered=lambda: reply.trigger(fetched[0]), path=resolved,
        )
        result = yield Wait(reply)
        return result

    def compare_and_swap(
        self,
        src_proc: int,
        dst_proc: int,
        expected: int,
        desired: int,
        path: str = "auto",
    ) -> Iterator:
        """``atomic_cas``: swap iff current == expected; returns the old value."""
        cell = self._cells[dst_proc]
        engine = self._conduit.machine.engine
        reply = SimEvent(engine, name=f"{self.name}.cas")
        fetched: list[int] = []

        def apply() -> None:
            old = cell.value
            fetched.append(old)
            if old == expected:
                cell.update(lambda _old: desired)

        yield from self._conduit.transfer(
            src_proc, dst_proc, ATOMIC_NBYTES, on_delivered=apply, path=path
        )
        yield from self._conduit.transfer(
            dst_proc, src_proc, ATOMIC_NBYTES,
            on_delivered=lambda: reply.trigger(fetched[0]), path="auto",
        )
        result = yield Wait(reply)
        return result
