"""Fortran 2008 lock variables (``lock_type`` coarrays).

``lock(l[k])`` / ``unlock(l[k])`` give images mutual exclusion over a
lock living on image *k*.  The implementation is the one a one-sided
runtime actually uses: remote compare-and-swap acquisition with
truncated exponential backoff between attempts.  Backoff intervals are
deterministic (derived from the contender's image id and attempt
number), so simulations stay reproducible while contenders still
de-synchronize.

The F2008 rules are enforced: acquiring a lock the caller already holds
and releasing a lock held by someone else (or nobody) are errors
(``STAT_LOCKED`` / ``STAT_UNLOCKED`` conditions — we raise, as OpenUH
aborts by default).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..sim import Timeout
from .atomics import AtomicVar
from .conduit import Conduit

__all__ = ["LockVar", "LOCK_BACKOFF_BASE", "LOCK_BACKOFF_CAP"]

#: first retry delay after a failed acquisition attempt
LOCK_BACKOFF_BASE = 0.4e-6
#: backoff ceiling (truncated exponential)
LOCK_BACKOFF_CAP = 12.8e-6

#: lock word states: 0 = free, otherwise holder's (proc + 1)
_FREE = 0


class LockVar:
    """One lock word per image, acquired with remote CAS."""

    def __init__(self, conduit: Conduit, name: str):
        self._conduit = conduit
        self.name = name
        self._word = AtomicVar(conduit, f"{name}.lock", initial=_FREE)
        # (holder proc, lock-home proc) pairs this runtime knows are held;
        # used to enforce the standard's already-held / not-held errors.
        self._held: Dict[Tuple[int, int], bool] = {}

    def holder(self, home_proc: int) -> int:
        """Current holder's proc id, or -1 if free (debug/test hook)."""
        value = self._word.value(home_proc)
        return value - 1 if value != _FREE else -1

    def acquire(self, my_proc: int, home_proc: int) -> Iterator:
        """``lock(l[home])``: spin with CAS + deterministic backoff."""
        if self._held.get((my_proc, home_proc)):
            raise RuntimeError(
                f"image {my_proc + 1} already holds lock {self.name!r} "
                f"on image {home_proc + 1} (STAT_LOCKED)"
            )
        attempt = 0
        while True:
            old = yield from self._word.compare_and_swap(
                my_proc, home_proc, expected=_FREE, desired=my_proc + 1
            )
            if old == _FREE:
                self._held[(my_proc, home_proc)] = True
                return
            # Deterministic truncated exponential backoff, skewed per
            # image so contenders spread out.
            backoff = min(
                LOCK_BACKOFF_BASE * (1 << min(attempt, 6)), LOCK_BACKOFF_CAP
            )
            backoff *= 1.0 + ((my_proc * 7 + attempt * 3) % 8) / 16.0
            attempt += 1
            yield Timeout(backoff)

    def release(self, my_proc: int, home_proc: int) -> Iterator:
        """``unlock(l[home])``: verify ownership, then remote store."""
        if not self._held.get((my_proc, home_proc)):
            raise RuntimeError(
                f"image {my_proc + 1} does not hold lock {self.name!r} "
                f"on image {home_proc + 1} (STAT_UNLOCKED)"
            )
        del self._held[(my_proc, home_proc)]
        yield from self._word.define(my_proc, home_proc, _FREE)
