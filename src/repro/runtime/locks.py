"""Fortran 2008/2018 lock variables (``lock_type`` coarrays).

``lock(l[k])`` / ``unlock(l[k])`` give images mutual exclusion over a
lock living on image *k*.  The implementation is the one a one-sided
runtime actually uses: a remote compare-and-swap on the home image's
lock word.  A failed acquisition does **not** poll with backoff — the
contender blocks on the lock word *cell* and retries when the word
changes (a release wakes exactly the waiters, like a futex), so lock
hand-off is deterministic and visible to deadlock analysis: a stuck
acquire names the lock, its home image, and the current holder.

Fault integration (F2018):

* the home image fail-stopping raises/reports ``STAT_FAILED_IMAGE``
  (entry check before each CAS, and the blocked wait watches the
  failure epoch through
  :meth:`~repro.faults.manager.FaultManager.wait_interruptible`);
* a *holder* fail-stopping mid-critical leaves its word behind; the
  next acquirer CASes the dead holder's word out and succeeds with
  ``STAT_UNLOCKED_FAILED_IMAGE`` — the standard's signal that the
  protected state may be inconsistent.

The F2008 rules are enforced: acquiring a lock the caller already holds
is ``STAT_LOCKED`` and releasing a lock it does not hold is
``STAT_UNLOCKED`` (raised as :class:`~repro.faults.manager.LockError`
when no ``stat=`` is supplied — OpenUH aborts by default).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..faults.manager import (
    STAT_LOCKED,
    STAT_OK,
    STAT_UNLOCKED,
    STAT_UNLOCKED_FAILED_IMAGE,
    FailedImageError,
    LockError,
)
from ..sim import Cell, SimEvent, Wait, WaitFor
from .conduit import Conduit

__all__ = ["LockVar", "LOCK_NBYTES"]

#: every lock message is one integer word
LOCK_NBYTES = 8

#: lock word states: 0 = free, otherwise holder's (proc + 1)
_FREE = 0


class LockVar:
    """One lock word per image, acquired with remote CAS.

    ``shared`` scopes the variable to one team (cells exist only for the
    team's members, under team-qualified names); ``None`` gives the
    historical global variable spanning every image.
    """

    def __init__(self, conduit: Conduit, name: str, shared=None):
        self._conduit = conduit
        self.name = name
        self.shared = shared
        engine = conduit.machine.engine
        if shared is None:
            procs = list(range(conduit.machine.num_images))
            prefix = name
        else:
            procs = list(shared.members)
            prefix = f"t{shared.uid}.{name}"
        self._cells: Dict[int, Cell] = {
            p: Cell(
                engine, _FREE, name=f"{prefix}.lock[{p}]",
                meta={"kind": "lock", "var": name, "home": p},
            )
            for p in procs
        }
        # (holder proc, lock-home proc) pairs this runtime knows are held;
        # used to enforce the standard's already-held / not-held errors.
        self._held: Dict[Tuple[int, int], bool] = {}

    def holder(self, home_proc: int) -> int:
        """Current holder's proc id, or -1 if free (debug/test hook)."""
        value = self._cells[home_proc].value
        return value - 1 if value != _FREE else -1

    def _cas(self, my_proc: int, home_proc: int,
             expected: int, desired: int) -> Iterator:
        """Remote CAS on the home's lock word; returns the old value, or
        ``None`` when the home image died and the fetch never happened
        (its target-side effects were suppressed at the conduit)."""
        cell = self._cells[home_proc]
        engine = self._conduit.machine.engine
        reply = SimEvent(engine, name=f"{self.name}.lockcas")
        fetched: list = []

        def apply() -> None:
            old = cell.value
            fetched.append(old)
            if old == expected:
                cell.update(lambda _old: desired)

        yield from self._conduit.transfer(
            my_proc, home_proc, LOCK_NBYTES, on_delivered=apply, path="auto"
        )
        yield from self._conduit.transfer(
            home_proc, my_proc, LOCK_NBYTES,
            on_delivered=lambda: reply.trigger(
                fetched[0] if fetched else None
            ),
            path="auto",
        )
        result = yield Wait(reply)
        return result

    def acquire(self, my_proc: int, home_proc: int, blocking: bool = True,
                faults=None) -> Iterator:
        """``lock(l[home])``: CAS, block on the word until it changes.

        Generator returning ``(acquired, code, failed_indices)`` where
        ``code`` is :data:`~repro.faults.STAT_OK`,
        :data:`~repro.faults.STAT_LOCKED` (non-blocking, contended), or
        :data:`~repro.faults.STAT_UNLOCKED_FAILED_IMAGE` (acquired by
        taking over a fail-stopped holder's word).  Error conditions
        raise :class:`~repro.faults.manager.LockError` /
        :class:`~repro.faults.manager.FailedImageError`; the caller maps
        them to ``stat=`` or lets them terminate.
        """
        if self._held.get((my_proc, home_proc)):
            raise LockError(
                f"image {my_proc + 1} already holds lock {self.name!r} "
                f"on image {home_proc + 1} (STAT_LOCKED)",
                code=STAT_LOCKED,
            )
        cell = self._cells[home_proc]
        expected = _FREE
        while True:
            if faults is not None and faults.is_failed(home_proc):
                raise FailedImageError([home_proc + 1])
            old = yield from self._cas(
                my_proc, home_proc, expected=expected, desired=my_proc + 1
            )
            if old is None:
                # home died mid-CAS: the fetch was suppressed at the
                # dead target, so there is no lock left to acquire
                raise FailedImageError([home_proc + 1])
            if old == expected:
                taken_from: tuple = ()
                if expected != _FREE:
                    # we replaced a fail-stopped holder's word
                    self._held.pop((expected - 1, home_proc), None)
                    taken_from = (expected,)
                self._held[(my_proc, home_proc)] = True
                monitor = self._conduit.machine.engine.monitor
                hook = getattr(monitor, "on_acquire", None)
                if hook is not None:
                    # first-try acquisitions never block on the cell, so
                    # the HB edge from the releaser must be drawn here
                    hook(cell, my_proc)
                if taken_from:
                    return True, STAT_UNLOCKED_FAILED_IMAGE, taken_from
                return True, STAT_OK, ()
            # contended: old is the current holder's (proc + 1)
            if (faults is not None and old != _FREE
                    and faults.is_failed(old - 1)):
                # holder is dead — retry expecting its stale word
                expected = old
                continue
            if not blocking:
                return False, STAT_LOCKED, ()
            if faults is None:
                yield WaitFor(cell, lambda v, cur=old: v != cur)
                expected = _FREE
            else:
                def pred(v, cur=old):
                    return v != cur or (v != _FREE
                                        and faults.is_failed(v - 1))

                yield from faults.wait_interruptible(
                    cell, pred,
                    check=lambda: faults.check_images([home_proc]),
                )
                value = cell.value
                if (value != _FREE and faults.is_failed(value - 1)):
                    expected = value
                else:
                    expected = _FREE

    def release(self, my_proc: int, home_proc: int) -> Iterator:
        """``unlock(l[home])``: verify ownership, then remote store."""
        if not self._held.get((my_proc, home_proc)):
            raise LockError(
                f"image {my_proc + 1} does not hold lock {self.name!r} "
                f"on image {home_proc + 1} (STAT_UNLOCKED)",
                code=STAT_UNLOCKED,
            )
        del self._held[(my_proc, home_proc)]
        cell = self._cells[home_proc]
        # RMW (not a plain store): hand-off order is whatever delivery
        # order the schedule produced — never a WAW race by construction.
        yield from self._conduit.transfer(
            my_proc, home_proc, LOCK_NBYTES,
            on_delivered=lambda: cell.update(lambda _old: _FREE),
            path="auto",
        )
