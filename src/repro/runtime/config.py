"""Runtime configurations: which stack a simulated program runs on.

A :class:`RuntimeConfig` bundles the axes the paper's evaluation varies —
conduit software profile, hierarchy awareness, collective strategies, and
compiler-backend compute efficiency — into one named object.  The module
constants are the exact comparison lines of §V:

========================  =============================================
``UHCAF_2LEVEL``          the paper's contribution: teams + TDLB +
                          two-level reduce/broadcast over GASNet
``UHCAF_1LEVEL``          same compiler/runtime, flat algorithms,
                          hierarchy-unaware (the "default approach")
``GASNET_IB_DISSEMINATION``  dissemination straight over IB verbs — the
                          low-level reference TDLB is "only marginally
                          more expensive" than
``CAF20_OPENUH`` /        Rice CAF 2.0: flat two-array dissemination,
``CAF20_GFORTRAN``        binomial collectives, backend-dependent
                          compute quality
``MPI_*``                 see :mod:`repro.baselines.mpi` (the MPI
                          comparison runs on its own library, but HPL's
                          Open MPI line uses this config)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..calibration import (
    BACKEND_EFFICIENCY,
    CAF20_GASNET,
    GASNET_RDMA,
    IB_VERBS,
    MPI_NATIVE,
    ConduitProfile,
)

__all__ = [
    "RuntimeConfig",
    "UHCAF_2LEVEL",
    "UHCAF_TUNED",
    "UHCAF_1LEVEL",
    "GASNET_IB_DISSEMINATION",
    "CAF20_OPENUH",
    "CAF20_GFORTRAN",
    "OPENMPI_GCC",
    "NAMED_CONFIGS",
]


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that distinguishes one software stack from another."""

    name: str
    conduit_profile: ConduitProfile
    hierarchy_aware: bool
    barrier: str
    reduce: str
    broadcast: str
    allgather: str = "two-level"
    alltoall: str = "two-level"
    #: key into :data:`repro.calibration.BACKEND_EFFICIENCY`
    backend: str = "openuh"
    leader_strategy: str = "lowest"
    #: fractional OS-noise on compute times (0 = none); each image draws
    #: deterministic per-call factors in [1, 1+jitter] from a seeded RNG,
    #: so jittered runs are still exactly reproducible
    compute_jitter: float = 0.0
    #: allow :mod:`repro.collectives.macro` to collapse eligible barrier
    #: windows into analytically-replayed macro-events.  The replay is
    #: exact (same final coarray state, same simulated times), and the
    #: runtime automatically falls back to fine-grained execution whenever any
    #: observer (monitor, trace, tiebreak RNG, fault schedule) is
    #: attached, so this is safe to leave on; set False to force the
    #: fine-grained path unconditionally.
    macro_events: bool = True

    @property
    def compute_efficiency(self) -> float:
        return BACKEND_EFFICIENCY[self.backend]

    def with_(self, **changes) -> "RuntimeConfig":
        """A modified copy — ablations swap one axis at a time."""
        return replace(self, **changes)


UHCAF_2LEVEL = RuntimeConfig(
    name="uhcaf-2level",
    conduit_profile=GASNET_RDMA,
    hierarchy_aware=True,
    barrier="tdlb",
    reduce="two-level",
    broadcast="two-level",
    allgather="two-level",
    backend="openuh",
)

#: tuned auto-selection: every collective consults the persisted
#: tournament crossover table (:mod:`repro.collectives.tuned`) and
#: delegates to the measured-fastest algorithm for the current
#: (shape, payload band) regime, falling back to the two-level defaults
#: when no table row matches.  Macro-events stay off: the selection can
#: land on any registered variant, so the config as a whole cannot
#: promise a macro-collapsible window shape up front.
UHCAF_TUNED = UHCAF_2LEVEL.with_(
    name="uhcaf-tuned",
    barrier="tuned",
    reduce="tuned",
    broadcast="tuned",
    macro_events=False,
)

UHCAF_1LEVEL = RuntimeConfig(
    name="uhcaf-1level",
    conduit_profile=GASNET_RDMA,
    hierarchy_aware=False,
    barrier="dissemination",
    reduce="linear-flat",
    broadcast="binomial-flat",
    allgather="linear-flat",
    alltoall="linear-flat",
    backend="openuh",
)

GASNET_IB_DISSEMINATION = RuntimeConfig(
    name="gasnet-ib-dissemination",
    conduit_profile=IB_VERBS,
    hierarchy_aware=False,
    barrier="dissemination",
    reduce="binomial-flat",
    broadcast="binomial-flat",
    allgather="bruck-flat",
    alltoall="pairwise-flat",
    backend="openuh",
)

CAF20_OPENUH = RuntimeConfig(
    name="caf2.0-openuh",
    conduit_profile=CAF20_GASNET,
    hierarchy_aware=False,
    barrier="dissemination-mcs",
    reduce="binomial-flat",
    broadcast="binomial-flat",
    allgather="bruck-flat",
    alltoall="pairwise-flat",
    backend="openuh",
)

CAF20_GFORTRAN = RuntimeConfig(
    name="caf2.0-gfortran",
    conduit_profile=CAF20_GASNET,
    hierarchy_aware=False,
    barrier="dissemination-mcs",
    reduce="binomial-flat",
    broadcast="binomial-flat",
    allgather="bruck-flat",
    alltoall="pairwise-flat",
    backend="gfortran",
)

#: HPL's "Open MPI (no tuning)" line: flat MPI collectives, GCC compute.
OPENMPI_GCC = RuntimeConfig(
    name="openmpi-gcc",
    conduit_profile=MPI_NATIVE,
    hierarchy_aware=False,
    barrier="dissemination",
    reduce="recursive-doubling",
    broadcast="binomial-flat",
    allgather="bruck-flat",
    alltoall="pairwise-flat",
    backend="gcc-mpi",
)

NAMED_CONFIGS = {
    cfg.name: cfg
    for cfg in (
        UHCAF_2LEVEL,
        UHCAF_TUNED,
        UHCAF_1LEVEL,
        GASNET_IB_DISSEMINATION,
        CAF20_OPENUH,
        CAF20_GFORTRAN,
        OPENMPI_GCC,
    )
}
