"""The conduit: per-message software costs on top of the machine fabrics.

A :class:`Conduit` pairs a :class:`~repro.calibration.ConduitProfile`
with a :class:`~repro.machine.Machine` and exposes the one primitive the
PGAS runtime is built from — a *costed one-sided transfer* between two
images.  Three paths exist:

``remote``
    Inter-node: software overhead at the sender, then NIC injection and
    the wire (see :mod:`repro.machine.network`).
``loopback``
    Same-node, but through the conduit anyway — the hierarchy-unaware
    path (GASNet ibv loopback).  Pays the full software overhead, the
    node's memory system, and an extra target-side polling penalty.
``direct``
    Same-node via plain stores — the hierarchy-aware path; near-zero
    software cost.

Profiles with ``serialize_overhead=True`` funnel their software overhead
through a per-node FIFO *progress engine* resource, so concurrent
operations issued by co-located images serialize.  This single mechanism
produces the paper's observed collapse of flat dissemination at 8 images
per node.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..calibration import DIRECT_SMP, ConduitProfile
from ..machine import Machine
from ..sim import Hold, Resource, Timeout

__all__ = ["Conduit"]


class Conduit:
    """Costed one-sided transfers between images over a machine."""

    def __init__(
        self,
        machine: Machine,
        profile: ConduitProfile,
        hierarchy_aware: bool = False,
        faults=None,
    ):
        self.machine = machine
        self.profile = profile
        #: when True, same-node transfers default to the ``direct`` path
        self.hierarchy_aware = hierarchy_aware
        #: optional :class:`repro.faults.FaultManager` — decides message
        #: fates (delivery to dead images, drop/delay jitter) when a fault
        #: schedule is installed; None on the default path
        self.faults = faults
        self._engines = [
            Resource(machine.engine, capacity=1, name=f"conduit{n}")
            for n in range(machine.spec.num_nodes)
        ]
        # Placement is fixed at launch, but resolving it went through two
        # attribute hops plus a method call per endpoint per message — and
        # same-node transfers resolved both endpoints twice.  Snapshot the
        # image→Placement map once at construction.
        self._placements = [
            machine.topology.placement(i) for i in range(machine.num_images)
        ]
        #: lifetime message counters by path, for the accounting experiments
        self.counts = {"remote": 0, "loopback": 0, "direct": 0}
        #: back-reference to :class:`repro.collectives.macro.MacroCollectives`
        #: (set by the World that owns this conduit); None when the run has
        #: no macro-event coordinator
        self.macro = None

    def note_async(self) -> None:
        """Record that asynchronous traffic exists in this run.

        Non-blocking transfers complete through callback chains the
        macro-event eligibility sweep cannot see (a ``get_nb`` response
        leg, an event-relay hop), so the first one permanently pins every
        subsequent barrier window to the fine-grained path.
        """
        macro = self.macro
        if macro is not None:
            macro.note_async()

    def progress_engine(self, node: int) -> Resource:
        return self._engines[node]

    def reset_counters(self) -> None:
        for key in self.counts:
            self.counts[key] = 0

    def _monitored_delivery(
        self,
        src_image: int,
        dst_image: int,
        on_delivered: Optional[Callable[[], None]],
    ) -> Optional[Callable[[], None]]:
        """Tell the concurrency monitor (when installed) about this message
        and wrap the delivery callback so target-side effects are
        attributed to the sender's causal past."""
        monitor = self.machine.engine.monitor
        if monitor is None:
            return on_delivered
        return monitor.on_transfer(src_image, dst_image, on_delivered)

    # ------------------------------------------------------------------
    def _overhead(self, node: int, cost: float) -> Iterator:
        """Charge sender software time, serialized per node if the profile says so."""
        if cost <= 0.0:
            return
        if self.profile.serialize_overhead:
            yield Hold(self._engines[node], cost)
        else:
            yield Timeout(cost)

    def resolve_path(self, src_image: int, dst_image: int, path: str = "auto") -> str:
        """Decide which of remote/loopback/direct a transfer takes.

        ``auto`` consults placement and :attr:`hierarchy_aware` — the
        runtime-level decision the paper's two-level methodology adds.
        Forcing ``direct`` for a cross-node pair is rejected: stores do not
        cross the network.
        """
        placements = self._placements
        same = placements[src_image].node == placements[dst_image].node
        if path == "auto":
            if not same:
                return "remote"
            return "direct" if self.hierarchy_aware else "loopback"
        if path == "direct" and not same:
            raise ValueError(
                f"direct path requested between images {src_image} and "
                f"{dst_image} on different nodes"
            )
        if path == "loopback" and not same:
            # Symmetric to the direct case: loopback is the *same-node*
            # conduit path; letting it through would route cross-node
            # traffic through the source node's shared-memory model.
            raise ValueError(
                f"loopback path requested between images {src_image} and "
                f"{dst_image} on different nodes"
            )
        if path == "remote" and same:
            # Same-node through the conduit is by definition the loopback path.
            return "loopback"
        if path not in ("remote", "loopback", "direct"):
            raise ValueError(f"unknown path {path!r}")
        return path

    def transfer(
        self,
        src_image: int,
        dst_image: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
        path: str = "auto",
    ) -> Iterator:
        """Generator performing one costed one-sided transfer.

        The sending process blocks through source-side completion;
        ``on_delivered`` fires when the payload is visible at the target.
        """
        resolved = self.resolve_path(src_image, dst_image, path)
        self.counts[resolved] += 1
        faults = self.faults
        if faults is not None:
            # A message to a dead image still pays wire costs (the sender
            # cannot tell), but its target-side effects are suppressed.
            on_delivered = faults.filter_delivery(dst_image, on_delivered)
            jitter = faults.link_delay(resolved)
            if jitter > 0.0:
                yield Timeout(jitter)
        on_delivered = self._monitored_delivery(src_image, dst_image, on_delivered)
        placements = self._placements
        ps = placements[src_image]
        src_node = ps.node

        if resolved == "remote":
            yield from self._overhead(src_node, self.profile.remote_overhead)
            yield from self.machine.interconnect.send(
                src_node,
                placements[dst_image].node,
                nbytes,
                on_delivered=on_delivered,
            )
            return

        pd = placements[dst_image]
        if resolved == "loopback":
            yield from self._overhead(src_node, self.profile.local_overhead)
            penalty = self.profile.loopback_penalty
            wrapped = on_delivered
            if penalty > 0.0 and on_delivered is not None:
                engine = self.machine.engine

                def wrapped() -> None:  # delivery waits for the target's poll
                    engine.schedule(penalty, on_delivered, label="loopback-poll")

            yield from self.machine.shared_memory.transfer(
                ps.node, ps.core, pd.core, nbytes, on_visible=wrapped,
                bandwidth_factor=self.profile.loopback_bw_factor,
            )
        else:  # direct
            if DIRECT_SMP.local_overhead > 0.0:
                yield Timeout(DIRECT_SMP.local_overhead)
            yield from self.machine.shared_memory.transfer(
                ps.node, ps.core, pd.core, nbytes, on_visible=on_delivered
            )

    def transfer_nb(
        self,
        src_image: int,
        dst_image: int,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
        path: str = "auto",
    ) -> Iterator:
        """Non-blocking variant: the sending process blocks only through
        its software overhead (posting the work request); injection and
        the wire proceed asynchronously.

        Generator whose return value (via ``yield from``) is a
        :class:`~repro.sim.SimEvent` that fires at *source-side*
        completion (the source buffer is reusable); ``on_delivered``
        fires when the payload lands at the target.
        """
        self.note_async()
        resolved = self.resolve_path(src_image, dst_image, path)
        self.counts[resolved] += 1
        faults = self.faults
        if faults is not None:
            on_delivered = faults.filter_delivery(dst_image, on_delivered)
            jitter = faults.link_delay(resolved)
            if jitter > 0.0:
                yield Timeout(jitter)
        on_delivered = self._monitored_delivery(src_image, dst_image, on_delivered)
        placements = self._placements
        ps = placements[src_image]
        src_node = ps.node

        if resolved == "remote":
            yield from self._overhead(src_node, self.profile.remote_overhead)
            return self.machine.interconnect.send_async(
                src_node,
                placements[dst_image].node,
                nbytes,
                on_delivered=on_delivered,
            )

        pd = placements[dst_image]
        if resolved == "loopback":
            yield from self._overhead(src_node, self.profile.local_overhead)
            penalty = self.profile.loopback_penalty
            wrapped = on_delivered
            if penalty > 0.0 and on_delivered is not None:
                engine = self.machine.engine

                def wrapped() -> None:
                    engine.schedule(penalty, on_delivered, label="loopback-poll")

            return self.machine.shared_memory.transfer_async(
                ps.node, ps.core, pd.core, nbytes, on_visible=wrapped,
                bandwidth_factor=self.profile.loopback_bw_factor,
            )
        # direct
        if DIRECT_SMP.local_overhead > 0.0:
            yield Timeout(DIRECT_SMP.local_overhead)
        return self.machine.shared_memory.transfer_async(
            ps.node, ps.core, pd.core, nbytes, on_visible=on_delivered
        )

    def recv_cost(self) -> float:
        """Receiver-side CPU time per message (two-sided conduits)."""
        return self.profile.recv_overhead
