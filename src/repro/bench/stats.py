"""Replicated measurements under OS-noise jitter.

The simulator is deterministic, so a single run has zero variance; to
study *robustness* (does TDLB's win survive noisy nodes?) the harness
re-runs a measurement under ``compute_jitter`` with different seeds and
summarizes the distribution.  This mirrors how the paper's cluster
numbers would have been taken (best/median of several runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["ReplicaStats", "replicate"]


@dataclass(frozen=True)
class ReplicaStats:
    """Summary of replicated measurements (seconds)."""

    samples: tuple
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def spread(self) -> float:
        """(max − min) / mean — the headline robustness figure."""
        return (self.maximum - self.minimum) / self.mean if self.mean else 0.0

    @staticmethod
    def of(samples: Sequence[float]) -> "ReplicaStats":
        if not samples:
            raise ValueError("need at least one sample")
        n = len(samples)
        mean = sum(samples) / n
        # Sample (Bessel-corrected) variance: the replicas are a small
        # sample of the jitter distribution, and /n biases std/spread
        # low exactly where the harness runs few seeds.
        var = (sum((s - mean) ** 2 for s in samples) / (n - 1)
               if n > 1 else 0.0)
        return ReplicaStats(
            samples=tuple(samples), mean=mean, std=math.sqrt(var),
            minimum=min(samples), maximum=max(samples),
        )


def replicate(measure: Callable[[int], float], seeds: Sequence[int]) -> ReplicaStats:
    """Run ``measure(seed)`` for every seed; returns the summary.

    ``measure`` typically closes over a jittered config and passes the
    seed through to ``run_spmd(..., jitter_seed=seed)``.
    """
    samples: List[float] = [measure(seed) for seed in seeds]
    return ReplicaStats.of(samples)
