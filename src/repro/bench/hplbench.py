"""Figure-1 harness: HPL GFLOP/s across the paper's five configurations.

Regenerates the exact series of Figure 1 — ``UHCAF 2level``,
``UHCAF 1level``, ``CAF2.0 OpenUH backend``, ``CAF2.0 GFortran
backend``, ``Open MPI (No tuning)`` — at the paper's x-axis points
``4(4), 16(16), 16(2), 64(8), 256(32)``.

Problem size: the paper does not state N; we use N=6144, NB=128, the
size at which the calibrated model reproduces the paper's absolute
256-core numbers (94.6 vs 95 GFLOP/s for UHCAF 2level) — see
EXPERIMENTS.md.  ``quick=True`` shrinks the sweep for CI-speed runs
while preserving the orderings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..hpl import run_hpl
from ..runtime.config import NAMED_CONFIGS
from .tables import ResultTable, Series, config_label

__all__ = ["FIGURE1_CONFIGS", "FIGURE1_SYSTEMS", "figure1", "FIGURE1_N", "FIGURE1_NB"]

#: the paper's x axis: (images, nodes)
FIGURE1_CONFIGS: List[Tuple[int, int]] = [
    (4, 4), (16, 16), (16, 2), (64, 8), (256, 32),
]

#: legend name → runtime config name, in the paper's legend order
FIGURE1_SYSTEMS: List[Tuple[str, str]] = [
    ("UHCAF 2level", "uhcaf-2level"),
    ("UHCAF 1level", "uhcaf-1level"),
    ("CAF2.0 OpenUH backend", "caf2.0-openuh"),
    ("CAF2.0 GFortran backend", "caf2.0-gfortran"),
    ("Open MPI (No tuning)", "openmpi-gcc"),
]

FIGURE1_N = 6144
FIGURE1_NB = 128


def figure1(
    n: int = FIGURE1_N,
    nb: int = FIGURE1_NB,
    configs: Sequence[Tuple[int, int]] = tuple(FIGURE1_CONFIGS),
    systems: Sequence[Tuple[str, str]] = tuple(FIGURE1_SYSTEMS),
    quick: bool = False,
) -> ResultTable:
    """Run the Figure-1 sweep; returns GFLOP/s per system per config."""
    if quick:
        n, nb = 1024, 128
        configs = [(4, 4), (16, 2), (64, 8)]
    labels = [config_label(i, m) for i, m in configs]
    table = ResultTable(
        title=f"Figure 1: HPL performance, N={n}, NB={nb} (GFLOP/s)",
        labels=labels, unit="GFLOP/s",
    )
    for legend, cfg_name in systems:
        series = Series(name=legend, unit="GFLOP/s")
        for (images, nodes), label in zip(configs, labels):
            report = run_hpl(
                n=n, nb=nb, num_images=images,
                images_per_node=images // nodes,
                config=NAMED_CONFIGS[cfg_name],
            )
            series.add(label, report.gflops)
        table.add_series(series)
    return table
