"""Extreme-scale macro-event sweep: 10k–100k flat images.

The macro-event coordinator exists so the simulator can model team
sizes the fine-grained event loop cannot afford — a 10k-image tight
allreduce sweep is ~2.2M engine events fine-grained and ~10k collapsed.
This module sweeps a geometric ladder of flat team sizes (one image per
node, the shape where chained windows sustain collapse) over the three
macro-capable collectives — barrier, reduction, broadcast — and reports
per-shape engine-event counts, the fine/macro event ratio, and the
exactness verdict.

The A/B leg (running the same sweep fine-grained to measure the ratio
and prove bit-exactness) is *bounded*: rungs above ``ab_max`` images run
macro-only, because the fine-grained run is exactly the cost the macro
subsystem exists to avoid.  Those cells report the macro event count
with the exactness column marked ``skipped`` — the contract is still
covered by the A/B rungs below the bound and by the golden-trace tests,
which pin the same window shapes at conformance sizes.

Before betting a 100k-image run on a configuration, every swept shape
is asserted macro-capable through
:func:`repro.collectives.registry.macro_kind`; a config whose strategy
always runs fine-grained fails fast instead of silently simulating two
million events per rung.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..collectives.registry import macro_kind
from ..machine import build_machine, paper_cluster
from ..runtime.config import UHCAF_2LEVEL, RuntimeConfig
from ..runtime.program import run_spmd
from ..sim.engine import Engine
from .tables import ResultTable, Series

__all__ = ["geometric_ladder", "xscale_sweep", "SHAPE_PROGRAMS"]

#: iterations per rung for the chained-window shapes (broadcast runs a
#: single window — chained data windows pin fine by design)
DEFAULT_ITERS = 5


def geometric_ladder(lo: int, hi: int, rungs: int) -> List[int]:
    """``rungs`` image counts from ``lo`` to ``hi``, geometrically spaced
    and rounded to the nearest hundred so the labels read cleanly."""
    if lo <= 0 or hi < lo:
        raise ValueError(f"bad ladder bounds {lo}..{hi}")
    if rungs < 2 or lo == hi:
        return [lo] if lo == hi else [lo, hi][:max(rungs, 1)]
    ratio = (hi / lo) ** (1.0 / (rungs - 1))
    out = []
    for k in range(rungs):
        n = lo * ratio ** k
        n = int(round(n / 100.0) * 100) if n >= 1000 else int(round(n))
        if not out or n > out[-1]:
            out.append(n)
    out[-1] = hi
    return out


# ----------------------------------------------------------------------
# Swept programs — one per macro window shape, flat-team tight loops.
# ----------------------------------------------------------------------
def _barrier_main(ctx, iters):
    for _ in range(iters):
        yield from ctx.sync_all()


def _reduce_main(ctx, iters):
    acc = float(ctx.this_image())
    for _ in range(iters):
        acc = yield from ctx.co_sum(acc * 0.5)
    return acc


def _bcast_main(ctx, iters):
    out = float(ctx.this_image())
    for _ in range(iters):
        out = yield from ctx.co_broadcast(out, source_image=1)
    return out


#: shape name → (collective kind, config field, program, iters)
SHAPE_PROGRAMS = {
    "barrier": ("barrier", "barrier", _barrier_main, DEFAULT_ITERS),
    "reduce": ("reduce", "reduce", _reduce_main, DEFAULT_ITERS),
    "broadcast": ("broadcast", "broadcast", _bcast_main, 1),
}


def assert_macro_capable(
    config: RuntimeConfig, allow_fine: bool = False,
) -> Dict[str, str]:
    """Map each swept shape to its macro window kind, or raise.

    Consults the strategy registry's :func:`macro_kind` so a sweep over
    a non-collapsible configuration dies before the first rung rather
    than after a multi-million-event fine-grained simulation.

    Every variant now declares its capability explicitly at registration
    (``macro_kind=None`` for always-fine-grained families like shmwin
    and tuned dispatch, which never join macro windows and so never bet
    in the grant audit).  With ``allow_fine=True`` such strategies map
    to ``None`` in the returned dict instead of raising — for harnesses
    like the tournament that sweep *every* registered variant and accept
    fine-grained rungs; the default stays strict because an
    extreme-scale ladder should refuse to run fine-grained by accident.
    """
    kinds = {}
    for shape, (kind, attr, _main, _iters) in SHAPE_PROGRAMS.items():
        strategy = getattr(config, attr)
        mk = macro_kind(kind, strategy)
        if mk is None and not allow_fine:
            raise ValueError(
                f"{kind} strategy {strategy!r} (config {config.name!r}) is "
                "not macro-capable; an extreme-scale sweep would run "
                "fine-grained"
            )
        kinds[shape] = mk
    return kinds


def _run_once(main, num_images: int, iters: int, config: RuntimeConfig,
              macro: bool):
    engine = Engine()
    machine = build_machine(
        engine, paper_cluster(num_images), num_images, images_per_node=1,
    )
    t0 = perf_counter()
    result = run_spmd(main, machine=machine, args=(iters,), config=config,
                      macro_events=macro)
    wall = perf_counter() - t0
    return engine.events_processed, wall, result


def xscale_sweep(
    images: Sequence[int],
    config: RuntimeConfig = UHCAF_2LEVEL,
    ab_max: Optional[int] = 10_000,
    shapes: Optional[Sequence[str]] = None,
    progress=None,
) -> Tuple[ResultTable, List[dict]]:
    """Run the ladder; returns the rendered-ready table plus raw rows.

    ``ab_max`` bounds the fine-grained A/B leg: rungs with more images
    run macro-only and their exactness column reads ``skipped``.  Pass
    ``None`` to A/B every rung (hours at 100k).  ``progress`` is an
    optional callable for per-cell status lines.
    """
    kinds = assert_macro_capable(config)
    shapes = list(shapes or SHAPE_PROGRAMS)
    labels = [f"{n}" for n in images]
    table = ResultTable(
        title=(f"XS: extreme-scale macro sweep, flat teams, "
               f"config {config.name}"),
        labels=labels, unit="mixed",
    )
    rows: List[dict] = []
    series: Dict[str, Series] = {}
    for shape in shapes:
        series[shape, "events"] = Series(
            name=f"{shape} events (macro)", unit="events")
        series[shape, "ratio"] = Series(
            name=f"{shape} fine/macro ratio", unit="x")
        series[shape, "exact"] = Series(
            name=f"{shape} exactness", unit="verdict")

    for n, label in zip(images, labels):
        for shape in shapes:
            kind, _attr, main, iters = SHAPE_PROGRAMS[shape]
            if progress:
                progress(f"[{n} images] {shape} macro ...")
            ev_macro, wall_macro, r_macro = _run_once(
                main, n, iters, config, macro=True)
            stats = r_macro.world.macro
            row = {
                "images": n,
                "shape": shape,
                "macro_kind": kinds[shape],
                "iters": iters,
                "events_macro": ev_macro,
                "wall_macro_s": round(wall_macro, 3),
                "replays": stats.replays,
                "inexact": stats.inexact,
                "disabled_reason": stats.disabled_reason,
            }
            series[shape, "events"].add_text(label, f"{ev_macro:,}")
            if ab_max is not None and n > ab_max:
                row["exactness"] = "skipped"
                series[shape, "exact"].add_text(label, "skipped")
            else:
                if progress:
                    progress(f"[{n} images] {shape} fine ...")
                ev_fine, wall_fine, r_fine = _run_once(
                    main, n, iters, config, macro=False)
                exact = (r_fine.time == r_macro.time
                         and r_fine.results == r_macro.results
                         and not stats.inexact)
                row.update(
                    events_fine=ev_fine,
                    wall_fine_s=round(wall_fine, 3),
                    event_ratio=(round(ev_fine / ev_macro, 1)
                                 if ev_macro else 0.0),
                    exactness="exact" if exact else "DIVERGENT",
                )
                series[shape, "ratio"].add(label, row["event_ratio"])
                series[shape, "exact"].add_text(label, row["exactness"])
            rows.append(row)
    for shape in shapes:
        table.add_series(series[shape, "events"])
        table.add_series(series[shape, "ratio"])
        table.add_series(series[shape, "exact"])
    return table, rows
