"""Command-line front end for the reproduction's experiment suite.

    python -m repro.bench barrier            # E1 + E2 tables
    python -m repro.bench reduce             # E3
    python -m repro.bench broadcast          # E4
    python -m repro.bench hpl                # E5 (Figure 1; ~1.5 min)
    python -m repro.bench hpl --quick        # reduced Figure 1
    python -m repro.bench all                # everything above

(The ablation experiments E6–E10 live in ``benchmarks/`` and run under
``pytest benchmarks/ --benchmark-only -s``, where their assertions guard
the reproduction's shape criteria.)
"""

from __future__ import annotations

import argparse
import sys

from ..runtime.config import (
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)
from .hplbench import figure1
from .microbench import (
    barrier_benchmark,
    broadcast_benchmark,
    mpi_barrier_benchmark,
    reduce_benchmark,
    sweep,
)


def _run_barrier(nodes: list[int], ipn: int) -> None:
    flat = sweep(
        "E1: barrier latency, 1 image per node (flat hierarchy)",
        configs=[(n, n) for n in nodes],
        systems=[
            ("TDLB (UHCAF 2level)",
             lambda i, n: barrier_benchmark(i, 1, UHCAF_2LEVEL).seconds_per_op),
            ("pure dissemination (UHCAF 1level)",
             lambda i, n: barrier_benchmark(i, 1, UHCAF_1LEVEL).seconds_per_op),
        ],
    )
    print(flat.render())
    print()
    hier = sweep(
        f"E2: barrier latency, {ipn} images per node",
        configs=[(n * ipn, n) for n in nodes],
        systems=[
            ("TDLB (UHCAF 2level)",
             lambda i, n: barrier_benchmark(i, ipn, UHCAF_2LEVEL).seconds_per_op),
            ("UHCAF pure dissemination",
             lambda i, n: barrier_benchmark(i, ipn, UHCAF_1LEVEL).seconds_per_op),
            ("GASNet IB dissemination",
             lambda i, n: barrier_benchmark(
                 i, ipn, GASNET_IB_DISSEMINATION).seconds_per_op),
            ("CAF 2.0",
             lambda i, n: barrier_benchmark(i, ipn, CAF20_OPENUH).seconds_per_op),
            ("MPI MVAPICH",
             lambda i, n: mpi_barrier_benchmark(i, ipn, "mvapich")),
            ("MPI Open MPI hierarch",
             lambda i, n: mpi_barrier_benchmark(i, ipn, "openmpi-hierarch")),
        ],
    )
    print(hier.render())
    print()
    print(hier.speedup_row("TDLB (UHCAF 2level)", "UHCAF pure dissemination"))


def _run_reduce(nodes: list[int], ipn: int, nelems: int) -> None:
    table = sweep(
        f"E3: co_sum latency, {nelems} element(s), {ipn} images per node",
        configs=[(n * ipn, n) for n in nodes],
        systems=[
            ("two-level reduction",
             lambda i, n: reduce_benchmark(
                 i, ipn, UHCAF_2LEVEL, nelems=nelems).seconds_per_op),
            ("default UHCAF reduction",
             lambda i, n: reduce_benchmark(
                 i, ipn, UHCAF_1LEVEL, nelems=nelems).seconds_per_op),
        ],
    )
    print(table.render())
    print()
    print(table.speedup_row("two-level reduction", "default UHCAF reduction"))


def _run_broadcast(nodes: list[int], ipn: int, nelems: int) -> None:
    table = sweep(
        f"E4: co_broadcast latency, {nelems} element(s), {ipn} images per node",
        configs=[(n * ipn, n) for n in nodes],
        systems=[
            ("two-level broadcast",
             lambda i, n: broadcast_benchmark(
                 i, ipn, UHCAF_2LEVEL, nelems=nelems).seconds_per_op),
            ("flat binomial broadcast",
             lambda i, n: broadcast_benchmark(
                 i, ipn, UHCAF_1LEVEL, nelems=nelems).seconds_per_op),
        ],
    )
    print(table.render())
    print()
    print(table.speedup_row("two-level broadcast", "flat binomial broadcast"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment",
                        choices=["barrier", "reduce", "broadcast", "hpl", "all"])
    parser.add_argument("--nodes", type=int, nargs="+", default=[2, 8, 16, 44],
                        help="node counts to sweep (default: 2 8 16 44)")
    parser.add_argument("--ipn", type=int, default=8,
                        help="images per node (default 8, the paper's)")
    parser.add_argument("--nelems", type=int, default=1,
                        help="payload elements for reduce/broadcast")
    parser.add_argument("--quick", action="store_true",
                        help="reduced HPL sweep (smaller N, fewer points)")
    args = parser.parse_args(argv)

    if args.experiment in ("barrier", "all"):
        _run_barrier(args.nodes, args.ipn)
        print()
    if args.experiment in ("reduce", "all"):
        _run_reduce(args.nodes, args.ipn, args.nelems)
        print()
    if args.experiment in ("broadcast", "all"):
        _run_broadcast(args.nodes, args.ipn, args.nelems)
        print()
    if args.experiment in ("hpl", "all"):
        table = figure1(quick=args.quick)
        print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
