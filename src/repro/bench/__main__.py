"""Command-line front end for the reproduction's experiment suite.

    python -m repro.bench barrier            # E1 + E2 tables
    python -m repro.bench reduce             # E3
    python -m repro.bench broadcast          # E4
    python -m repro.bench hpl                # E5 (Figure 1; ~1.5 min)
    python -m repro.bench hpl --quick        # reduced Figure 1
    python -m repro.bench all                # everything above
    python -m repro.bench all -j auto        # sweep cells in parallel
    python -m repro.bench xscale             # 10k-image macro-event sweep
    python -m repro.bench xscale --images 10000..100000 --rungs 3
                                             # extreme-scale ladder; rungs
                                             # above --ab-max run macro-only
    python -m repro.bench tournament         # algorithm tournament: full
                                             # grid, crossover table,
                                             # TOURNAMENT.json + tuned gate
    python -m repro.bench tournament --quick # PR-sized grid (2 shapes)

(The ablation experiments E6–E10 live in ``benchmarks/`` and run under
``pytest benchmarks/ --benchmark-only -s``, where their assertions guard
the reproduction's shape criteria.)

Every sweep cell is an independent simulation, so ``-j``/``--jobs``
(or ``REPRO_JOBS=auto``) fans them across worker processes; tables are
identical to a sequential run.  The cell callables are module-level
partials — picklable on purpose, so they actually reach the workers.
"""

from __future__ import annotations

import argparse
import sys

from .cells import plan_experiment, plan_tasks, render_results
from .hplbench import figure1
from .xscale import geometric_ladder, xscale_sweep


def _run_experiment(experiment: str, nodes: list[int], ipn: int,
                    nelems: int, jobs=None, server: str | None = None,
                    tenant: str | None = None) -> None:
    """Run one sweep experiment locally or via a ``repro.serve`` job
    server; the printed output is identical either way."""
    plans = plan_experiment(experiment, nodes, ipn=ipn, nelems=nelems)
    if server:
        from ..serve.client import run_bench_remote

        spec = {"kind": "bench", "experiment": experiment,
                "nodes": list(nodes), "ipn": ipn, "nelems": nelems}
        if tenant:
            spec["tenant"] = tenant
        outcomes = run_bench_remote(server, spec)
    else:
        from ..exec import run_tasks

        outcomes = run_tasks(plan_tasks(plans), jobs=jobs)
    print(render_results(plans, outcomes))


def _parse_images_spec(spec: str) -> list[int]:
    """``10000..100000`` (geometric, see ``--rungs``), ``a,b,c``, or one
    integer.  Returns the explicit list for the list/single forms and an
    empty list for the range form (the caller ladders it)."""
    if ".." in spec:
        return []
    if "," in spec:
        return [int(tok) for tok in spec.split(",") if tok.strip()]
    return [int(spec)]


def _run_tournament(args) -> int:
    from .tournament import (
        QUICK_SHAPES,
        render_crossover,
        run_tournament,
        write_tournament_json,
    )

    shapes = None
    if args.shapes:
        shapes = [tok for tok in args.shapes.split(",") if tok.strip()]
    elif args.quick:
        shapes = list(QUICK_SHAPES)
    bands = None
    if args.payloads:
        bands = [tok for tok in args.payloads.split(",") if tok.strip()]
    doc = run_tournament(
        shapes=shapes, bands=bands, iters=args.iters, jobs=args.jobs,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    print(render_crossover(doc))
    if args.tournament_json:
        write_tournament_json(doc, args.tournament_json)
        print(f"\nwrote {args.tournament_json}")
    # Hard gate: tuned dispatch must never lose to a hand-picked fixed
    # algorithm (selection is zero-cost, so a loss means broken dispatch).
    eps = 1e-9
    tuned = doc["tuned"]
    failed = False
    for label, speedup in (("best single fixed",
                            tuned["speedup_vs_best_fixed"]),
                           ("two-level default",
                            tuned["speedup_vs_default"])):
        if speedup < 1.0 - eps:
            print(f"FAIL: tuned dispatch is {speedup:.4f}x the {label} "
                  "(must be >= 1.0x)", file=sys.stderr)
            failed = True
    return 2 if failed else 0


def _run_xscale(args) -> int:
    spec = args.images
    explicit = _parse_images_spec(spec)
    if explicit:
        images = explicit
    else:
        lo, hi = (int(tok) for tok in spec.split("..", 1))
        images = geometric_ladder(lo, hi, args.rungs)
    ab_max = None if args.ab_max == 0 else args.ab_max
    table, rows = xscale_sweep(images, ab_max=ab_max,
                               progress=lambda msg: print(f"  {msg}",
                                                          file=sys.stderr))
    print(table.render())
    if args.xscale_json:
        import json
        with open(args.xscale_json, "w") as fh:
            json.dump({"schema": "repro.bench/xscale/v1", "rows": rows},
                      fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.xscale_json}")
    bad = [r for r in rows if r.get("exactness") == "DIVERGENT"]
    if bad:
        for r in bad:
            print(f"FAIL: {r['shape']} @ {r['images']} images diverged "
                  f"(reason={r['disabled_reason']})", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment",
                        choices=["barrier", "reduce", "broadcast", "hpl",
                                 "xscale", "tournament", "all"])
    parser.add_argument("--nodes", type=int, nargs="+", default=[2, 8, 16, 44],
                        help="node counts to sweep (default: 2 8 16 44)")
    parser.add_argument("--ipn", type=int, default=8,
                        help="images per node (default 8, the paper's)")
    parser.add_argument("--nelems", type=int, default=1,
                        help="payload elements for reduce/broadcast")
    parser.add_argument("--quick", action="store_true",
                        help="reduced HPL sweep (smaller N, fewer points)")
    parser.add_argument("-j", "--jobs", default=None,
                        help="worker processes for sweep cells: an integer "
                             "or 'auto' (default: REPRO_JOBS env, else 1)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="delegate sweep cells to a repro.serve job "
                             "server (e.g. http://127.0.0.1:8750); output "
                             "is identical to a local run")
    parser.add_argument("--tenant", default=None,
                        help="tenant name reported to --server "
                             "(default: the local username)")
    parser.add_argument("--images", default="10000",
                        help="xscale mode: image-count ladder — one integer, "
                             "a comma list, or MIN..MAX (geometric, see "
                             "--rungs); default 10000")
    parser.add_argument("--rungs", type=int, default=3,
                        help="xscale mode: rungs in a MIN..MAX ladder "
                             "(default 3)")
    parser.add_argument("--ab-max", type=int, default=10_000,
                        help="xscale mode: largest rung that also runs the "
                             "fine-grained A/B leg (default 10000; 0 = A/B "
                             "every rung).  Larger rungs run macro-only with "
                             "exactness 'skipped'.")
    parser.add_argument("--xscale-json", default=None,
                        help="xscale mode: also write raw sweep rows to this "
                             "JSON file (CI artifact)")
    parser.add_argument("--shapes", default=None,
                        help="tournament mode: comma list of conformance "
                             "shape names (default: all 8; --quick: 2)")
    parser.add_argument("--payloads", default=None,
                        help="tournament mode: comma list of payload bands "
                             "(small,medium,large; default: all)")
    parser.add_argument("--iters", type=int, default=5,
                        help="tournament mode: timed ops per cell "
                             "(default 5)")
    parser.add_argument("--tournament-json", default="TOURNAMENT.json",
                        help="tournament mode: crossover-table artifact "
                             "path (default TOURNAMENT.json; '' disables)")
    args = parser.parse_args(argv)

    if args.experiment == "tournament":
        return _run_tournament(args)

    if args.experiment == "xscale":
        # macro-only cells at 100k images are single giant simulations —
        # the per-cell memory footprint is the constraint, not CPU, so
        # xscale runs sequentially and ignores -j.
        return _run_xscale(args)

    for experiment in ("barrier", "reduce", "broadcast"):
        if args.experiment in (experiment, "all"):
            _run_experiment(experiment, args.nodes, args.ipn, args.nelems,
                            jobs=args.jobs, server=args.server,
                            tenant=args.tenant)
            print()
    if args.experiment in ("hpl", "all"):
        table = figure1(quick=args.quick)
        print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
