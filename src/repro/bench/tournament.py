"""Algorithm tournament: measure every registered collective algorithm
over the machine-shape × payload grid and emit the crossover table that
tuned dispatch runs on.

Production MPI libraries do not hand-pick one collective algorithm —
their "tuned" modules carry decision tables fit by exactly this kind of
offline sweep.  The tournament fans one benchmark cell per (kind ×
algorithm × shape × payload band) through the exec pool, finds the
per-regime winner, writes the whole grid plus the winners to a
``TOURNAMENT.json`` artifact (the file
:mod:`repro.collectives.tuned` consumes), and then **validates** the
table: every cell is re-run with the ``"tuned"`` strategy and the table
installed, and the aggregate tuned time is gated against both the best
single fixed algorithm and the paper's two-level default.  Because
selection is a zero-cost bookkeeping step, tuned's per-cell time must
equal the per-cell winner exactly — the gate failing means dispatch is
broken, not that the machine was slow.

Shapes come from the conformance matrix
(:data:`repro.verify.conformance.SHAPES`) so "which algorithm wins
where" is answered on the same geometry the semantics are verified on.
Payload bands mirror :data:`repro.collectives.tuned.PAYLOAD_BANDS`:
1 / 1024 / 65536 float64 elements land in the small / medium / large
band respectively (barriers only carry notify-sized payloads and sweep
the small band alone).  All cells run with macro-events off so every
algorithm is measured on the same fine-grained footing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..collectives import registry
from ..collectives.tuned import CrossoverTable, install_table, shape_key
from ..exec import TaskSpec, run_tasks
from ..runtime.config import UHCAF_2LEVEL
from ..verify.conformance import SHAPES
from .microbench import (
    barrier_benchmark,
    broadcast_benchmark,
    reduce_benchmark,
)

__all__ = ["PAYLOAD_NELEMS", "KINDS_SWEPT", "QUICK_SHAPES",
           "build_grid", "run_tournament", "render_crossover"]

#: float64 element counts that land exactly one payload in each band of
#: :data:`repro.collectives.tuned.PAYLOAD_BANDS` (8 B / 8 KiB / 512 KiB)
PAYLOAD_NELEMS: Dict[str, int] = {"small": 1, "medium": 1024, "large": 65536}

#: kinds with more than one registered algorithm worth racing
KINDS_SWEPT: Tuple[str, ...] = ("barrier", "reduce", "broadcast")

#: the PR-sized grid: one intra-node-heavy shape, one multi-node shape
QUICK_SHAPES: Tuple[str, ...] = ("1node", "2x4")

#: benchmark iterations per cell (microbench adds 2 warmup ops)
DEFAULT_TOURNAMENT_ITERS = 5

_BENCH = {"barrier": barrier_benchmark, "reduce": reduce_benchmark,
          "broadcast": broadcast_benchmark}


# ----------------------------------------------------------------------
# Cells — module level so they pickle into pool workers.
# ----------------------------------------------------------------------
def _fixed_cell(kind: str, algorithm: str, shape_name: str, band: str,
                iters: int) -> float:
    """Seconds per op of one fixed algorithm on one (shape, band) cell."""
    shape = SHAPES[shape_name]
    config = UHCAF_2LEVEL.with_(macro_events=False, **{kind: algorithm})
    bench = _BENCH[kind]
    kwargs = {"spec": shape.spec, "iters": iters}
    if kind != "barrier":
        kwargs["nelems"] = PAYLOAD_NELEMS[band]
    result = bench(shape.num_images, shape.images_per_node, config, **kwargs)
    return result.seconds_per_op


def _tuned_cell(kind: str, shape_name: str, band: str, iters: int,
                winner_rows: List[dict]) -> float:
    """Seconds per op of tuned dispatch on one cell, with the freshly
    measured crossover table installed (rows travel with the task so the
    worker process sees the same table as the parent)."""
    install_table(CrossoverTable.from_rows(winner_rows))
    try:
        return _fixed_cell(kind, "tuned", shape_name, band, iters)
    finally:
        install_table(None)


# ----------------------------------------------------------------------
# Grid construction and the tournament itself
# ----------------------------------------------------------------------
def build_grid(
    shapes: Sequence[str], bands: Sequence[str],
) -> List[Tuple[str, str, str, str]]:
    """All (kind, algorithm, shape, band) cells — every registered
    algorithm except ``tuned`` itself (it is the consumer, not a
    contestant); barriers sweep only the small band."""
    cells = []
    for kind in KINDS_SWEPT:
        names = [n for n in _registry_table(kind) if n != "tuned"]
        kind_bands = ["small"] if kind == "barrier" else list(bands)
        for shape_name in shapes:
            for band in kind_bands:
                for name in names:
                    cells.append((kind, name, shape_name, band))
    return cells


def _registry_table(kind: str) -> Dict[str, object]:
    return {"barrier": registry.BARRIERS, "reduce": registry.REDUCTIONS,
            "broadcast": registry.BROADCASTS}[kind]


def run_tournament(
    shapes: Optional[Sequence[str]] = None,
    bands: Optional[Sequence[str]] = None,
    iters: int = DEFAULT_TOURNAMENT_ITERS,
    jobs=None,
    progress=None,
) -> dict:
    """Run the full tournament; returns the TOURNAMENT.json document.

    The document carries the raw ``grid`` (every measured cell), the
    per-regime ``winners`` (the crossover table tuned dispatch loads),
    and the ``tuned`` validation block with aggregate speedups against
    the best single fixed algorithm and the two-level default.
    """
    shapes = list(shapes or SHAPES)
    bands = list(bands or PAYLOAD_NELEMS)
    unknown = [s for s in shapes if s not in SHAPES]
    if unknown:
        raise ValueError(f"unknown shape(s) {unknown}; have {sorted(SHAPES)}")
    unknown = [b for b in bands if b not in PAYLOAD_NELEMS]
    if unknown:
        raise ValueError(
            f"unknown band(s) {unknown}; have {sorted(PAYLOAD_NELEMS)}")

    cells = build_grid(shapes, bands)
    tasks = [
        TaskSpec(_fixed_cell, (kind, name, shape_name, band, iters),
                 label=f"{kind}/{name} @ {shape_name}/{band}")
        for kind, name, shape_name, band in cells
    ]
    if progress:
        progress(f"measuring {len(tasks)} fixed-algorithm cell(s)...")
    results = run_tasks(tasks, jobs=jobs)
    grid: List[dict] = []
    for (kind, name, shape_name, band), res in zip(cells, results):
        if not res.ok:
            raise RuntimeError(
                f"tournament cell {kind}/{name} @ {shape_name}/{band} "
                f"failed: {res.error}")
        shape = SHAPES[shape_name]
        nodes, ipn = shape_key(shape.num_images, shape.images_per_node)
        grid.append({
            "kind": kind, "algorithm": name, "shape": shape_name,
            "band": band, "nodes": nodes, "ipn": ipn,
            "seconds_per_op": res.value,
        })

    # Per-regime winners, keyed exactly as tuned dispatch looks them up:
    # (kind, nodes, ipn, band).  Two swept shapes can share a key (e.g.
    # "1node" and the 4-socket "numa" node both map to (1, 8)); runtime
    # dispatch cannot tell them apart, so the winner for a shared key is
    # the algorithm minimizing the SUMMED time over every colliding
    # cell.  That choice makes the aggregate gate a theorem rather than
    # a hope: per key, min-over-algorithms of the group sum is <= any
    # one algorithm's group sum, so tuned's total is <= every fixed
    # algorithm's total — including the best one.
    winners: List[dict] = []
    by_key: Dict[Tuple[str, int, int, str], List[dict]] = {}
    for row in grid:
        by_key.setdefault(
            (row["kind"], row["nodes"], row["ipn"], row["band"]),
            []).append(row)
    for (kind, nodes, ipn, band), rows in sorted(by_key.items()):
        totals: Dict[str, float] = {}
        for row in rows:
            totals[row["algorithm"]] = (totals.get(row["algorithm"], 0.0)
                                        + row["seconds_per_op"])
        best_name = min(totals, key=lambda n: (totals[n], n))
        winners.append({
            "kind": kind, "algorithm": best_name, "band": band,
            "nodes": nodes, "ipn": ipn,
            "seconds_per_op": totals[best_name],
            "shapes": sorted({row["shape"] for row in rows}),
        })

    # Validation: every cell again, through tuned dispatch + this table.
    winner_rows = [dict(w) for w in winners]
    tuned_cells = sorted({(kind, shape_name, band)
                          for kind, _n, shape_name, band in cells})
    tuned_tasks = [
        TaskSpec(_tuned_cell, (kind, shape_name, band, iters, winner_rows),
                 label=f"{kind}/tuned @ {shape_name}/{band}")
        for kind, shape_name, band in tuned_cells
    ]
    if progress:
        progress(f"validating tuned dispatch on {len(tuned_tasks)} cell(s)...")
    tuned_results = run_tasks(tuned_tasks, jobs=jobs)
    tuned_grid: List[dict] = []
    for (kind, shape_name, band), res in zip(tuned_cells, tuned_results):
        if not res.ok:
            raise RuntimeError(
                f"tuned cell {kind} @ {shape_name}/{band} failed: {res.error}")
        shape = SHAPES[shape_name]
        nodes, ipn = shape_key(shape.num_images, shape.images_per_node)
        tuned_grid.append({
            "kind": kind, "shape": shape_name, "band": band,
            "nodes": nodes, "ipn": ipn, "seconds_per_op": res.value,
        })

    # Aggregates.  "Best single fixed" = the one algorithm per kind that
    # minimizes the total across that kind's cells — the strongest
    # hand-picked configuration the tuned table has to beat (or tie).
    totals_by_alg: Dict[Tuple[str, str], float] = {}
    counts_by_alg: Dict[Tuple[str, str], int] = {}
    for row in grid:
        key = (row["kind"], row["algorithm"])
        totals_by_alg[key] = totals_by_alg.get(key, 0.0) + row["seconds_per_op"]
        counts_by_alg[key] = counts_by_alg.get(key, 0) + 1
    best_fixed_total = 0.0
    best_fixed_names: Dict[str, str] = {}
    default_total = 0.0
    tuned_total = sum(r["seconds_per_op"] for r in tuned_grid)
    defaults = {"barrier": "tdlb", "reduce": "two-level",
                "broadcast": "two-level"}
    num_cells = {kind: len([c for c in tuned_cells if c[0] == kind])
                 for kind in KINDS_SWEPT}
    for kind in KINDS_SWEPT:
        candidates = {name: total
                      for (k, name), total in totals_by_alg.items()
                      if k == kind
                      and counts_by_alg[(k, name)] == num_cells[kind]}
        best_name = min(candidates, key=lambda n: (candidates[n], n))
        best_fixed_names[kind] = best_name
        best_fixed_total += candidates[best_name]
        default_total += candidates[defaults[kind]]

    doc = {
        "schema": CrossoverTable.SCHEMA,
        "iters": iters,
        "shapes": shapes,
        "bands": bands,
        "grid": grid,
        "winners": winners,
        "tuned": {
            "per_cell": tuned_grid,
            "total_s": tuned_total,
            "best_fixed": best_fixed_names,
            "best_fixed_total_s": best_fixed_total,
            "two_level_default_total_s": default_total,
            "speedup_vs_best_fixed":
                best_fixed_total / tuned_total if tuned_total else 1.0,
            "speedup_vs_default":
                default_total / tuned_total if tuned_total else 1.0,
        },
    }
    return doc


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_crossover(doc: dict) -> str:
    """The human-readable crossover table: which algorithm wins where,
    and by how much over the runner-up."""
    by_cell: Dict[Tuple[str, str, str], List[dict]] = {}
    for row in doc["grid"]:
        by_cell.setdefault((row["kind"], row["shape"], row["band"]),
                           []).append(row)
    lines = ["crossover table (winner per kind × shape × payload band):",
             f"{'kind':<10} {'shape':<10} {'band':<7} "
             f"{'winner':<20} {'us/op':>10}  {'runner-up margin'}"]
    for (kind, shape_name, band) in sorted(by_cell):
        rows = sorted(by_cell[(kind, shape_name, band)],
                      key=lambda r: (r["seconds_per_op"], r["algorithm"]))
        best = rows[0]
        if len(rows) > 1:
            ratio = rows[1]["seconds_per_op"] / best["seconds_per_op"] \
                if best["seconds_per_op"] else 1.0
            margin = f"{ratio:.2f}x vs {rows[1]['algorithm']}"
        else:
            margin = "-"
        lines.append(
            f"{kind:<10} {shape_name:<10} {band:<7} "
            f"{best['algorithm']:<20} {best['seconds_per_op']*1e6:>10.3f}"
            f"  {margin}")
    tuned = doc["tuned"]
    lines.append("")
    lines.append(
        f"tuned dispatch: {tuned['speedup_vs_best_fixed']:.4f}x best single "
        f"fixed ({tuned['best_fixed']}), "
        f"{tuned['speedup_vs_default']:.4f}x two-level default")
    return "\n".join(lines)


def write_tournament_json(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
