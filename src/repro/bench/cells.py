"""Importable sweep cells and experiment plans for the bench grids.

The paper's §6 evaluation is a grid: experiments (barrier / reduce /
broadcast) × compared systems × ``(images, nodes)`` configurations ×
payload sizes.  This module is the *single source of truth* for that
grid:

* the **cell functions** (``barrier_cell`` …) are module-level — they
  pickle into worker processes and fingerprint stably into cache keys
  from any entry point.  (They used to live in ``repro.bench.__main__``,
  where running the CLI renames the module to ``__main__`` and every
  cache key silently changes identity — a server and a CLI could never
  share a cache that way.)
* a :class:`SweepPlan` names one table of the experiment — title,
  configs, systems, and which speedup rows follow it; and
* :func:`plan_experiment` / :func:`plan_tasks` / :func:`render_results`
  turn a plan into the canonical ordered cell list and fold per-cell
  outcomes back into output **byte-identical** to the sequential CLI —
  the property the ``repro.serve`` job server and its ``--server``
  thin clients are held to.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..runtime.config import (
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
    RuntimeConfig,
)
from .microbench import (
    barrier_benchmark,
    broadcast_benchmark,
    mpi_barrier_benchmark,
    reduce_benchmark,
    sweep_assemble,
    sweep_tasks,
)

__all__ = [
    "barrier_cell",
    "mpi_barrier_cell",
    "reduce_cell",
    "broadcast_cell",
    "SweepPlan",
    "EXPERIMENTS",
    "plan_experiment",
    "plan_tasks",
    "render_results",
]


# ----------------------------------------------------------------------
# Sweep cells — module level (not closures) so they pickle into workers
# and fingerprint identically from every entry point.
# ----------------------------------------------------------------------
def barrier_cell(config: RuntimeConfig, ipn: int,
                 images: int, nodes: int) -> float:
    return barrier_benchmark(images, ipn, config).seconds_per_op


def mpi_barrier_cell(tuning: str, ipn: int, images: int, nodes: int) -> float:
    return mpi_barrier_benchmark(images, ipn, tuning).seconds_per_op


def reduce_cell(config: RuntimeConfig, ipn: int, nelems: int,
                images: int, nodes: int) -> float:
    return reduce_benchmark(images, ipn, config,
                            nelems=nelems).seconds_per_op


def broadcast_cell(config: RuntimeConfig, ipn: int, nelems: int,
                   images: int, nodes: int) -> float:
    return broadcast_benchmark(images, ipn, config,
                               nelems=nelems).seconds_per_op


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPlan:
    """One table of an experiment: a titled grid plus its speedup rows."""

    title: str
    configs: Tuple[Tuple[int, int], ...]
    systems: Tuple[Tuple[str, Callable], ...]
    #: ``(fast, slow)`` series pairs rendered as speedup lines after the
    #: table, in order
    speedups: Tuple[Tuple[str, str], ...] = ()

    @property
    def cell_count(self) -> int:
        return len(self.configs) * len(self.systems)


#: experiments a sweep spec may name (the hpl figure is not a grid of
#: independent cells and stays CLI-local)
EXPERIMENTS = ("barrier", "reduce", "broadcast")


def plan_experiment(experiment: str, nodes: Sequence[int],
                    ipn: int = 8, nelems: int = 1) -> List[SweepPlan]:
    """The tables (in print order) of one experiment over ``nodes``."""
    nodes = list(nodes)
    if experiment == "barrier":
        return [
            SweepPlan(
                title="E1: barrier latency, 1 image per node "
                      "(flat hierarchy)",
                configs=tuple((n, n) for n in nodes),
                systems=(
                    ("TDLB (UHCAF 2level)",
                     functools.partial(barrier_cell, UHCAF_2LEVEL, 1)),
                    ("pure dissemination (UHCAF 1level)",
                     functools.partial(barrier_cell, UHCAF_1LEVEL, 1)),
                ),
            ),
            SweepPlan(
                title=f"E2: barrier latency, {ipn} images per node",
                configs=tuple((n * ipn, n) for n in nodes),
                systems=(
                    ("TDLB (UHCAF 2level)",
                     functools.partial(barrier_cell, UHCAF_2LEVEL, ipn)),
                    ("UHCAF pure dissemination",
                     functools.partial(barrier_cell, UHCAF_1LEVEL, ipn)),
                    ("GASNet IB dissemination",
                     functools.partial(barrier_cell,
                                       GASNET_IB_DISSEMINATION, ipn)),
                    ("CAF 2.0",
                     functools.partial(barrier_cell, CAF20_OPENUH, ipn)),
                    ("MPI MVAPICH",
                     functools.partial(mpi_barrier_cell, "mvapich", ipn)),
                    ("MPI Open MPI hierarch",
                     functools.partial(mpi_barrier_cell,
                                       "openmpi-hierarch", ipn)),
                ),
                speedups=(("TDLB (UHCAF 2level)",
                           "UHCAF pure dissemination"),),
            ),
        ]
    if experiment == "reduce":
        return [
            SweepPlan(
                title=f"E3: co_sum latency, {nelems} element(s), "
                      f"{ipn} images per node",
                configs=tuple((n * ipn, n) for n in nodes),
                systems=(
                    ("two-level reduction",
                     functools.partial(reduce_cell, UHCAF_2LEVEL, ipn,
                                       nelems)),
                    ("default UHCAF reduction",
                     functools.partial(reduce_cell, UHCAF_1LEVEL, ipn,
                                       nelems)),
                ),
                speedups=(("two-level reduction",
                           "default UHCAF reduction"),),
            ),
        ]
    if experiment == "broadcast":
        return [
            SweepPlan(
                title=f"E4: co_broadcast latency, {nelems} element(s), "
                      f"{ipn} images per node",
                configs=tuple((n * ipn, n) for n in nodes),
                systems=(
                    ("two-level broadcast",
                     functools.partial(broadcast_cell, UHCAF_2LEVEL, ipn,
                                       nelems)),
                    ("flat binomial broadcast",
                     functools.partial(broadcast_cell, UHCAF_1LEVEL, ipn,
                                       nelems)),
                ),
                speedups=(("two-level broadcast",
                           "flat binomial broadcast"),),
            ),
        ]
    raise ValueError(f"unknown experiment {experiment!r}; "
                     f"have {EXPERIMENTS}")


def plan_tasks(plans: Sequence[SweepPlan]) -> list:
    """Every cell of ``plans`` as TaskSpecs, in canonical order: plans
    in print order, systems-major, configs-minor within each plan."""
    tasks = []
    for plan in plans:
        _labels, plan_t = sweep_tasks(plan.configs, plan.systems)
        tasks.extend(plan_t)
    return tasks


def render_results(plans: Sequence[SweepPlan], outcomes) -> str:
    """Fold ordered per-cell outcomes into the experiment's printed
    output: each table, then its speedup rows, blank-line separated —
    exactly what the sequential CLI prints."""
    outcomes = iter(outcomes)
    blocks: List[str] = []
    for plan in plans:
        cell_results = [next(outcomes) for _ in range(plan.cell_count)]
        table = sweep_assemble(plan.title, plan.configs, plan.systems,
                               cell_results)
        blocks.append(table.render())
        for fast, slow in plan.speedups:
            blocks.append(table.speedup_row(fast, slow))
    return "\n\n".join(blocks)
