"""Benchmark harnesses: the Teams Microbenchmark suite and the Figure-1
HPL sweep, plus the paper-style result tables they print."""

from .hplbench import FIGURE1_CONFIGS, FIGURE1_SYSTEMS, figure1
from .microbench import (
    MicrobenchResult,
    barrier_benchmark,
    broadcast_benchmark,
    mpi_barrier_benchmark,
    reduce_benchmark,
    sweep,
)
from .stats import ReplicaStats, replicate
from .tables import ResultTable, Series, config_label

__all__ = [
    "figure1",
    "FIGURE1_CONFIGS",
    "FIGURE1_SYSTEMS",
    "MicrobenchResult",
    "barrier_benchmark",
    "reduce_benchmark",
    "broadcast_benchmark",
    "mpi_barrier_benchmark",
    "sweep",
    "ResultTable",
    "Series",
    "config_label",
    "ReplicaStats",
    "replicate",
]
