"""The Teams Microbenchmark suite (paper §V-A, reference [4]).

The paper introduced a public microbenchmark suite for team collectives
precisely because teams were too new to have one; this module is our
version of it.  Each benchmark times one collective — barrier,
all-to-all reduction, one-to-all broadcast — over a team, on a chosen
cluster shape (nodes × images-per-node), for every compared system:

* CAF runtime configurations (UHCAF 2-level / 1-level, GASNet-IB
  dissemination, CAF 2.0) via :func:`repro.runtime.run_spmd`;
* MPI tunings (MVAPICH, Open MPI, Open MPI hierarch) via
  :func:`repro.baselines.mpi.run_mpi`.

Timing protocol (shared by every benchmark via :func:`_timed`): two
warm-up operations (populating lazily allocated synchronization cells,
as a real runtime faults in its buffers), then ``iters`` timed
operations; the reported figure is the per-operation mean of the
slowest image — the standard way collective latency is quoted — plus
per-operation fabric traffic from the machine's counters.

Optionally the collective runs on a *subteam* (``team_fraction``) to
exercise the team machinery rather than the initial team.

:func:`sweep` drives a grid of such measurements; cells are independent
simulations, so the grid can fan out across worker processes
(``jobs``, or the ``REPRO_JOBS`` environment variable — see
docs/parallel.md), and a cell that raises is reported as a failed cell
in the table instead of aborting the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.mpi import MPI_TUNINGS, run_mpi
from ..machine import MachineSpec, TrafficSnapshot, paper_cluster
from ..runtime.config import RuntimeConfig
from ..runtime.program import run_spmd
from .tables import ResultTable, Series, config_label

__all__ = [
    "MicrobenchResult",
    "barrier_benchmark",
    "reduce_benchmark",
    "broadcast_benchmark",
    "mpi_barrier_benchmark",
    "sweep",
    "sweep_tasks",
    "sweep_assemble",
]

DEFAULT_ITERS = 10
WARMUP = 2


@dataclass
class MicrobenchResult:
    """Per-operation latency (max over images) plus traffic accounting."""

    seconds_per_op: float
    traffic_per_op: TrafficSnapshot


def _timed(ctx, op: Callable[[], Iterator], iters: int) -> Iterator:
    """The one warmup+timing loop every benchmark body shares.

    Two warm-up operations, then a traffic mark and ``iters`` timed
    ones; returns ``(elapsed_simulated_seconds, traffic_mark)``.
    """
    for _ in range(WARMUP):
        yield from op()
    mark = ctx.machine.traffic()
    t0 = ctx.now
    for _ in range(iters):
        yield from op()
    return ctx.now - t0, mark


def _per_op(
    per_image_times: Sequence[float], traffic: TrafficSnapshot, iters: int
) -> MicrobenchResult:
    """Scale a timed window down to per-operation figures."""
    scaled = TrafficSnapshot(
        inter_messages=traffic.inter_messages // iters,
        inter_bytes=traffic.inter_bytes // iters,
        intra_messages=traffic.intra_messages // iters,
        intra_bytes=traffic.intra_bytes // iters,
    )
    return MicrobenchResult(
        seconds_per_op=max(per_image_times) / iters, traffic_per_op=scaled
    )


def _run_caf(
    body: Callable, num_images: int, images_per_node: int,
    config: RuntimeConfig, spec: Optional[MachineSpec], iters: int,
) -> MicrobenchResult:
    if spec is None:
        spec = paper_cluster(max(-(-num_images // images_per_node), 1))
    result = run_spmd(
        body, num_images=num_images, images_per_node=images_per_node,
        spec=spec, config=config,
    )
    per_image_times, traffic_marks = zip(*result.results)
    return _per_op(per_image_times, result.traffic - traffic_marks[0], iters)


def _subteam(ctx, team_fraction: float):
    """Form a team of the first ``fraction`` of images (or stay initial)."""
    if team_fraction >= 1.0:
        return None
    n = ctx.num_images()
    cut = max(1, int(n * team_fraction))
    color = 1 if ctx.this_image() <= cut else 2
    team = yield from ctx.form_team(color)
    yield from ctx.change_team(team)
    return cut


def barrier_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    spec: Optional[MachineSpec] = None, iters: int = DEFAULT_ITERS,
    team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``sync all`` under ``config``."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        return (yield from _timed(ctx, ctx.sync_all, iters))

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def reduce_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    nelems: int = 1, spec: Optional[MachineSpec] = None,
    iters: int = DEFAULT_ITERS, team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``co_sum`` of ``nelems`` float64 elements."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        value = np.full(nelems, float(ctx.this_image()))
        return (yield from _timed(ctx, lambda: ctx.co_sum(value), iters))

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def broadcast_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    nelems: int = 1, spec: Optional[MachineSpec] = None,
    iters: int = DEFAULT_ITERS, team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``co_broadcast`` of ``nelems`` float64 elements from image 1."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        value = np.full(nelems, float(ctx.this_image()))
        return (yield from _timed(
            ctx, lambda: ctx.co_broadcast(value, source_image=1), iters))

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def mpi_barrier_benchmark(
    num_ranks: int, images_per_node: int, tuning: str,
    spec: Optional[MachineSpec] = None, iters: int = DEFAULT_ITERS,
) -> MicrobenchResult:
    """Time MPI_Barrier under one of the MPI tunings.

    Same protocol and result shape as the CAF benchmarks (latency of the
    slowest rank plus per-operation traffic), so MPI rows are directly
    comparable — including in the notification-count ablations.
    """
    if tuning not in MPI_TUNINGS:
        raise ValueError(f"unknown tuning {tuning!r}")

    def body(ctx):
        return (yield from _timed(ctx, ctx.barrier, iters))

    if spec is None:
        spec = paper_cluster(max(-(-num_ranks // images_per_node), 1))
    res = run_mpi(body, num_ranks=num_ranks, images_per_node=images_per_node,
                  spec=spec, tuning=tuning)
    per_image_times, traffic_marks = zip(*res.results)
    traffic = res.world.machine.traffic() - traffic_marks[0]
    return _per_op(per_image_times, traffic, iters)


def sweep_tasks(
    configs: Sequence[Tuple[int, int]],
    systems: Sequence[Tuple[str, Callable[[int, int], float]]],
) -> Tuple[List[str], list]:
    """The grid's ``(labels, tasks)`` in canonical order: systems-major,
    configs-minor — the one deterministic cell order every consumer of a
    sweep (local run, job server, remote client) agrees on."""
    from ..exec import TaskSpec

    labels = [config_label(i, n) for i, n in configs]
    tasks = [
        TaskSpec(fn, (images, nodes), label=f"{name} @ {label}")
        for name, fn in systems
        for (images, nodes), label in zip(configs, labels)
    ]
    return labels, tasks


def sweep_assemble(
    title: str,
    configs: Sequence[Tuple[int, int]],
    systems: Sequence[Tuple[str, Callable[[int, int], float]]],
    outcomes,
    unit: str = "us",
    scale: float = 1e6,
) -> ResultTable:
    """Fold per-cell outcomes (anything with ``ok``/``value``/``error``
    attributes, in :func:`sweep_tasks` order) back into the table a
    sequential run would have produced."""
    labels = [config_label(i, n) for i, n in configs]
    table = ResultTable(title=title, labels=labels, unit=unit)
    outcomes = iter(outcomes)
    for name, _fn in systems:
        series = Series(name=name, unit=unit)
        for label in labels:
            tres = next(outcomes)
            if tres.ok:
                series.add(label, tres.value * scale)
            else:
                series.mark_failed(label, tres.error or "failed")
        table.add_series(series)
    return table


def sweep(
    title: str,
    configs: Sequence[Tuple[int, int]],
    systems: Sequence[Tuple[str, Callable[[int, int], float]]],
    unit: str = "us",
    scale: float = 1e6,
    jobs=None,
) -> ResultTable:
    """Run ``fn(images, nodes) → seconds`` for every system over every
    ``(images, nodes)`` configuration; returns the rendered-ready table.

    Cells run through :func:`repro.exec.run_tasks`: independent, fanned
    across workers when ``jobs`` (or ``REPRO_JOBS``) asks for it, and
    fault-isolated — a raising cell becomes a ``FAIL`` annotation in
    its series (with the reason listed under the table) while the rest
    of the sweep completes.
    """
    from ..exec import run_tasks

    _labels, tasks = sweep_tasks(configs, systems)
    outcomes = run_tasks(tasks, jobs=jobs)
    return sweep_assemble(title, configs, systems, outcomes,
                          unit=unit, scale=scale)
