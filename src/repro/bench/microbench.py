"""The Teams Microbenchmark suite (paper §V-A, reference [4]).

The paper introduced a public microbenchmark suite for team collectives
precisely because teams were too new to have one; this module is our
version of it.  Each benchmark times one collective — barrier,
all-to-all reduction, one-to-all broadcast — over a team, on a chosen
cluster shape (nodes × images-per-node), for every compared system:

* CAF runtime configurations (UHCAF 2-level / 1-level, GASNet-IB
  dissemination, CAF 2.0) via :func:`repro.runtime.run_spmd`;
* MPI tunings (MVAPICH, Open MPI, Open MPI hierarch) via
  :func:`repro.baselines.mpi.run_mpi`.

Timing protocol: two warm-up operations (populating lazily allocated
synchronization cells, as a real runtime faults in its buffers), then
``iters`` timed operations; the reported figure is the per-operation
mean of the slowest image — the standard way collective latency is
quoted.

Optionally the collective runs on a *subteam* (``team_fraction``) to
exercise the team machinery rather than the initial team.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.mpi import MPI_TUNINGS, run_mpi
from ..machine import MachineSpec, TrafficSnapshot, paper_cluster
from ..runtime.config import RuntimeConfig
from ..runtime.program import run_spmd
from .tables import ResultTable, Series, config_label

__all__ = [
    "MicrobenchResult",
    "barrier_benchmark",
    "reduce_benchmark",
    "broadcast_benchmark",
    "mpi_barrier_benchmark",
    "sweep",
]

DEFAULT_ITERS = 10
WARMUP = 2


@dataclass
class MicrobenchResult:
    """Per-operation latency (max over images) plus traffic accounting."""

    seconds_per_op: float
    traffic_per_op: TrafficSnapshot


def _run_caf(
    body: Callable, num_images: int, images_per_node: int,
    config: RuntimeConfig, spec: Optional[MachineSpec], iters: int,
) -> MicrobenchResult:
    if spec is None:
        spec = paper_cluster(max(-(-num_images // images_per_node), 1))
    result = run_spmd(
        body, num_images=num_images, images_per_node=images_per_node,
        spec=spec, config=config,
    )
    per_image_times, traffic_marks = zip(*result.results)
    start_traffic = traffic_marks[0]
    per_op = max(per_image_times) / iters
    traffic = result.traffic - start_traffic
    scaled = TrafficSnapshot(
        inter_messages=traffic.inter_messages // iters,
        inter_bytes=traffic.inter_bytes // iters,
        intra_messages=traffic.intra_messages // iters,
        intra_bytes=traffic.intra_bytes // iters,
    )
    return MicrobenchResult(seconds_per_op=per_op, traffic_per_op=scaled)


def _subteam(ctx, team_fraction: float):
    """Form a team of the first ``fraction`` of images (or stay initial)."""
    if team_fraction >= 1.0:
        return None
    n = ctx.num_images()
    cut = max(1, int(n * team_fraction))
    color = 1 if ctx.this_image() <= cut else 2
    team = yield from ctx.form_team(color)
    yield from ctx.change_team(team)
    return cut


def barrier_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    spec: Optional[MachineSpec] = None, iters: int = DEFAULT_ITERS,
    team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``sync all`` under ``config``."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        for _ in range(WARMUP):
            yield from ctx.sync_all()
        mark = ctx.machine.traffic()
        t0 = ctx.now
        for _ in range(iters):
            yield from ctx.sync_all()
        return (ctx.now - t0, mark)

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def reduce_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    nelems: int = 1, spec: Optional[MachineSpec] = None,
    iters: int = DEFAULT_ITERS, team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``co_sum`` of ``nelems`` float64 elements."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        value = np.full(nelems, float(ctx.this_image()))
        for _ in range(WARMUP):
            yield from ctx.co_sum(value)
        mark = ctx.machine.traffic()
        t0 = ctx.now
        for _ in range(iters):
            yield from ctx.co_sum(value)
        return (ctx.now - t0, mark)

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def broadcast_benchmark(
    num_images: int, images_per_node: int, config: RuntimeConfig,
    nelems: int = 1, spec: Optional[MachineSpec] = None,
    iters: int = DEFAULT_ITERS, team_fraction: float = 1.0,
) -> MicrobenchResult:
    """Time ``co_broadcast`` of ``nelems`` float64 elements from image 1."""

    def body(ctx):
        yield from _subteam(ctx, team_fraction)
        value = np.full(nelems, float(ctx.this_image()))
        for _ in range(WARMUP):
            yield from ctx.co_broadcast(value, source_image=1)
        mark = ctx.machine.traffic()
        t0 = ctx.now
        for _ in range(iters):
            yield from ctx.co_broadcast(value, source_image=1)
        return (ctx.now - t0, mark)

    return _run_caf(body, num_images, images_per_node, config, spec, iters)


def mpi_barrier_benchmark(
    num_ranks: int, images_per_node: int, tuning: str,
    spec: Optional[MachineSpec] = None, iters: int = DEFAULT_ITERS,
) -> float:
    """Time MPI_Barrier under one of the MPI tunings; returns seconds/op."""
    if tuning not in MPI_TUNINGS:
        raise ValueError(f"unknown tuning {tuning!r}")

    def body(ctx):
        for _ in range(WARMUP):
            yield from ctx.barrier()
        t0 = ctx.now
        for _ in range(iters):
            yield from ctx.barrier()
        return ctx.now - t0

    if spec is None:
        spec = paper_cluster(max(-(-num_ranks // images_per_node), 1))
    res = run_mpi(body, num_ranks=num_ranks, images_per_node=images_per_node,
                  spec=spec, tuning=tuning)
    return max(res.results) / iters


def sweep(
    title: str,
    configs: Sequence[Tuple[int, int]],
    systems: Sequence[Tuple[str, Callable[[int, int], float]]],
    unit: str = "us",
    scale: float = 1e6,
) -> ResultTable:
    """Run ``fn(images, nodes) → seconds`` for every system over every
    ``(images, nodes)`` configuration; returns the rendered-ready table."""
    labels = [config_label(i, n) for i, n in configs]
    table = ResultTable(title=title, labels=labels, unit=unit)
    for name, fn in systems:
        series = Series(name=name, unit=unit)
        for (images, nodes), label in zip(configs, labels):
            series.add(label, fn(images, nodes) * scale)
        table.add_series(series)
    return table
