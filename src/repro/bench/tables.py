"""Result tables: the rows/series the paper's evaluation reports.

Benchmark harnesses collect :class:`Series` objects (one per compared
system) and render them in the paper's style — configurations as
``images(nodes)`` columns, one row per system — so a benchmark run's
stdout is directly comparable to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "ResultTable", "config_label"]


def config_label(images: int, nodes: int) -> str:
    """The paper's ``N(M)`` axis label: N images on M nodes."""
    return f"{images}({nodes})"


@dataclass
class Series:
    """One system's measurements across the sweep, keyed by config label."""

    name: str
    values: Dict[str, float] = field(default_factory=dict)
    unit: str = "us"
    #: cells whose measurement raised, label → reason (rendered ``FAIL``;
    #: the rest of the sweep is unaffected)
    failures: Dict[str, str] = field(default_factory=dict)
    #: non-numeric cells (verdicts like ``exact``/``skipped``, or counts
    #: preformatted with separators); take precedence over ``values``
    texts: Dict[str, str] = field(default_factory=dict)

    def add(self, label: str, value: float) -> None:
        self.values[label] = value

    def add_text(self, label: str, text: str) -> None:
        self.texts[label] = text

    def mark_failed(self, label: str, reason: str) -> None:
        self.failures[label] = reason

    def ratio_to(self, other: "Series") -> Dict[str, float]:
        """Per-config ``other/self`` ratios (speedup of self over other
        when values are times)."""
        out = {}
        for label, mine in self.values.items():
            theirs = other.values.get(label)
            if theirs is not None and mine > 0:
                out[label] = theirs / mine
        return out


@dataclass
class ResultTable:
    """A titled set of series over a shared config axis."""

    title: str
    labels: List[str]
    series: List[Series] = field(default_factory=list)
    unit: str = "us"

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r}; have {[s.name for s in self.series]}")

    def render(self) -> str:
        """Fixed-width text table, one row per system."""
        name_width = max([len(s.name) for s in self.series] + [len("system")])
        col_width = max([len(lbl) for lbl in self.labels] + [10]) + 2
        lines = [self.title, ""]
        header = "system".ljust(name_width) + "".join(
            lbl.rjust(col_width) for lbl in self.labels
        ) + f"   [{self.unit}]"
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.series:
            row = s.name.ljust(name_width)
            for lbl in self.labels:
                val = s.values.get(lbl)
                if lbl in s.texts:
                    row += s.texts[lbl].rjust(col_width)
                elif val is not None:
                    row += f"{val:{col_width}.2f}"
                elif lbl in s.failures:
                    row += "FAIL".rjust(col_width)
                else:
                    row += "-".rjust(col_width)
            lines.append(row)
        failed = [(s.name, lbl, reason) for s in self.series
                  for lbl, reason in sorted(s.failures.items())]
        if failed:
            lines.append("")
            lines.append("failed cells:")
            for name, lbl, reason in failed:
                first = reason.splitlines()[0] if reason else "failed"
                lines.append(f"  {name} @ {lbl}: {first}")
        return "\n".join(lines)

    def speedup_row(self, fast: str, slow: str) -> str:
        """A 'fast is X× better than slow' summary line per config."""
        ratios = self.get(fast).ratio_to(self.get(slow))
        cells = "  ".join(f"{lbl}:{r:5.1f}x" for lbl, r in ratios.items())
        return f"{slow} / {fast}:  {cells}"
