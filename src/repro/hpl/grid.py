"""Process grid and block-cyclic distribution for the CAF HPL port.

HPL distributes the N×N matrix over a P×Q grid of images in NB×NB
blocks: block (I, J) lives on the image at grid position
``(I mod P, J mod Q)``.  The CAF port (following the CAF 2.0 HPC
Challenge port the paper bases its version on) carves the initial team
into **row teams** (all images with the same grid row — they cooperate
on broadcasts of a panel along a block row) and **column teams** (same
grid column — pivot search and panel factorization).

Grid placement is row-major over image indices, which with the block
image-to-node placement used in the paper's ``N(M)`` configurations
makes row teams node-local-heavy and column teams cross-node — the
asymmetry that lets the two-level collectives pay off in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["BlockCyclicGrid", "grid_shape"]


def grid_shape(num_images: int) -> Tuple[int, int]:
    """The most square P×Q factorization with P ≤ Q (HPL's usual choice)."""
    if num_images < 1:
        raise ValueError(f"num_images must be >= 1, got {num_images}")
    p = int(num_images**0.5)
    while num_images % p != 0:
        p -= 1
    return p, num_images // p


@dataclass(frozen=True)
class BlockCyclicGrid:
    """Block-cyclic maps for one image on a P×Q grid.

    ``index`` is the image's 1-based index in the initial team; grid
    coordinates are row-major: ``row = (index-1) // Q``,
    ``col = (index-1) % Q``.
    """

    n: int
    nb: int
    p: int
    q: int
    index: int  # 1-based image index

    def __post_init__(self) -> None:
        if self.n % self.nb != 0:
            raise ValueError(f"NB ({self.nb}) must divide N ({self.n})")
        if not 1 <= self.index <= self.p * self.q:
            raise ValueError(
                f"index {self.index} out of range for {self.p}x{self.q} grid"
            )

    @property
    def nblocks(self) -> int:
        """Number of block rows (= block columns) of the matrix."""
        return self.n // self.nb

    @property
    def my_row(self) -> int:
        return (self.index - 1) // self.q

    @property
    def my_col(self) -> int:
        return (self.index - 1) % self.q

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owner_coords(self, bi: int, bj: int) -> Tuple[int, int]:
        """Grid position owning block (bi, bj)."""
        self._check_block(bi, bj)
        return bi % self.p, bj % self.q

    def owner_index(self, bi: int, bj: int) -> int:
        """1-based image index owning block (bi, bj)."""
        r, c = self.owner_coords(bi, bj)
        return r * self.q + c + 1

    def owns(self, bi: int, bj: int) -> bool:
        return self.owner_coords(bi, bj) == (self.my_row, self.my_col)

    def _check_block(self, bi: int, bj: int) -> None:
        nb = self.nblocks
        if not (0 <= bi < nb and 0 <= bj < nb):
            raise ValueError(f"block ({bi},{bj}) out of range [0,{nb})")

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def my_blocks(self) -> Iterator[Tuple[int, int]]:
        """All blocks this image owns, row-major."""
        for bi in range(self.my_row, self.nblocks, self.p):
            for bj in range(self.my_col, self.nblocks, self.q):
                yield bi, bj

    def my_blocks_in_col(self, bj: int, from_bi: int = 0) -> List[int]:
        """Block-row indices ≥ ``from_bi`` this image owns in block column
        ``bj`` (empty if the column isn't mine)."""
        if bj % self.q != self.my_col:
            return []
        start = self.my_row
        while start < from_bi:
            start += self.p
        return list(range(start, self.nblocks, self.p))

    def my_blocks_in_row(self, bi: int, from_bj: int = 0) -> List[int]:
        """Block-column indices ≥ ``from_bj`` this image owns in block row
        ``bi`` (empty if the row isn't mine)."""
        if bi % self.p != self.my_row:
            return []
        start = self.my_col
        while start < from_bj:
            start += self.q
        return list(range(start, self.nblocks, self.q))

    def trailing_blocks(self, k: int) -> Iterator[Tuple[int, int]]:
        """My blocks in the trailing submatrix of step ``k`` (bi, bj > k)."""
        for bi, bj in self.my_blocks():
            if bi > k and bj > k:
                yield bi, bj

    # ------------------------------------------------------------------
    # Team colors
    # ------------------------------------------------------------------
    @property
    def row_team_number(self) -> int:
        """form_team color putting same-grid-row images together (1-based,
        since team numbers must be positive)."""
        return self.my_row + 1

    @property
    def col_team_number(self) -> int:
        return self.my_col + 1
