"""HPL panel factorization (the column-team half of a step).

At step ``k`` the column team owning block column ``k``:

1. runs the **pivot search** for each of the NB panel columns — a
   maxloc allreduce over the column team (through the runtime's
   configured team reduction, so the paper's two-level reduction speeds
   up exactly this inner loop) plus a row-segment swap with the pivot
   owner;
2. factorizes the diagonal block (``getrf``) at its owner and
   broadcasts the packed LU factors down the column team;
3. applies the triangular solve (``trsm``) to every sub-diagonal block
   of the panel.

In verify mode the arithmetic is real but the swaps are identity (the
test matrix is diagonally dominant, so the maxloc winner *is* the
diagonal row — asserted, not assumed); in model mode only the costs and
the traffic are charged.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .costmodel import getrf_flops, scale_flops, trsm_flops
from .state import HplState, SizedPayload

__all__ = ["factorize_panel", "unpack_lu"]


def _factor_diag_inplace(a: np.ndarray) -> None:
    """Unpivoted right-looking LU of a square block, packed L\\U in place."""
    n = a.shape[0]
    for j in range(n - 1):
        a[j + 1:, j] /= a[j, j]
        a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])


def unpack_lu(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed L\\U block into unit-lower L and upper U."""
    lower = np.tril(packed, -1) + np.eye(packed.shape[0])
    upper = np.triu(packed)
    return lower, upper


def factorize_panel(ctx, state: HplState, k: int) -> Iterator:
    """Run step ``k``'s panel factorization; only images whose grid column
    owns block column ``k`` do real work, but the function is safe (and
    cheap) to enter on every image — non-members return immediately, so
    the driver needs no divergent control flow."""
    grid = state.grid
    nb = grid.nb
    if k % grid.q != grid.my_col:
        return

    col_team = state.col_team
    diag_owner_row = k % grid.p
    diag_member = state.col_team_index_of_row(diag_owner_row)
    i_am_diag = grid.my_row == diag_owner_row
    my_sub_blocks = [bi for bi in grid.my_blocks_in_col(k, from_bi=k + 1)]
    rows_below_mine = len(my_sub_blocks) * nb

    # ---- 1. pivot search & swap, column by column ----------------------
    for j in range(nb):
        # Local candidate: the largest magnitude in my share of the column.
        if state.verify:
            best_val, best_loc = -1.0, grid.n + 1
            if i_am_diag:
                col = state.block(k, k)[j:, j]
                loc = int(np.argmax(np.abs(col)))
                best_val = float(abs(col[loc]))
                best_loc = k * nb + j + loc
            for bi in my_sub_blocks:
                col = state.block(bi, k)[:, j]
                loc = int(np.argmax(np.abs(col)))
                if abs(col[loc]) > best_val:
                    best_val = float(abs(col[loc]))
                    best_loc = bi * nb + loc
        else:
            best_val, best_loc = 0.0, grid.my_row
        scan_rows = rows_below_mine + (nb - j if i_am_diag else 0)
        yield ctx.compute_cost(scale_flops(scan_rows))

        if col_team.size > 1:
            winner = yield from ctx.co_reduce(
                (best_val, best_loc), op="maxloc", team=col_team
            )
        else:
            winner = (best_val, best_loc)
        if state.verify:
            # Diagonal dominance must make the diagonal row win, or the
            # unpivoted arithmetic below would be wrong.
            assert winner[1] == k * nb + j, (
                f"pivot left the diagonal at step {k}, column {j}: {winner}"
            )
        # Swap traffic: the diag owner exchanges a row segment with the
        # pivot owner (identity swap in verify mode, but the messages are
        # what HPL would send).
        if col_team.size > 1 and i_am_diag:
            partner = (diag_member % col_team.size) + 1
            shared = col_team.shared
            yield from ctx.conduit.transfer(
                col_team.proc, shared.proc_of(partner), nb * 8, path="auto"
            )

    # ---- 2. diagonal block factorization + broadcast --------------------
    if i_am_diag:
        yield ctx.compute_cost(getrf_flops(nb, nb))
        if state.verify:
            _factor_diag_inplace(state.block(k, k))
            payload = state.block(k, k).copy()
        else:
            payload = SizedPayload(nb * nb * 8)
    else:
        payload = None
    if col_team.size > 1:
        payload = yield from ctx.co_broadcast(
            payload, source_image=diag_member, team=col_team
        )

    # ---- 3. triangular solves on the sub-diagonal panel blocks ----------
    if my_sub_blocks:
        yield ctx.compute_cost(trsm_flops(nb, rows_below_mine))
        if state.verify:
            _, upper = unpack_lu(payload)
            for bi in my_sub_blocks:
                blk = state.block(bi, k)
                # X · U = B  →  solve Uᵀ Xᵀ = Bᵀ.
                blk[...] = np.linalg.solve(upper.T, blk.T).T
